"""Reproduction of "Information Preserving XML Schema Embedding".

Fan & Bohannon, VLDB 2005 (journal version: ACM TODS 33(1), 2008).

The package implements, from scratch:

* an XML instance-tree model with node identities (:mod:`repro.xtree`);
* DTDs in the paper's normal form, their schema graphs, consistency
  checking and minimum default instances (:mod:`repro.dtd`);
* regular XPath ``XR`` [Marx 2004] with a parser and an evaluator
  (:mod:`repro.xpath`);
* annotated NFAs (ANFAs) for representing translated queries
  (:mod:`repro.anfa`);
* schema embeddings, the derived instance mapping ``InstMap``, its
  inverse, and schema-directed query translation (:mod:`repro.core`);
* an XSLT-subset engine plus stylesheet generators for the embedding
  and its inverse (:mod:`repro.xslt`);
* heuristic and exact algorithms for *finding* embeddings, the
  simulation baseline and the NP-hardness reduction
  (:mod:`repro.matching`);
* schema/workload generators and the experiment harness
  (:mod:`repro.workloads`, :mod:`repro.experiments`).

See ``README.md`` for a guided tour and ``DESIGN.md`` for the
paper-to-module map.
"""

from repro._version import __version__

__all__ = ["__version__"]
