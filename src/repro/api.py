"""The stable public API surface, re-exported in one place.

Downstream users can depend on this module; internals may move between
subpackages without breaking ``from repro.api import …``.

Typical flow — an :class:`Engine` session compiles each schema and
embedding once and serves every later document/query from the compiled
artifacts::

    from repro import api

    engine = api.Engine()

    source = api.load_schema(open("source.dtd").read())   # auto-detects
    target = api.load_schema(open("target.xsd").read(), format="xsd")
    att = api.SimilarityMatrix.from_names(source, target)
    sigma = api.find_embedding(source, target, att).embedding

    # Batch mapping: one compile, many documents.
    results = engine.map_documents(sigma, documents)

    # Query serving: translations are LRU-cached per embedding.
    anfa = engine.translate_query(sigma, "a/b/text()")
    answer = api.evaluate_anfa_set(anfa, results[0].tree)

    recovered = engine.invert(sigma, results[0].tree)
    print(engine.describe_stats())

Schemas enter through the pluggable frontend layer (:mod:`repro.schema`):
:func:`load_schema` lowers DTD, compact or XSD-subset text into one
normalized IR (``format="auto"`` sniffs via :func:`detect_format`), and
the same grammar in any format yields byte-identical fingerprints,
artifacts and serve responses.  ``register_frontend`` adds new formats;
``parse_dtd``/``parse_compact``/``parse_xsd`` remain as direct aliases.

The classic one-shot calls remain available with unchanged signatures
— ``apply_embedding``, ``translate_query``, ``invert`` and
``find_embedding`` delegate to a process-wide default engine, so even
naive per-call code gets compile-once behaviour::

    mapped = api.apply_embedding(sigma, api.parse_xml(doc_text))
    recovered = api.invert(sigma, mapped.tree)
    anfa = api.translate_query(sigma, api.parse_xr("a/b/text()"))

Compiled artifacts also persist across processes and fan out across
cores.  ``Engine.save_store(path)`` serialises every cached schema,
embedding and search result into a versioned, fingerprint-keyed
:class:`ArtifactStore` directory; ``Engine.warm_start(path)`` preloads
a fresh process from it, so serving starts with **zero** compile
misses.  A :class:`ParallelRunner` chunks a corpus across a
``multiprocessing`` pool of warm-started worker engines, re-merging
results in order (``jobs=4`` output is identical to ``jobs=1``) and
aggregating the per-worker cache counters::

    engine.save_store("artifacts/")             # once, at deploy time

    runner = api.ParallelRunner(jobs=4, store="artifacts/")
    outcomes = runner.map_corpus(sigma, "corpus.ndjson")  # or a directory
    results = runner.map_documents(sigma, documents)
    anfas = runner.translate_queries(sigma, queries)
    print(runner.last_report.describe())

    warm = api.Engine.warm_start("artifacts/")  # a new serving process

Corpora stream lazily from directories, NDJSON files or single
documents via :func:`iter_corpus`; the equivalent CLI surface is
``repro batch map|translate --jobs N --store DIR`` and
``repro store build|inspect``.

The same store also backs a long-lived serving daemon — the paper's
"embed once, answer forever" workload as a service.  ``repro serve
artifacts/`` (or :class:`ReproServer` in-process) warm-starts every
stored artifact *before* the socket opens and serves JSON endpoints
(``POST /v1/map|translate|invert|find|evolve``, ``GET
/healthz|/metrics``) whose payload strings are byte-identical to the
equivalent direct :class:`Engine` calls; :class:`ServeClient` is the
stdlib client.  Client methods return frozen :class:`ServeResult`
views — attribute access over the decoded payload, which stays
reachable verbatim on ``.raw`` and still compares/indexes like the
dict it wraps::

    with api.ReproServer(store="artifacts/", port=0) as server:
        client = api.ServeClient.for_server(server)
        mapped = client.map(xml=doc_text).result["output"]
        anfas = client.translate(queries=["a/b/text()"]).results
        print(client.metrics().requests["/v1/map"])

Schema evolution closes the loop: when a schema version bump arrives
while stored queries keep serving, :func:`evolve` (or
``Engine.evolve``, ``POST /v1/evolve``, ``repro evolve``) returns one
:class:`QueryVerdict` per query — ``still-valid`` (answer-preserving
as-is), ``translatable`` (the re-translated query attached) or
``broken`` (a structured reason: parse error, no embedding,
preservation failure) — with per-query failure isolation.
:func:`evolve_and_record` additionally persists the bump as a
:class:`LineageEdge` in the artifact store's lineage section
(fingerprint → successor fingerprint + embedding + provenance), next
to the existing artifacts; pre-lineage stores gain their first edge in
place::

    report = api.evolve(old_schema, new_schema, stored_queries)
    for verdict in report.verdicts:
        print(verdict.verdict, verdict.query, verdict.translation)

    store = api.ArtifactStore("artifacts/")
    report, edge = api.evolve_and_record(store, old_schema, new_schema,
                                         stored_queries)
    print(edge.digest, api.lineage_edges(store))

    served = client.evolve(old_fp, new_fp, queries=stored_queries)
    assert served.counts == report.counts()   # byte-identical payloads
"""

from repro.analysis import Finding, LintError, run_lint
from repro.anfa.evaluate import evaluate_anfa, evaluate_anfa_set
from repro.anfa.to_regex import anfa_to_xr
from repro.core.embedding import SchemaEmbedding, build_embedding
from repro.core.errors import (
    EmbeddingError,
    InverseError,
    TranslationError,
    ValidityViolation,
)
from repro.core.instmap import InstMap, MappingResult, apply_embedding
from repro.core.inverse import invert
from repro.core.multi import integrate, merge_dtds
from repro.core.preservation import (
    check_information_preserving,
    check_invertible,
    check_query_preserving,
    check_type_safe,
)
from repro.core.similarity import SimilarityMatrix, name_similarity
from repro.core.smallmodel import check_bounds, simplify_embedding
from repro.core.translate import Translator, translate_query
from repro.dtd.generate import random_instance
from repro.engine import (
    ArtifactStore,
    CompiledEmbedding,
    CompiledSchema,
    CorpusDocument,
    CorpusError,
    CorpusOutcome,
    Engine,
    EngineConfig,
    PackError,
    ParallelReport,
    ParallelRunner,
    StoreError,
    StoreView,
    TranslationOutcome,
    current_generation,
    default_engine,
    iter_corpora,
    iter_corpus,
    open_view,
    pack_store,
    set_default_engine,
    write_ndjson,
)
from repro.dtd.model import DTD
from repro.dtd.serialize import dtd_to_compact, dtd_to_text
from repro.evolution import (
    BROKEN,
    STILL_VALID,
    TRANSLATABLE,
    EvolutionReport,
    LineageEdge,
    QueryVerdict,
    evolve,
    evolve_and_record,
    lineage_edges,
    record_lineage,
    successors,
)
from repro.dtd.validate import conforms, validate
from repro.matching.search import SearchResult, find_embedding
from repro.matching.simulation import simulation_mapping
from repro.schema import (
    SchemaFormatError,
    SchemaFrontend,
    XSDParseError,
    available_formats,
    detect_format,
    dtd_to_xsd,
    load_schema,
    parse_compact,
    parse_dtd,
    parse_xsd,
    register_frontend,
)
from repro.serve import (
    EvolveResult,
    FleetClient,
    FleetServer,
    HashRing,
    ReproServer,
    ServeClient,
    ServeError,
    ServeResult,
    ServiceState,
)
from repro.xpath.evaluator import ResultSet, evaluate, evaluate_set
from repro.xpath.parser import parse_xr
from repro.xpath.paths import XRPath
from repro.xslt.engine import apply_stylesheet
from repro.xslt.forward import forward_stylesheet
from repro.xslt.inverse import inverse_stylesheet
from repro.xslt.serialize import stylesheet_to_xslt
from repro.xtree.nodes import ElementNode, TextNode, tree_equal, tree_size
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string

__all__ = [
    "ArtifactStore",
    "BROKEN",
    "CompiledEmbedding",
    "CompiledSchema",
    "CorpusDocument",
    "CorpusError",
    "CorpusOutcome",
    "DTD",
    "ElementNode",
    "Engine",
    "EngineConfig",
    "EmbeddingError",
    "EvolutionReport",
    "EvolveResult",
    "Finding",
    "FleetClient",
    "FleetServer",
    "HashRing",
    "InstMap",
    "InverseError",
    "LineageEdge",
    "LintError",
    "MappingResult",
    "PackError",
    "ParallelReport",
    "ParallelRunner",
    "QueryVerdict",
    "ReproServer",
    "ResultSet",
    "STILL_VALID",
    "SchemaEmbedding",
    "SchemaFormatError",
    "SchemaFrontend",
    "SearchResult",
    "ServeClient",
    "ServeError",
    "ServeResult",
    "ServiceState",
    "SimilarityMatrix",
    "StoreError",
    "StoreView",
    "TRANSLATABLE",
    "TextNode",
    "TranslationError",
    "TranslationOutcome",
    "Translator",
    "ValidityViolation",
    "XRPath",
    "XSDParseError",
    "anfa_to_xr",
    "apply_embedding",
    "available_formats",
    "apply_stylesheet",
    "build_embedding",
    "check_bounds",
    "check_information_preserving",
    "check_invertible",
    "check_query_preserving",
    "check_type_safe",
    "conforms",
    "current_generation",
    "default_engine",
    "detect_format",
    "dtd_to_compact",
    "dtd_to_text",
    "dtd_to_xsd",
    "evaluate",
    "evaluate_anfa",
    "evaluate_anfa_set",
    "evaluate_set",
    "evolve",
    "evolve_and_record",
    "find_embedding",
    "forward_stylesheet",
    "integrate",
    "inverse_stylesheet",
    "invert",
    "iter_corpora",
    "iter_corpus",
    "lineage_edges",
    "load_schema",
    "merge_dtds",
    "name_similarity",
    "open_view",
    "pack_store",
    "parse_compact",
    "parse_dtd",
    "parse_xml",
    "parse_xr",
    "parse_xsd",
    "random_instance",
    "record_lineage",
    "register_frontend",
    "run_lint",
    "successors",
    "set_default_engine",
    "simplify_embedding",
    "simulation_mapping",
    "stylesheet_to_xslt",
    "to_string",
    "translate_query",
    "tree_equal",
    "tree_size",
    "validate",
    "write_ndjson",
]
