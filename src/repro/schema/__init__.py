"""The pluggable schema-frontend layer — one normalized IR, many
input formats.

Consumers (engine, serve, CLI, workloads, examples) load schemas
exclusively through :func:`load_schema` / :func:`detect_format`; the
concrete parsers stay private to their format modules:

* :mod:`repro.schema.frontend` — the :class:`SchemaFrontend` protocol,
  the registry (``register_frontend`` / ``available_formats``),
  format auto-detection and :func:`load_schema`;
* :mod:`repro.schema.xsd` — the stdlib-only XSD structural subset and
  the :func:`dtd_to_xsd` rendering used by the parity tests.

``parse_dtd`` / ``parse_compact`` are re-exported as legacy aliases
for existing importers; new code should call ``load_schema(text,
format=…)`` so auto-detection, provenance and future formats apply
uniformly.
"""

from repro.dtd.parser import parse_compact, parse_dtd  # legacy aliases
from repro.schema.frontend import (
    AUTO,
    SchemaFormatError,
    SchemaFrontend,
    available_formats,
    detect_format,
    frontend_for,
    load_schema,
    register_frontend,
)
from repro.schema.xsd import XSDParseError, dtd_to_xsd, parse_xsd

__all__ = [
    "AUTO",
    "SchemaFormatError",
    "SchemaFrontend",
    "XSDParseError",
    "available_formats",
    "detect_format",
    "dtd_to_xsd",
    "frontend_for",
    "load_schema",
    "parse_compact",
    "parse_dtd",
    "parse_xsd",
    "register_frontend",
]
