"""The XSD-subset frontend: lower XML Schema text to the DTD IR.

Stdlib-only (``xml.etree.ElementTree``).  The supported subset is the
structural core that maps exactly onto the paper's DTD normal form:

* top-level ``<xs:element name="A">`` declarations — one per element
  type, first one is the default root;
* ``type="xs:string"`` leaves (``A → str``);
* inline ``<xs:complexType>`` holding one ``<xs:sequence>`` or
  ``<xs:choice>`` (an empty complexType or empty sequence is ``A → ε``);
* particles: ``<xs:element ref="B"/>``, inline *named* child
  declarations (hoisted to global productions in document order), and
  nested ``xs:sequence``/``xs:choice`` groups;
* ``minOccurs``/``maxOccurs`` in the four combinations 1/1, 0/1,
  0/unbounded, 1/unbounded — exactly ``B``, ``B?``, ``B*``, ``B+``.

Everything outside the subset — named type definitions, ``xs:all``,
mixed content, numeric occurrence bounds, substitution groups,
imports/includes, non-XSD namespaces — raises :class:`XSDParseError`
with a **one-line** diagnostic, which the CLI surfaces as
``repro: error: <path>: …``.  ``xs:attribute`` declarations are
skipped, mirroring the DTD frontend's treatment of ``<!ATTLIST>``
(the paper's data model is attribute-free).

The lowering targets the same :mod:`repro.dtd.normalize` regex IR as
the DTD frontend, so one grammar expressed as XSD, DTD or compact text
produces a byte-identical normal form — same fingerprint, same
compiled artifacts (``tests/test_schema_frontends.py``).

:func:`dtd_to_xsd` is the inverse rendering: any parser-producible
normal-form DTD as an equivalent document in this subset, used by the
parity tests and benchmarks to generate the XSD spelling of every
workload schema.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import Optional

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    SchemaError,
    Star,
    Str,
)
from repro.dtd.normalize import (
    RChoice,
    REmpty,
    RName,
    ROpt,
    RPCDATA,
    RPlus,
    RSeq,
    RStar,
    Regex,
    normalize_dtd,
)

#: The XML Schema namespace every construct must live in.
XSD_NS = "http://www.w3.org/2001/XMLSchema"

#: Same lexical space as the DTD parser's element names.
_NAME_RE = re.compile(r"[A-Za-z_][\w.\-]*")

#: Constructs skipped wherever they appear (like <!ATTLIST> in DTDs).
_SKIPPED = frozenset({"annotation", "attribute"})


class XSDParseError(ValueError):
    """Raised on malformed XSD text or constructs outside the subset."""


def looks_like_xsd(text: str) -> bool:
    """Cheap sniff for :func:`repro.schema.frontend.detect_format`."""
    stripped = text.lstrip()
    if not stripped.startswith("<"):
        return False
    return ("XMLSchema" in text
            or re.search(r"<(?:[\w.\-]+:)?schema[\s>]", text) is not None)


def _one_line(value: object) -> str:
    return " ".join(str(value).split())


def _split_tag(tag: str) -> tuple[str, str]:
    """``{namespace}local`` → ``(namespace, local)``."""
    if tag.startswith("{"):
        namespace, _, local = tag[1:].partition("}")
        return namespace, local
    return "", tag


def _pretty_tag(tag: str) -> str:
    namespace, local = _split_tag(tag)
    return f"xs:{local}" if namespace == XSD_NS else local


def _is_xsd(node: ET.Element, local: str) -> bool:
    return _split_tag(node.tag) == (XSD_NS, local)


def _is_skipped(node: ET.Element) -> bool:
    namespace, local = _split_tag(node.tag)
    return namespace == XSD_NS and local in _SKIPPED


def _is_string_type(value: str) -> bool:
    """``xs:string`` under any prefix binding (we do not track prefix
    declarations; the subset admits no other simple type anyway)."""
    return value.rsplit(":", 1)[-1] == "string"


class _Lowering:
    """Document-order collection of global element declarations."""

    def __init__(self) -> None:
        self.declared: dict[str, Regex] = {}

    # -- declarations ------------------------------------------------------
    def declare(self, element: ET.Element) -> str:
        name = element.get("name")
        if name is None:
            raise XSDParseError(
                "xs:element declaration needs a name attribute")
        if not _NAME_RE.fullmatch(name):
            raise XSDParseError(f"bad element name {name!r}")
        if name in self.declared:
            raise XSDParseError(f"duplicate declaration of element "
                                f"{name!r}")
        # Reserve the slot first so a declaration always precedes the
        # inline children hoisted out of its own content — the same
        # parent-before-fresh-types order the DTD normalizer produces.
        self.declared[name] = REmpty()
        self.declared[name] = self._element_content(element, name)
        return name

    def _element_content(self, element: ET.Element, owner: str) -> Regex:
        type_attr = element.get("type")
        children = [child for child in element if not _is_skipped(child)]
        complex_types = [child for child in children
                         if _is_xsd(child, "complexType")]
        if len(complex_types) != len(children):
            extra = next(child for child in children
                         if not _is_xsd(child, "complexType"))
            raise XSDParseError(
                f"{owner!r}: unsupported construct "
                f"<{_pretty_tag(extra.tag)}> inside xs:element (only an "
                "inline xs:complexType)")
        if type_attr is not None:
            if complex_types:
                raise XSDParseError(
                    f"{owner!r}: give either type= or an inline "
                    "xs:complexType, not both")
            if not _is_string_type(type_attr):
                raise XSDParseError(
                    f"{owner!r}: unsupported type {type_attr!r} (only "
                    "xs:string leaves; named complex types are outside "
                    "the subset)")
            return RPCDATA()
        if not complex_types:
            raise XSDParseError(
                f"{owner!r}: needs type=\"xs:string\" or an inline "
                "xs:complexType")
        if len(complex_types) > 1:
            raise XSDParseError(f"{owner!r}: more than one xs:complexType")
        return self._complex_type(complex_types[0], owner)

    def _complex_type(self, node: ET.Element, owner: str) -> Regex:
        if node.get("mixed") in ("true", "1"):
            raise XSDParseError(
                f"{owner!r}: mixed content is outside the paper's DTD "
                "normal form")
        content = [child for child in node if not _is_skipped(child)]
        if not content:
            return REmpty()
        if len(content) > 1:
            raise XSDParseError(
                f"{owner!r}: expected one xs:sequence or xs:choice "
                f"inside xs:complexType, found {len(content)} children")
        child = content[0]
        namespace, local = _split_tag(child.tag)
        if namespace != XSD_NS or local not in ("sequence", "choice"):
            raise XSDParseError(
                f"{owner!r}: unsupported content model "
                f"<{_pretty_tag(child.tag)}> (only xs:sequence / "
                "xs:choice)")
        return self._group(child, owner)

    # -- particles ---------------------------------------------------------
    def _group(self, node: ET.Element, owner: str) -> Regex:
        _, local = _split_tag(node.tag)
        items: list[Regex] = []
        for child in node:
            if _is_skipped(child):
                continue
            namespace, child_local = _split_tag(child.tag)
            if namespace == XSD_NS and child_local == "element":
                items.append(self._element_particle(child, owner))
            elif namespace == XSD_NS and child_local in ("sequence",
                                                         "choice"):
                items.append(self._group(child, owner))
            else:
                raise XSDParseError(
                    f"{owner!r}: unsupported particle "
                    f"<{_pretty_tag(child.tag)}> (only xs:element, "
                    "xs:sequence, xs:choice)")
        if not items:
            if local == "choice":
                raise XSDParseError(f"{owner!r}: empty xs:choice")
            inner: Regex = REmpty()
        elif len(items) == 1:
            # A one-particle group is the particle — exactly how the
            # DTD parser collapses a one-item parenthesised group.
            inner = items[0]
        elif local == "sequence":
            inner = RSeq(tuple(items))
        else:
            inner = RChoice(tuple(items))
        return self._with_occurs(node, inner, owner)

    def _element_particle(self, node: ET.Element, owner: str) -> Regex:
        ref = node.get("ref")
        name = node.get("name")
        if ref is not None and name is not None:
            raise XSDParseError(
                f"{owner!r}: xs:element takes ref= or name=, not both")
        if ref is not None:
            if not _NAME_RE.fullmatch(ref):
                raise XSDParseError(f"{owner!r}: bad element ref {ref!r}")
            if any(not _is_skipped(child) for child in node):
                raise XSDParseError(
                    f"{owner!r}: <xs:element ref={ref!r}> must be empty")
            base: Regex = RName(ref)
        elif name is not None:
            # An inline named declaration: hoist it to a global
            # production (document order), then reference it.
            base = RName(self.declare(node))
        else:
            raise XSDParseError(
                f"{owner!r}: xs:element particle needs ref= or name=")
        return self._with_occurs(node, base, owner)

    @staticmethod
    def _with_occurs(node: ET.Element, regex: Regex, owner: str) -> Regex:
        raw_min = node.get("minOccurs", "1")
        raw_max = node.get("maxOccurs", "1")
        try:
            lo = int(raw_min)
        except ValueError:
            raise XSDParseError(
                f"{owner!r}: minOccurs={raw_min!r} is not an integer"
            ) from None
        if raw_max == "unbounded":
            hi: Optional[int] = None
        else:
            try:
                hi = int(raw_max)
            except ValueError:
                raise XSDParseError(
                    f"{owner!r}: maxOccurs={raw_max!r} is not an integer "
                    "or 'unbounded'") from None
        if (lo, hi) == (1, 1):
            return regex
        if (lo, hi) == (0, 1):
            return ROpt(regex)
        if (lo, hi) == (0, None):
            return RStar(regex)
        if (lo, hi) == (1, None):
            return RPlus(regex)
        raise XSDParseError(
            f"{owner!r}: unsupported occurrence minOccurs={lo} "
            f"maxOccurs={raw_max} (supported: the 0/1/unbounded "
            "combinations ?, *, +)")


def parse_xsd(source: str, root: Optional[str] = None,
              name: str = "dtd") -> DTD:
    """Parse the XSD subset into a normal-form :class:`DTD`.

    >>> d = parse_xsd('''
    ...   <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    ...     <xs:element name="db"><xs:complexType><xs:sequence>
    ...       <xs:element ref="class" minOccurs="0"
    ...                   maxOccurs="unbounded"/>
    ...     </xs:sequence></xs:complexType></xs:element>
    ...     <xs:element name="class" type="xs:string"/>
    ...   </xs:schema>''')
    >>> d.root
    'db'
    """
    try:
        document = ET.fromstring(source)
    except ET.ParseError as exc:
        raise XSDParseError(
            f"not well-formed XML: {_one_line(exc)}") from None
    namespace, local = _split_tag(document.tag)
    if local != "schema":
        raise XSDParseError(
            f"root element must be xs:schema, not "
            f"<{_pretty_tag(document.tag)}>")
    if namespace != XSD_NS:
        raise XSDParseError(
            f"xs:schema must use the XML Schema namespace {XSD_NS}")
    lowering = _Lowering()
    for child in document:
        if _is_skipped(child):
            continue
        if not _is_xsd(child, "element"):
            raise XSDParseError(
                f"unsupported top-level construct "
                f"<{_pretty_tag(child.tag)}> (only xs:element "
                "declarations)")
        if child.get("minOccurs") is not None \
                or child.get("maxOccurs") is not None:
            raise XSDParseError(
                f"element {child.get('name')!r}: minOccurs/maxOccurs "
                "belong on particles, not top-level declarations")
        lowering.declare(child)
    if not lowering.declared:
        raise XSDParseError("no xs:element declarations found")
    root = root or next(iter(lowering.declared))
    if root not in lowering.declared:
        raise XSDParseError(f"root {root!r} is not declared")
    return normalize_dtd(lowering.declared, root, name)


# -- rendering ----------------------------------------------------------------

def dtd_to_xsd(dtd: DTD) -> str:
    """A normal-form DTD as an equivalent XSD-subset document.

    Root first, then the remaining types in definition order — the same
    convention as :func:`repro.dtd.serialize.dtd_to_text`, so the three
    renderings of one schema all parse back to the same fingerprint.
    """
    ordered = [dtd.root] + [t for t in dtd.types if t != dtd.root]
    lines = ['<?xml version="1.0" encoding="UTF-8"?>',
             f'<xs:schema xmlns:xs="{XSD_NS}">']
    for element_type in ordered:
        production = dtd.production(element_type)
        if isinstance(production, Str):
            lines.append(f'  <xs:element name="{element_type}" '
                         'type="xs:string"/>')
            continue
        if isinstance(production, Empty):
            lines.append(f'  <xs:element name="{element_type}">'
                         '<xs:complexType/></xs:element>')
            continue
        if isinstance(production, Concat):
            refs = "".join(f'<xs:element ref="{child}"/>'
                           for child in production.children)
            body = f"<xs:sequence>{refs}</xs:sequence>"
        elif isinstance(production, Disjunction):
            if len(production.children) == 1 and not production.optional:
                raise SchemaError(
                    f"{element_type!r}: a one-alternative mandatory "
                    "disjunction has no XSD-subset rendering")
            refs = "".join(f'<xs:element ref="{child}"/>'
                           for child in production.children)
            occurs = ' minOccurs="0"' if production.optional else ""
            body = f"<xs:choice{occurs}>{refs}</xs:choice>"
        elif isinstance(production, Star):
            body = ('<xs:sequence>'
                    f'<xs:element ref="{production.child}" minOccurs="0" '
                    'maxOccurs="unbounded"/></xs:sequence>')
        else:
            raise SchemaError(f"unknown production {production!r}")
        lines.append(f'  <xs:element name="{element_type}">'
                     f'<xs:complexType>{body}</xs:complexType>'
                     '</xs:element>')
    lines.append("</xs:schema>")
    return "\n".join(lines)
