"""The schema-frontend boundary: many input formats, one normalized IR.

Every layer above the parsers (engine, serve, CLI, workloads) consumes
schemas through this module instead of calling a concrete parser.  A
:class:`SchemaFrontend` lowers one textual format into the canonical
compile target — the normal-form :class:`~repro.dtd.model.DTD` of
Section 2.1 — and the registry makes formats pluggable:

* ``dtd``     — real ``<!ELEMENT …>`` declarations
  (:func:`repro.dtd.parser.parse_dtd`);
* ``compact`` — the ``type -> production`` normal-form shorthand
  (:func:`repro.dtd.parser.parse_compact`);
* ``xsd``     — the stdlib-only XML Schema subset of
  :mod:`repro.schema.xsd`.

The parity contract: the same grammar expressed in any registered
format lowers to a byte-identical normal form — same fingerprint, same
compiled artifacts, same serve responses (``tests/test_schema_frontends
.py``).  :func:`detect_format` sniffs undeclared input;
:func:`load_schema` is the one entry point consumers call.

Registering a new frontend is one call::

    register_frontend(MyRelaxNGFrontend())

after which auto-detection, ``--format`` listings and the serve
``format`` field all pick it up.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

from repro.dtd.model import DTD
from repro.dtd.parser import parse_compact, parse_dtd
from repro.schema.xsd import looks_like_xsd, parse_xsd

#: The pseudo-format meaning "sniff the text with :func:`detect_format`".
AUTO = "auto"


class SchemaFormatError(ValueError):
    """An unknown, undetectable or unregistered schema format."""


@runtime_checkable
class SchemaFrontend(Protocol):
    """One input format lowered into the normalized schema IR.

    Implementations are stateless; ``parse`` must return a normal-form
    :class:`DTD` (typically by lowering through
    :mod:`repro.dtd.normalize`) and raise a :class:`ValueError`
    subclass with a one-line message on malformed input — the CLI
    renders it as ``repro: error: <path>: …``.
    """

    format: str
    description: str

    def detect(self, text: str) -> bool:
        """Cheap sniff: does ``text`` look like this format?"""
        ...

    def parse(self, text: str, root: Optional[str] = None,
              name: str = "dtd") -> DTD:
        """Lower ``text`` to the canonical normal-form DTD."""
        ...


class _CallableFrontend:
    """A frontend from plain functions — how the built-ins are built."""

    def __init__(self, format: str, description: str,
                 detect: Callable[[str], bool],
                 parse: Callable[..., DTD]) -> None:
        self.format = format
        self.description = description
        self._detect = detect
        self._parse = parse

    def detect(self, text: str) -> bool:
        return self._detect(text)

    def parse(self, text: str, root: Optional[str] = None,
              name: str = "dtd") -> DTD:
        return self._parse(text, root=root, name=name)

    def __repr__(self) -> str:
        return f"<SchemaFrontend {self.format}>"


# -- the registry -------------------------------------------------------------
#
# Insertion order is detection order: DTD's "<!ELEMENT" marker is
# unambiguous, XSD is any XML document with an xs:schema root, and the
# compact syntax ("->" lines, no markup) comes last as the fallback.

_FRONTENDS: dict[str, SchemaFrontend] = {}


def register_frontend(frontend: SchemaFrontend,
                      replace: bool = False) -> SchemaFrontend:
    """Add ``frontend`` to the registry (``replace=True`` to override)."""
    if not replace and frontend.format in _FRONTENDS:
        raise SchemaFormatError(
            f"a frontend for format {frontend.format!r} is already "
            "registered (pass replace=True to override)")
    if frontend.format == AUTO:
        raise SchemaFormatError(f"{AUTO!r} is reserved for detection")
    _FRONTENDS[frontend.format] = frontend
    return frontend


def available_formats() -> list[str]:
    """Registered format names, in detection order."""
    return list(_FRONTENDS)


def frontend_for(format: str) -> SchemaFrontend:
    """The registered frontend for ``format``."""
    frontend = _FRONTENDS.get(format)
    if frontend is None:
        raise SchemaFormatError(
            f"unknown schema format {format!r} (known formats: "
            + ", ".join(available_formats()) + ")")
    return frontend


def detect_format(text: str) -> str:
    """Sniff which registered format ``text`` is written in.

    >>> detect_format("<!ELEMENT a (#PCDATA)>")
    'dtd'
    >>> detect_format("a -> b\\nb -> str")
    'compact'
    """
    for frontend in _FRONTENDS.values():
        if frontend.detect(text):
            return frontend.format
    # Built from the live registry, so a registered plugin format
    # shows up in the diagnostic too.
    expected = "; ".join(f"{frontend.format}: {frontend.description}"
                         for frontend in _FRONTENDS.values())
    raise SchemaFormatError(
        f"cannot detect the schema format (known formats — {expected})")


def load_schema(text: str, format: str = AUTO, root: Optional[str] = None,
                name: str = "dtd") -> DTD:
    """Lower schema text in any registered format to a normal-form DTD.

    The single entry point for every consumer layer: ``format`` names a
    registered frontend or :data:`AUTO` (the default) to sniff via
    :func:`detect_format`.

    >>> load_schema("db -> class*\\nclass -> str").root
    'db'
    """
    if format == AUTO:
        format = detect_format(text)
    return frontend_for(format).parse(text, root=root, name=name)


# -- the built-in frontends ---------------------------------------------------

def _detect_dtd(text: str) -> bool:
    return "<!ELEMENT" in text


def _detect_compact(text: str) -> bool:
    return "->" in text and not text.lstrip().startswith("<")


register_frontend(_CallableFrontend(
    "dtd", "<!ELEMENT …> declaration syntax",
    _detect_dtd, parse_dtd))
register_frontend(_CallableFrontend(
    "xsd", "XML Schema structural subset (stdlib-only)",
    looks_like_xsd, parse_xsd))
register_frontend(_CallableFrontend(
    "compact", "'type -> production' normal-form shorthand",
    _detect_compact, parse_compact))
