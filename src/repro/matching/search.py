"""The user-facing Schema-Embedding solver (Section 5's PROBLEM box).

``find_embedding(S1, S2, att, method=…)`` dispatches to:

* ``"random"``          — randomised assembly with restarts;
* ``"quality"``         — quality-ordered assembly;
* ``"indepset"``        — independent-set assembly;
* ``"exact"``           — complete backtracking (small schemas);
* ``"auto"`` (default)  — quality, then random, then indepset.

Returns a :class:`SearchResult` with the embedding (validated), the
method that succeeded, its quality ``qual(σ, att)`` and wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.embedding import SchemaEmbedding
from repro.core.similarity import SimilarityMatrix
from repro.dtd.model import DTD
from repro.matching.assemble import assemble_quality, assemble_random
from repro.matching.exact import exact_embedding
from repro.matching.indepset import assemble_indepset
from repro.matching.local import LocalSearchConfig

METHODS = ("auto", "random", "quality", "indepset", "exact")


@dataclass
class SearchResult:
    """Outcome of an embedding search."""

    embedding: Optional[SchemaEmbedding]
    method: str
    seconds: float
    quality: float = 0.0

    @property
    def found(self) -> bool:
        return self.embedding is not None


def search_embedding(source: DTD, target: DTD,
                     att: Optional[SimilarityMatrix] = None,
                     method: str = "auto", seed: int = 0,
                     restarts: int = 20,
                     config: Optional[LocalSearchConfig] = None,
                     target_index=None) -> SearchResult:
    """The uncached Schema-Embedding solver.

    ``target_index`` optionally supplies a precompiled per-type path
    index of ``target`` (see :class:`repro.engine.compiled.CompiledSchema`)
    shared by every strategy the dispatch tries.  Deterministic in all
    arguments, which is what makes :class:`repro.engine.session.Engine`
    caching of whole search results sound.
    """
    att = att or SimilarityMatrix.permissive()
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; pick from {METHODS}")
    started = time.perf_counter()
    embedding: Optional[SchemaEmbedding] = None
    used = method

    if method in ("quality", "auto"):
        embedding = assemble_quality(source, target, att, seed=seed,
                                     restarts=max(1, restarts // 4),
                                     config=config, target_index=target_index)
        used = "quality"
    if embedding is None and method in ("random", "auto"):
        embedding = assemble_random(source, target, att, seed=seed,
                                    restarts=restarts, config=config,
                                    target_index=target_index)
        used = "random"
    if embedding is None and method in ("indepset", "auto"):
        embedding = assemble_indepset(source, target, att, seed=seed,
                                      restarts=max(1, restarts // 2),
                                      config=config, target_index=target_index)
        used = "indepset"
    if embedding is None and method == "exact":
        embedding = exact_embedding(source, target, att,
                                    target_index=target_index)
        used = "exact"

    elapsed = time.perf_counter() - started
    quality = embedding.quality(att) if embedding is not None else 0.0
    if embedding is not None:
        embedding.check(att)
    return SearchResult(embedding, used if embedding else method,
                        elapsed, quality)


def find_embedding(source: DTD, target: DTD,
                   att: Optional[SimilarityMatrix] = None,
                   method: str = "auto", seed: int = 0,
                   restarts: int = 20,
                   config: Optional[LocalSearchConfig] = None,
                   ) -> SearchResult:
    """Solve Schema-Embedding heuristically (or exactly).

    Delegates to the default :class:`repro.engine.session.Engine` so
    the target's compiled path index is built once and shared, but
    bypasses the engine's whole-result cache: every call runs (and
    times) a real search, as this function always did.  Use
    ``Engine.find_embedding`` directly for cached request serving.

    >>> from repro.workloads.library import school_example
    >>> bundle = school_example()
    >>> result = find_embedding(bundle.classes, bundle.school)
    >>> result.found
    True
    """
    # Convenience wrapper delegating to the default engine; the
    # engine package imports this module.
    # lint: allow-lazy-import
    from repro.engine.session import default_engine

    return default_engine().find_embedding(source, target, att,
                                           method=method, seed=seed,
                                           restarts=restarts, config=config,
                                           use_cache=False)
