"""Algorithms for *computing* schema embeddings (Section 5 / VLDB'05).

The Schema-Embedding problem — given ``S1``, ``S2`` and ``att``, find a
valid embedding — is NP-complete (Theorem 5.1; the reduction lives in
:mod:`repro.matching.reduction`), and stays NP-complete for both of its
natural halves, Local-Embedding and Assemble-Embedding (Theorems
5.2/5.3).  The practical algorithms are therefore heuristic:

* :mod:`repro.matching.prefix_free` — candidate-path enumeration and
  the prefix-free path DFS of Section 5.2;
* :mod:`repro.matching.local` — local embeddings: one production's
  edges mapped to prefix-free paths, given candidate targets;
* :mod:`repro.matching.assemble` — assembling local embeddings into a
  global one: the **Random** and **Quality-Ordered** strategies;
* :mod:`repro.matching.indepset` — the third strategy: reduction to
  max-weight independent set plus a greedy/swap heuristic (standing in
  for [Busygin et al. 2002]);
* :mod:`repro.matching.exact` — exhaustive search (ground truth for
  small schemas);
* :mod:`repro.matching.simulation` — the conventional graph-similarity
  (simulation) baseline that cannot map Fig. 1;
* :mod:`repro.matching.search` — the user-facing ``find_embedding``.
"""

from repro.matching.search import SearchResult, find_embedding
from repro.matching.exact import exact_embedding
from repro.matching.simulation import simulation_mapping
from repro.matching.reduction import (
    dpll_satisfiable,
    reduction_from_3sat,
)

__all__ = [
    "SearchResult",
    "dpll_satisfiable",
    "exact_embedding",
    "find_embedding",
    "reduction_from_3sat",
    "simulation_mapping",
]
