"""The NP-hardness reduction of Theorem 5.1 (Fig. 8) plus a DPLL solver.

Given a 3SAT instance ``φ = C1 ∧ … ∧ Cn`` over variables ``x1 … xm``,
two nonrecursive concatenation-only DTDs are built such that φ is
satisfiable iff a valid schema embedding ``S1 → S2`` exists (with the
unrestricted similarity matrix):

* ``S1``: ``r → C1,…,Cn,Y1,…,Ym``; clause type ``Ci`` has ``n+i``
  ``Z`` children (its *signature*); variable type ``Ys`` has ``2n+s``
  ``W`` children;
* ``S2``: ``r → X1,…,Xm``; ``Xi → Ti, Fi``; ``Ti`` has a child ``Cj``
  for every clause in which ``xi`` occurs positively plus ``2n+i``
  ``W`` children; ``Fi`` likewise for negative occurrences; clause
  types again have their ``Z`` signatures.

``Ys ↦ Ts/Fs`` encodes the *negation* of a truth assignment: mapping
``Ys`` under ``Ts`` claims the root path ``Xs/Ts`` and thereby
prefix-blocks every clause route ``Xs/Ts/Ci``, so a clause type can
reach its ``S2`` counterpart iff some literal satisfies it under the
encoded assignment.

**Reproduction note.**  With the *fully* unrestricted similarity
matrix of the proof sketch, the W/Z occurrence counts alone do not pin
the λ images: our exact solver found "pair-stealing" embeddings for
unsatisfiable formulas (e.g. ``Y1 ↦ F1, Y2 ↦ T1`` with ``λ(W) = Z``
threading Y2's W children through clause signatures, liberating the
``X2`` gadget for unconstrained clause routing).  The conference
version's figure presumably carries details lost in the text.  We
therefore expose the reduction with the similarity matrix restricted
exactly as Theorem 5.2 describes for Local-Embedding ("source elements
are restricted to map to exactly two target elements"): infrastructure
types are pinned to their namesakes and each ``Ys`` may map to ``Ts``
or ``Fs`` — the truth choice, which is the entire source of hardness.
With that matrix the equivalence *φ satisfiable ⟺ embedding exists*
is validated in both directions against :func:`dpll_satisfiable` in
``tests/test_np_reduction.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.similarity import SimilarityMatrix
from repro.dtd.model import DTD, Concat, Empty

#: A literal is (variable index ≥ 1, polarity); a clause is a tuple of
#: literals; a formula is a sequence of clauses.
Literal = tuple[int, bool]
Clause = tuple[Literal, ...]
Formula = Sequence[Clause]


@dataclass
class Reduction:
    """The two DTDs built from a formula, plus the similarity matrix
    restricting λ as in Theorem 5.2 (see the module docstring)."""

    formula: tuple[Clause, ...]
    source: DTD  # S1
    target: DTD  # S2
    att: SimilarityMatrix
    n_clauses: int
    n_vars: int


def _variables(formula: Formula) -> int:
    return max((abs(v) for clause in formula for v, _p in clause),
               default=0)


def reduction_from_3sat(formula: Formula) -> Reduction:
    """Build (S1, S2) per the proof of Theorem 5.1.

    >>> red = reduction_from_3sat([((1, True), (2, False))])
    >>> red.source.root, red.target.root
    ('r', 'r')
    """
    clauses = tuple(tuple(clause) for clause in formula)
    n = len(clauses)
    m = _variables(clauses)
    if n == 0 or m == 0:
        raise ValueError("need at least one clause and one variable")

    # -- S1 ----------------------------------------------------------------
    s1: dict[str, Concat | Empty] = {}
    clause_types = [f"C{i}" for i in range(1, n + 1)]
    var_types = [f"Y{s}" for s in range(1, m + 1)]
    s1["r"] = Concat(tuple(clause_types + var_types))
    for i, name in enumerate(clause_types, start=1):
        s1[name] = Concat(("Z",) * (n + i))
    for s, name in enumerate(var_types, start=1):
        s1[name] = Concat(("W",) * (2 * n + s))
    s1["Z"] = Empty()
    s1["W"] = Empty()
    source = DTD(dict(s1), "r", name=f"3sat-src-{n}x{m}")

    # -- S2 ----------------------------------------------------------------
    s2: dict[str, Concat | Empty] = {}
    x_types = [f"X{i}" for i in range(1, m + 1)]
    s2["r"] = Concat(tuple(x_types))
    for i in range(1, m + 1):
        s2[f"X{i}"] = Concat((f"T{i}", f"F{i}"))
        positive = [f"C{j}" for j, clause in enumerate(clauses, start=1)
                    if (i, True) in clause]
        negative = [f"C{j}" for j, clause in enumerate(clauses, start=1)
                    if (i, False) in clause]
        s2[f"T{i}"] = Concat(tuple(positive + ["W"] * (2 * n + i)))
        s2[f"F{i}"] = Concat(tuple(negative + ["W"] * (2 * n + i)))
    for j in range(1, n + 1):
        s2[f"C{j}"] = Concat(("Z",) * (n + j))
    s2["Z"] = Empty()
    s2["W"] = Empty()
    target = DTD(dict(s2), "r", name=f"3sat-tgt-{n}x{m}")

    # -- att: pin infrastructure; leave only the truth choices open.
    att = SimilarityMatrix()
    att.set("r", "r", 1.0)
    att.set("Z", "Z", 1.0)
    att.set("W", "W", 1.0)
    for j in range(1, n + 1):
        att.set(f"C{j}", f"C{j}", 1.0)
    for s in range(1, m + 1):
        att.set(f"Y{s}", f"T{s}", 1.0)
        att.set(f"Y{s}", f"F{s}", 1.0)

    return Reduction(clauses, source, target, att, n, m)


def assignment_to_embedding_hint(reduction: Reduction,
                                 assignment: dict[int, bool],
                                 ) -> dict[str, str]:
    """The λ the proof constructs from a satisfying assignment:
    λ(Ys) = Fs if xs is true else Ts (the *negation* coding)."""
    lam = {"r": "r", "Z": "Z", "W": "W"}
    for i in range(1, reduction.n_clauses + 1):
        lam[f"C{i}"] = f"C{i}"
    for s in range(1, reduction.n_vars + 1):
        lam[f"Y{s}"] = f"F{s}" if assignment.get(s, False) else f"T{s}"
    return lam


# -- DPLL ---------------------------------------------------------------------

def dpll_satisfiable(formula: Formula,
                     ) -> Optional[dict[int, bool]]:
    """A satisfying assignment, or ``None`` (classic DPLL with unit
    propagation and pure-literal elimination)."""
    clauses = [frozenset((v if p else -v) for v, p in clause)
               for clause in formula]
    return _dpll(clauses, {})


def _dpll(clauses: list[frozenset[int]],
          assignment: dict[int, bool]) -> Optional[dict[int, bool]]:
    clauses, assignment = _propagate(clauses, dict(assignment))
    if clauses is None:
        return None
    if not clauses:
        return assignment
    variable = abs(next(iter(next(iter(clauses)))))
    for value in (True, False):
        literal = variable if value else -variable
        result = _dpll(clauses + [frozenset([literal])],
                       assignment)
        if result is not None:
            result.setdefault(variable, value)
            return result
    return None


def _propagate(clauses: list[frozenset[int]], assignment: dict[int, bool],
               ):
    work = list(clauses)
    while True:
        unit = next((c for c in work if len(c) == 1), None)
        if unit is None:
            return work, assignment
        literal = next(iter(unit))
        variable, value = abs(literal), literal > 0
        if assignment.get(variable, value) != value:
            return None, assignment
        assignment[variable] = value
        new_work = []
        for clause in work:
            if literal in clause:
                continue
            reduced = clause - {-literal}
            if not reduced:
                return None, assignment
            new_work.append(reduced)
        work = new_work
