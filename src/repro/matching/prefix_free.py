"""Candidate paths and the prefix-free path problem (Section 5.2).

Two tools:

* :func:`enumerate_paths` — all XR paths of a requested *kind* (AND /
  OR / STAR / text) from a start type, up to length and count caps.
  The caps default to practical values well below the Theorem 4.10
  worst-case bounds; the exact solver can raise them.
* :func:`prefix_free_assign` — the paper's formulation: given a source
  node ``s`` and targets ``t1 … tn``, find pairwise prefix-free paths
  ``s → ti``.  Solved by the depth-first variant the paper sketches —
  "upon finding a path from s to some target ti, [return] from that
  search without marking ti as done" — with backtracking over
  assignment choices.  Used directly by the local-embedding search and
  compared against naive enumeration in the E15 ablation benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Star as StarProd,
    Str,
)
from repro.xpath.paths import PathStep, XRPath


class PathKind(enum.Enum):
    """Requested path classification (Section 4.1)."""

    AND = "and"    # concatenation edges: no OR, stars pinned
    OR = "or"      # disjunction edges: ≥1 OR edge, no stars
    STAR = "star"  # star edges: one unpinned carrier
    TEXT = "text"  # str productions: AND-shaped, ends at a str type


@dataclass(frozen=True)
class PathRequest:
    """One edge's requirements: reach ``end`` (or any str type for
    TEXT) via a path of the given kind."""

    kind: PathKind
    end: Optional[str]  # None only for TEXT


def _steps_for(dtd: DTD, current: str,
               kind: PathKind, star_seen: bool) -> Iterator[tuple[PathStep, str, bool]]:
    """Successor steps consistent with the path kind.

    Yields (step, next_type, star_seen') triples.  ``star_seen`` tracks
    whether the STAR carrier has been consumed.
    """
    production = dtd.production(current)
    if isinstance(production, Concat):
        seen: dict[str, int] = {}
        for child in production.children:
            seen[child] = seen.get(child, 0) + 1
            pos = seen[child] if production.occurrence_count(child) > 1 else None
            yield PathStep(child, pos), child, star_seen
    elif isinstance(production, Disjunction):
        if kind is not PathKind.OR:
            return
        for child in production.children:
            yield PathStep(child), child, star_seen
    elif isinstance(production, StarProd):
        if kind is PathKind.OR:
            return
        if kind is PathKind.STAR and not star_seen:
            # The multiplicity carrier: unpinned.
            yield PathStep(production.child), production.child, True
        elif kind in (PathKind.AND, PathKind.TEXT):
            # Pinned star instance (R3); position 1 is canonical.
            yield (PathStep(production.child, 1), production.child,
                   star_seen)


def _satisfies(dtd: DTD, path: tuple[PathStep, ...], current: str,
               request: PathRequest, has_or: bool, star_seen: bool) -> bool:
    if not path:
        return False
    if request.kind is PathKind.AND:
        return current == request.end
    if request.kind is PathKind.OR:
        return current == request.end and has_or
    if request.kind is PathKind.STAR:
        return current == request.end and star_seen
    assert request.kind is PathKind.TEXT
    return isinstance(dtd.production(current), Str)


def enumerate_paths(dtd: DTD, start: str, request: PathRequest,
                    max_len: int = 8, max_count: int = 16) -> list[XRPath]:
    """All paths of the requested kind, shortest first.

    >>> from repro.workloads.library import school_example
    >>> school = school_example().school
    >>> req = PathRequest(PathKind.OR, "regular")
    >>> [str(p) for p in enumerate_paths(school, "category", req, max_len=2)]
    ['mandatory/regular']
    """
    results: list[XRPath] = []
    if request.kind is PathKind.TEXT and isinstance(dtd.production(start),
                                                    Str):
        # Zero element steps: the bare "text()" path (Example 4.2's
        # path1(A, str) = text()).
        results.append(XRPath((), text=True))
    # Iterative-deepening flavoured BFS over (type, path, flags).
    frontier: list[tuple[str, tuple[PathStep, ...], bool, bool]] = [
        (start, (), False, False)]
    while frontier and len(results) < max_count:
        next_frontier: list[tuple[str, tuple[PathStep, ...], bool, bool]] = []
        for current, path, has_or, star_seen in frontier:
            if len(path) >= max_len:
                continue
            production = dtd.production(current)
            is_or_parent = isinstance(production, Disjunction)
            for step, nxt, star_after in _steps_for(dtd, current,
                                                    request.kind, star_seen):
                new_path = path + (step,)
                new_or = has_or or is_or_parent
                if _satisfies(dtd, new_path, nxt, request, new_or,
                              star_after):
                    text = request.kind is PathKind.TEXT
                    results.append(XRPath(new_path, text=text))
                    if len(results) >= max_count:
                        break
                next_frontier.append((nxt, new_path, new_or, star_after))
            if len(results) >= max_count:
                break
        frontier = next_frontier
    return results


def _is_prefix_conflict(p1: XRPath, p2: XRPath) -> bool:
    return p1.is_prefix_of(p2) or p2.is_prefix_of(p1)


def prefix_free_assign(dtd: DTD, start: str, requests: list[PathRequest],
                       max_len: int = 8, max_count: int = 16,
                       order: Optional[list[int]] = None,
                       extra_check: Optional[
                           Callable[[list[Optional[XRPath]]], bool]] = None,
                       ) -> Optional[list[XRPath]]:
    """Assign pairwise prefix-free paths to all requests, or ``None``.

    Backtracking over per-request candidate lists (the DFS enumeration
    above); ``order`` permutes the assignment order (the Random
    heuristic feeds shuffled orders); ``extra_check`` lets the caller
    impose additional pairwise conditions (the OR-divergence refinement
    R1) on partial assignments.
    """
    count = len(requests)
    sequence = order if order is not None else list(range(count))
    candidates = [enumerate_paths(dtd, start, requests[i], max_len,
                                  max_count) for i in range(count)]
    chosen: list[Optional[XRPath]] = [None] * count

    def backtrack(position: int) -> bool:
        if position == count:
            return True
        index = sequence[position]
        for candidate in candidates[index]:
            if any(other is not None
                   and _is_prefix_conflict(candidate, other)
                   for other in chosen):
                continue
            chosen[index] = candidate
            if extra_check is None or extra_check(chosen):
                if backtrack(position + 1):
                    return True
            chosen[index] = None
        return False

    if not backtrack(0):
        return None
    assert all(path is not None for path in chosen)
    return [path for path in chosen if path is not None]
