"""Exhaustive search for schema embeddings (ground truth).

Complete backtracking over λ assignments and candidate paths — the NP
algorithm of Theorem 5.1 ("guess a mapping, check it"), made
deterministic.  Exponential: intended for small schemas (tests, the
3SAT reduction, accuracy baselines).  Completeness is relative to the
path enumeration caps, which default to the Theorem 4.10 small-model
bounds truncated at ``max_len``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.embedding import SchemaEmbedding
from repro.core.similarity import SimilarityMatrix
from repro.dtd.model import DTD
from repro.matching.assemble import _bfs_order
from repro.matching.local import LocalEmbedder, LocalSearchConfig
from repro.xpath.paths import XRPath


def exact_embedding(source: DTD, target: DTD, att: SimilarityMatrix,
                    max_len: int = 6, max_paths: int = 64,
                    max_candidates: int = 16,
                    node_budget: int = 200_000,
                    target_index=None) -> Optional[SchemaEmbedding]:
    """Find *some* valid embedding by complete backtracking, or ``None``.

    >>> from repro.workloads.library import fig3_scenarios
    >>> from repro.core.similarity import SimilarityMatrix
    >>> sc = [s for s in fig3_scenarios() if s.key == "c"][0]
    >>> att = SimilarityMatrix.permissive()
    >>> exact_embedding(sc.source, sc.target, att) is not None
    True
    """
    config = LocalSearchConfig(max_len=max_len, max_paths=max_paths,
                               max_candidates=max_candidates,
                               max_nodes=node_budget)
    embedder = LocalEmbedder(source, target, att, config,
                             target_index=target_index)
    order = _bfs_order(source)
    budget = [node_budget]

    def candidates_for(source_type: str, lam: dict[str, str]) -> list[str]:
        if source_type == source.root:
            return [target.root]
        if source_type in lam:
            return [lam[source_type]]
        ranked = att.candidates(source_type, target.types)
        return [t for t, _score in ranked][:max_candidates]

    def backtrack(position: int, lam: dict[str, str],
                  paths: dict[tuple[str, str, int], XRPath],
                  ) -> Optional[SchemaEmbedding]:
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        if position == len(order):
            embedding = SchemaEmbedding(source, target, dict(lam),
                                        dict(paths))
            return embedding if embedding.is_valid(att) else None
        source_type = order[position]
        for image in candidates_for(source_type, lam):
            # Enumerate local mappings for this image, trying each
            # child-image/path combination the embedder can produce.
            for mapping in _all_local(embedder, source_type, image, lam):
                new_lam = dict(lam)
                new_lam[source_type] = image
                conflict = False
                for child, child_image in mapping.child_images.items():
                    if new_lam.get(child, child_image) != child_image:
                        conflict = True
                        break
                    new_lam[child] = child_image
                if conflict:
                    continue
                new_paths = dict(paths)
                new_paths.update(mapping.paths)
                result = backtrack(position + 1, new_lam, new_paths)
                if result is not None:
                    return result
        return None

    return backtrack(0, {source.root: target.root}, {})


def _all_local(embedder: LocalEmbedder, source_type: str, image: str,
               lam: dict[str, str]):
    """Local mappings for one (type, image) pair.

    The local embedder returns its first solution per image; to stay
    complete we re-run it with each admissible combination of child
    images pinned.  Child-image combinations are enumerated lazily.
    """
    production = embedder.source.production(source_type)
    child_types = sorted(set(production.child_types()))
    free = [c for c in child_types if c not in lam]

    def combos(index: int, fixed: dict[str, str]):
        if index == len(free):
            mapping = embedder.find(source_type, image, {**lam, **fixed})
            if mapping is not None:
                yield mapping
            return
        child = free[index]
        ranked = embedder.att.candidates(child, embedder.target.types)
        for candidate, _score in ranked[:embedder.config.max_candidates]:
            fixed[child] = candidate
            yield from combos(index + 1, fixed)
            del fixed[child]

    yield from combos(0, {})
