"""Local embeddings (Section 5.1): one production, prefix-free paths.

A *local mapping* restricts the embedding to the schema elements of a
single source production: it fixes ``λ(A) = C``, picks a target type
for every child, and finds paths of the right kind satisfying the
Section 4.1 conditions (prefix-free; OR divergence R1; optional
signalling R2).  Local-Embedding is itself NP-complete (Theorem 5.2) —
candidate targets per child make the path choices interact — so the
finder is a bounded backtracking search over randomly- or
quality-ordered candidates, as in the VLDB'05 heuristics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.similarity import SimilarityMatrix
from repro.dtd.mindef import MinDef
from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    EdgeKind,
    Empty,
    Star as StarProd,
    Str,
)
from repro.matching.prefix_free import (
    PathKind,
    PathRequest,
    enumerate_paths,
)
from repro.xpath.evaluator import evaluate
from repro.xpath.paths import XRPath, classify_path, first_divergence


@dataclass
class LocalMapping:
    """A local embedding for one source production."""

    source_type: str
    image: str                     # λ(source_type)
    child_images: dict[str, str]   # λ for the child types
    paths: dict[tuple[str, str, int], XRPath]
    quality: float = 0.0

    def assignments(self) -> dict[str, str]:
        out = dict(self.child_images)
        out[self.source_type] = self.image
        return out


@dataclass
class LocalSearchConfig:
    max_len: int = 8
    max_paths: int = 16
    max_candidates: int = 8     # target candidates tried per child
    max_nodes: int = 4000       # backtracking budget


class LocalEmbedder:
    """Finds local mappings for productions of one (S1, S2, att) triple.

    ``target_index`` may be a :class:`repro.engine.compiled.CompiledSchema`
    of ``target`` (or any object with compatible ``mindef`` /
    ``paths(image, kind, end, max_len, max_paths)`` members): candidate
    target paths and the mindef are then served from the precompiled
    per-type index and survive across embedder instances.
    """

    def __init__(self, source: DTD, target: DTD, att: SimilarityMatrix,
                 config: Optional[LocalSearchConfig] = None,
                 target_index=None) -> None:
        self.source = source
        self.target = target
        self.att = att
        self.config = config or LocalSearchConfig()
        self.target_index = target_index
        self.mindef = (target_index.mindef if target_index is not None
                       else MinDef(target))
        self._path_cache: dict[tuple[str, PathKind, Optional[str]],
                               list[XRPath]] = {}
        self._feasible_cache: dict[tuple[str, str], bool] = {}

    # ------------------------------------------------------------------
    def _candidate_images(self, source_type: str,
                          fixed: dict[str, str],
                          rng: Optional[random.Random]) -> list[str]:
        if source_type in fixed:
            return [fixed[source_type]]
        ranked = self.att.candidates(source_type, self.target.types)
        candidates = [t for t, _score in ranked
                      if self.feasible(source_type, t)]
        candidates = candidates[:self.config.max_candidates]
        if rng is not None:
            rng.shuffle(candidates)
        return candidates

    def _reachable_images(self, source_type: str, fixed: dict[str, str],
                          image: str, kind: PathKind,
                          rng: Optional[random.Random]) -> list[str]:
        """Candidate images for a child, pre-filtered by (a) the
        existence of a path of the right kind from ``image`` and (b) a
        memoized feasibility lookahead — the child's own production
        must be locally embeddable from the candidate.  These cheap
        structural checks make permissive/ambiguous matrices tractable
        (Example 4.2's ``att`` admits *every* pair)."""
        if source_type in fixed:
            return [fixed[source_type]]
        ranked = self.att.candidates(source_type, self.target.types)
        admissible = [t for t, _score in ranked
                      if self._paths(image, kind, t)
                      and self.feasible(source_type, t)]
        admissible = admissible[:self.config.max_candidates]
        if rng is not None:
            rng.shuffle(admissible)
        return admissible

    def feasible(self, source_type: str, image: str) -> bool:
        """Whether ``source_type``'s production has *some* local mapping
        from ``image`` (with free child images).  Memoized; cycles in
        the source schema are resolved optimistically, so ``False`` is
        definitive while ``True`` is a heuristic go-ahead."""
        key = (source_type, image)
        cached = self._feasible_cache.get(key)
        if cached is not None:
            return cached
        self._feasible_cache[key] = True  # optimistic for cycles
        result = self.find(source_type, image, {}) is not None
        self._feasible_cache[key] = result
        return result

    def _paths(self, image: str, kind: PathKind,
               end: Optional[str]) -> list[XRPath]:
        if self.target_index is not None:
            return self.target_index.paths(image, kind, end,
                                           self.config.max_len,
                                           self.config.max_paths)
        key = (image, kind, end)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = enumerate_paths(self.target, image,
                                     PathRequest(kind, end),
                                     self.config.max_len,
                                     self.config.max_paths)
            self._path_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    def find(self, source_type: str, image: str,
             fixed: dict[str, str],
             rng: Optional[random.Random] = None) -> Optional[LocalMapping]:
        """A local mapping for ``source_type`` with ``λ(source_type) =
        image``, respecting already-fixed child images."""
        production = self.source.production(source_type)
        if isinstance(production, Empty):
            return self._finish(source_type, image, {}, {})
        if isinstance(production, Str):
            for path in self._paths(image, PathKind.TEXT, None):
                return self._finish(source_type, image, {},
                                    {(source_type, "#str", 1): path})
            return None
        if isinstance(production, Concat):
            return self._find_edges(source_type, image, production, fixed,
                                    PathKind.AND, rng)
        if isinstance(production, Disjunction):
            return self._find_edges(source_type, image, production, fixed,
                                    PathKind.OR, rng)
        assert isinstance(production, StarProd)
        return self._find_edges(source_type, image, production, fixed,
                                PathKind.STAR, rng)

    def _edge_list(self, production) -> list[tuple[str, int]]:
        if isinstance(production, Concat):
            seen: dict[str, int] = {}
            out = []
            for child in production.children:
                seen[child] = seen.get(child, 0) + 1
                out.append((child, seen[child]))
            return out
        if isinstance(production, Disjunction):
            return [(child, 1) for child in production.children]
        assert isinstance(production, StarProd)
        return [(production.child, 1)]

    def _find_edges(self, source_type: str, image: str, production,
                    fixed: dict[str, str], kind: PathKind,
                    rng: Optional[random.Random]) -> Optional[LocalMapping]:
        edges = self._edge_list(production)
        config = self.config
        budget = [config.max_nodes]
        optional = getattr(production, "optional", False)
        default_tree = (self.mindef.instance(image)
                        if kind is PathKind.OR and optional else None)

        # Candidate images per distinct child type, consistent across
        # repeated occurrences of the same type, pre-filtered by path
        # existence from the image.
        child_types = sorted({child for child, _occ in edges})
        image_options = {
            child: self._reachable_images(child, fixed, image, kind, rng)
            for child in child_types}
        if any(not options for options in image_options.values()):
            return None

        chosen_paths: dict[tuple[str, str, int], XRPath] = {}
        chosen_images: dict[str, str] = {}

        order_keys = [(source_type, child, occ) for child, occ in edges]

        def compatible(candidate: XRPath) -> bool:
            for other in chosen_paths.values():
                if (candidate.is_prefix_of(other)
                        or other.is_prefix_of(candidate)):
                    return False
                if kind is PathKind.OR:
                    divergence = first_divergence(candidate, other)
                    if divergence is not None:
                        info = classify_path(candidate, self.target, image)
                        if info.edges[divergence].kind is not EdgeKind.OR:
                            return False
            if kind is PathKind.OR and default_tree is not None:
                if evaluate(candidate.to_expr(), default_tree):
                    return False  # R2: optional signalling
            return True

        def backtrack(index: int) -> bool:
            if budget[0] <= 0:
                return False
            if index == len(edges):
                return True
            child, occ = edges[index]
            key = order_keys[index]
            images = ([chosen_images[child]] if child in chosen_images
                      else image_options[child])
            for child_image in images:
                candidates = self._paths(image, kind, child_image)
                for candidate in candidates:
                    budget[0] -= 1
                    if budget[0] <= 0:
                        return False
                    if not compatible(candidate):
                        continue
                    newly_fixed = child not in chosen_images
                    chosen_paths[key] = candidate
                    chosen_images[child] = child_image
                    if backtrack(index + 1):
                        return True
                    del chosen_paths[key]
                    if newly_fixed:
                        del chosen_images[child]
            return False

        if not backtrack(0):
            return None
        return self._finish(source_type, image, chosen_images, chosen_paths)

    def _finish(self, source_type: str, image: str,
                child_images: dict[str, str],
                paths: dict[tuple[str, str, int], XRPath]) -> LocalMapping:
        quality = self.att.get(source_type, image)
        quality += sum(self.att.get(child, target)
                       for child, target in child_images.items())
        return LocalMapping(source_type, image, child_images, dict(paths),
                            quality)

    def find_all(self, source_type: str, fixed: dict[str, str],
                 rng: Optional[random.Random] = None,
                 limit: int = 6) -> list[LocalMapping]:
        """Up to ``limit`` local mappings across candidate images
        (used by the independent-set assembly)."""
        out: list[LocalMapping] = []
        for image in self._candidate_images(source_type, fixed, rng):
            mapping = self.find(source_type, image, fixed, rng)
            if mapping is not None:
                out.append(mapping)
            if len(out) >= limit:
                break
        return out
