"""Independent-set assembly (the third VLDB'05 strategy).

"The final approach reduces the Assemble-Embeddings problem to that of
finding high-weight independent sets in a graph, and uses an existing
heuristic solution [Busygin et al. 2002]."

Vertices are candidate local mappings (several per source production);
two vertices conflict when they assign some source type to different
target types.  A global embedding is an independent set containing
exactly one vertex per source type whose assignments are mutually
consistent.  We weight vertices by their ``att`` quality and run a
greedy maximum-weight heuristic with randomised restarts and a 1-swap
improvement pass — the same role the QUALEX heuristic plays in the
paper's experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.embedding import SchemaEmbedding
from repro.core.similarity import SimilarityMatrix
from repro.dtd.model import DTD
from repro.matching.assemble import _bfs_order
from repro.matching.local import LocalEmbedder, LocalMapping, LocalSearchConfig
from repro.xpath.paths import XRPath


@dataclass
class _Vertex:
    index: int
    mapping: LocalMapping
    weight: float


def _conflicts(a: LocalMapping, b: LocalMapping) -> bool:
    assignments = a.assignments()
    for source_type, image in b.assignments().items():
        if assignments.get(source_type, image) != image:
            return True
    return False


def _enumerate_vertices(embedder: LocalEmbedder, source: DTD, target: DTD,
                        rng: random.Random,
                        per_type: int) -> dict[str, list[_Vertex]]:
    """Candidate local mappings per source type.

    The root is pinned to the target root; other types draw images from
    the att candidates.  Child images inside a candidate are free — the
    independent-set structure resolves cross-production consistency.
    """
    vertices: dict[str, list[_Vertex]] = {}
    counter = 0
    for source_type in _bfs_order(source):
        fixed = ({source.root: target.root}
                 if source_type == source.root else {})
        found = embedder.find_all(source_type, fixed, rng, limit=per_type)
        bucket: list[_Vertex] = []
        for mapping in found:
            bucket.append(_Vertex(counter, mapping, mapping.quality))
            counter += 1
        vertices[source_type] = bucket
    return vertices


def assemble_indepset(source: DTD, target: DTD, att: SimilarityMatrix,
                      seed: int = 0, restarts: int = 10,
                      per_type: int = 6,
                      config: Optional[LocalSearchConfig] = None,
                      target_index=None) -> Optional[SchemaEmbedding]:
    """Greedy max-weight independent-set assembly with restarts.

    Each restart re-randomises the vertex enumeration and greedy tie
    breaking; a swap pass tries replacing a committed vertex when a
    type has no compatible candidate left.
    """
    embedder = LocalEmbedder(source, target, att, config,
                             target_index=target_index)
    rng = random.Random(seed)

    for _restart in range(max(1, restarts)):
        attempt_rng = random.Random(rng.random())
        vertices = _enumerate_vertices(embedder, source, target,
                                       attempt_rng, per_type)
        if not vertices.get(source.root):
            continue
        result = _greedy_select(source, target, att, vertices, attempt_rng,
                                embedder)
        if result is not None:
            return result
    return None


def _greedy_select(source: DTD, target: DTD, att: SimilarityMatrix,
                   vertices: dict[str, list[_Vertex]],
                   rng: random.Random,
                   embedder: LocalEmbedder) -> Optional[SchemaEmbedding]:
    chosen: dict[str, _Vertex] = {}
    fresh_index = [10_000_000]

    def consistent(vertex: _Vertex) -> bool:
        return all(not _conflicts(vertex.mapping, other.mapping)
                   for other in chosen.values())

    def implied_images() -> dict[str, str]:
        implied: dict[str, str] = {}
        for vertex in chosen.values():
            implied.update(vertex.mapping.assignments())
        return implied

    def demand_vertex(source_type: str, image: str,
                      implied: dict[str, str]) -> Optional[_Vertex]:
        """Generate a vertex with a pinned image on demand: the static
        buckets cannot anticipate every image another vertex assigns."""
        mapping = embedder.find(source_type, image, implied)
        if mapping is None:
            return None
        fresh_index[0] += 1
        return _Vertex(fresh_index[0], mapping, mapping.quality)

    pending = set(vertices)
    repairs = 3 * len(vertices) + 10
    while pending:
        implied = implied_images()
        best: Optional[tuple[str, _Vertex]] = None
        # First serve types whose image is already forced by chosen
        # vertices (keeps the independent set completable).
        forced = sorted(t for t in pending if t in implied)
        for source_type in forced:
            image = implied[source_type]
            candidate = next(
                (v for v in vertices[source_type]
                 if v.mapping.image == image and consistent(v)), None)
            if candidate is None:
                candidate = demand_vertex(source_type, image, implied)
                if candidate is not None and not consistent(candidate):
                    candidate = None
            if candidate is not None:
                best = (source_type, candidate)
                break
            # Forced type has no compatible vertex: conflict.
            best = None
            break
        else:
            for source_type in sorted(pending):
                for vertex in vertices[source_type]:
                    if not consistent(vertex):
                        continue
                    if best is None or vertex.weight > best[1].weight:
                        best = (source_type, vertex)
                    break  # buckets quality-ordered: first feasible wins
        if best is None:
            # 1-swap repair: drop a random committed vertex and retry
            # the blocked types with its alternatives.
            repairs -= 1
            if not chosen or repairs <= 0:
                return None
            victim_type = rng.choice(sorted(chosen))
            victim = chosen.pop(victim_type)
            pending.add(victim_type)
            alternatives = [v for v in vertices[victim_type]
                            if v.index != victim.index]
            vertices[victim_type] = alternatives
            continue
        source_type, vertex = best
        chosen[source_type] = vertex
        pending.discard(source_type)

    lam: dict[str, str] = {}
    paths: dict[tuple[str, str, int], XRPath] = {}
    for vertex in chosen.values():
        for key, value in vertex.mapping.assignments().items():
            lam[key] = value
        paths.update(vertex.mapping.paths)
    embedding = SchemaEmbedding(source, target, lam, paths)
    if not embedding.is_valid(att):
        return None
    return embedding
