"""The conventional graph-similarity (simulation) baseline.

Related work (Section 6) matches structures with "a strict graph
similarity model like simulation … which is incapable of mapping DTDs
with different structures such as those shown in Figure 1".  This
module implements that baseline so the claim is reproducible: the
greatest simulation respecting edge kinds and ``att``, from which an
edge-to-edge mapping is derived when one exists.

``simulation_mapping`` returns ``None`` for Fig. 1 (no simulation maps
``db`` to ``school``) while schema embedding succeeds — benchmark E1.
"""

from __future__ import annotations

from typing import Optional

from repro.core.similarity import SimilarityMatrix
from repro.dtd.model import DTD


def greatest_simulation(source: DTD, target: DTD, att: SimilarityMatrix,
                        ) -> set[tuple[str, str]]:
    """The greatest relation R with: (A,C) ∈ R only if att(A,C) > 0 and
    every source edge from A has a matching same-kind target edge from
    C into an R-related child (the standard simulation fixpoint)."""
    relation = {(a, c)
                for a in source.types
                for c in target.types
                if att.get(a, c) > 0.0}
    changed = True
    while changed:
        changed = False
        for (a, c) in list(relation):
            if not _simulates(source, target, relation, a, c):
                relation.discard((a, c))
                changed = True
    return relation


def _simulates(source: DTD, target: DTD,
               relation: set[tuple[str, str]], a: str, c: str) -> bool:
    target_edges = target.edges_from(c)
    for edge in source.edges_from(a):
        if not any(candidate.kind is edge.kind
                   and (edge.child, candidate.child) in relation
                   for candidate in target_edges):
            return False
    return True


def simulation_mapping(source: DTD, target: DTD,
                       att: Optional[SimilarityMatrix] = None,
                       ) -> Optional[dict[str, str]]:
    """A λ-style type mapping derived from the greatest simulation, or
    ``None`` when the roots are not similar.

    The mapping picks, per source type, the highest-att similar target
    type reachable alongside it from the roots — a representative of
    what similarity-flooding-style matchers produce.
    """
    att = att or SimilarityMatrix.permissive()
    relation = greatest_simulation(source, target, att)
    if (source.root, target.root) not in relation:
        return None
    mapping: dict[str, str] = {source.root: target.root}
    queue = [(source.root, target.root)]
    while queue:
        a, c = queue.pop()
        for edge in source.edges_from(a):
            if edge.child in mapping:
                continue
            candidates = [candidate.child
                          for candidate in target.edges_from(c)
                          if candidate.kind is edge.kind
                          and (edge.child, candidate.child) in relation]
            if not candidates:
                return None
            best = max(candidates,
                       key=lambda t, child=edge.child: att.get(child, t))
            mapping[edge.child] = best
            queue.append((edge.child, best))
    return mapping
