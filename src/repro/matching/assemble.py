"""Assembling local embeddings: Random and Quality-Ordered (Section 5.2).

The assembly walks the source schema from the root (so λ(A) is fixed
by the time A's own production is processed), finds a local mapping per
production, and commits its child assignments.  On failure the whole
attempt restarts with a fresh random seed — the paper: "If the attempt
fails, new random orderings can be used in an attempt to find
additional local mappings."

* **Random** — types visited in randomised BFS order, candidate images
  and paths in random order;
* **Quality-Ordered** — candidates in decreasing ``att`` order; within
  a BFS layer, types with higher best-scores go first ("start with
  'better' mappings in an effort to find a good solution").
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from repro.core.embedding import SchemaEmbedding
from repro.core.similarity import SimilarityMatrix
from repro.dtd.model import DTD
from repro.matching.local import LocalEmbedder, LocalSearchConfig
from repro.xpath.paths import XRPath


def _bfs_order(source: DTD) -> list[str]:
    order: list[str] = []
    seen = {source.root}
    queue = deque([source.root])
    while queue:
        current = queue.popleft()
        order.append(current)
        for edge in source.edges_from(current):
            if edge.child not in seen:
                seen.add(edge.child)
                queue.append(edge.child)
    # Unreachable types (inconsistent schemas) go last.
    order.extend(t for t in source.types if t not in seen)
    return order


def _quality_order(source: DTD, target: DTD,
                   att: SimilarityMatrix) -> list[str]:
    """The Quality-Ordered visit order: greedy by best att score,
    repaired so parents precede children.  Deterministic in (S1, S2,
    att), so assemblies compute it once and reuse it across restarts."""
    order = _bfs_order(source)
    order.sort(key=lambda t: -max(
        [att.get(t, c) for c in target.types] or [0.0]))
    order.remove(source.root)
    order.insert(0, source.root)
    return _stable_parents_first(source, order)


def _attempt(embedder: LocalEmbedder, source: DTD, target: DTD,
             att: SimilarityMatrix, rng: Optional[random.Random],
             order: list[str]) -> Optional[SchemaEmbedding]:
    lam: dict[str, str] = {source.root: target.root}
    paths: dict[tuple[str, str, int], XRPath] = {}

    for source_type in order:
        if source_type not in lam:
            # Parent hasn't fixed it (unreachable type): pick best.
            candidates = att.candidates(source_type, target.types)
            if not candidates:
                return None
            lam[source_type] = candidates[0][0]
        mapping = embedder.find(source_type, lam[source_type], lam, rng)
        if mapping is None:
            return None
        for child, image in mapping.child_images.items():
            existing = lam.get(child)
            if existing is not None and existing != image:
                return None  # conflict with an earlier commitment
            lam[child] = image
        paths.update(mapping.paths)

    embedding = SchemaEmbedding(source, target, lam, paths)
    if not embedding.is_valid(att):
        return None
    return embedding


def _shuffled_layers(source: DTD, rng: random.Random) -> list[str]:
    order: list[str] = []
    seen = {source.root}
    layer = [source.root]
    while layer:
        rng.shuffle(layer)
        order.extend(layer)
        nxt: list[str] = []
        for current in layer:
            for edge in source.edges_from(current):
                if edge.child not in seen:
                    seen.add(edge.child)
                    nxt.append(edge.child)
        layer = nxt
    order.extend(t for t in source.types if t not in seen)
    return order


def _stable_parents_first(source: DTD, preferred: list[str]) -> list[str]:
    """Reorder ``preferred`` so every type follows one of its parents
    (greedy topological repair keeping the preference order)."""
    placed: set[str] = set()
    available = {source.root}
    order: list[str] = []
    remaining = list(preferred)
    while remaining:
        chosen = next((t for t in remaining if t in available), None)
        if chosen is None:
            chosen = remaining[0]
        remaining.remove(chosen)
        order.append(chosen)
        placed.add(chosen)
        for edge in source.edges_from(chosen):
            available.add(edge.child)
    return order


def assemble_random(source: DTD, target: DTD, att: SimilarityMatrix,
                    seed: int = 0, restarts: int = 20,
                    config: Optional[LocalSearchConfig] = None,
                    target_index=None) -> Optional[SchemaEmbedding]:
    """The Random assembly strategy: shuffled orders, many restarts.

    Each restart shuffles its own visit order (parents still precede
    children); only the shuffle — not a fresh BFS — runs per restart.
    """
    embedder = LocalEmbedder(source, target, att, config,
                             target_index=target_index)
    rng = random.Random(seed)
    for _attempt_index in range(max(1, restarts)):
        attempt_rng = random.Random(rng.random())
        order = _shuffled_layers(source, attempt_rng)
        result = _attempt(embedder, source, target, att, attempt_rng, order)
        if result is not None:
            return result
    return None


def assemble_quality(source: DTD, target: DTD, att: SimilarityMatrix,
                     seed: int = 0, restarts: int = 5,
                     config: Optional[LocalSearchConfig] = None,
                     target_index=None) -> Optional[SchemaEmbedding]:
    """The Quality-Ordered strategy: greedy by att, few restarts, then
    random fallback attempts (mirroring the paper's combination).

    The quality order depends only on (S1, S2, att); it is computed
    once here — not per restart — and shared by every attempt.
    """
    embedder = LocalEmbedder(source, target, att, config,
                             target_index=target_index)
    order = _quality_order(source, target, att)
    result = _attempt(embedder, source, target, att, None, order)
    if result is not None:
        return result
    rng = random.Random(seed)
    for _attempt_index in range(max(0, restarts - 1)):
        result = _attempt(embedder, source, target, att,
                          random.Random(rng.random()), order)
        if result is not None:
            return result
    return None
