"""The packed artifact store — one mmap'd binary file, many readers.

:class:`~repro.engine.store.ArtifactStore` keeps artifacts as one JSON
file each; every process that warm-starts from it pays a full
``json.loads`` per artifact.  A *pack* collapses the whole store into a
single read-only binary file::

    <store>/pack/pack-00000001.bin      the artifacts, one pack per
                                        generation
    <store>/pack/CURRENT                the active pack's file name
                                        (atomically replaced on reload)

Layout of a pack file::

    MAGIC (12 bytes) | generation:u64 | index_len:u64 | index | blobs

The index is one pickled dict mapping fingerprints to ``(offset,
length)`` blob spans; blobs are pickled artifact payloads (the same
structural dicts the JSON store writes, minus the JSON).  A
:class:`StoreView` mmaps the file and parses *only* the index at open —
O(index), not O(artifacts) — then materialises artifacts lazily from
the mapped pages.  The kernel shares those pages across every process
viewing the same pack, so a pre-fork worker fleet costs one copy of the
artifact bytes no matter how many workers serve them, and a worker
warm-start performs **zero** JSON parses (``StoreView.json_parses``
stays 0 by construction; :class:`ArtifactStore` counts its own parses
in ``.parses`` so the two paths are comparable).

Hot reload: :func:`pack_store` writes a new pack file under the next
generation number and atomically repoints ``CURRENT``.  Readers poll
:func:`current_generation` (one tiny file read) and reopen the view on
a bump; views already open stay valid — an mmap outlives the directory
entry — so in-flight requests finish on the old generation while new
ones see the new artifacts.

A :class:`StoreView` is duck-compatible with the read surface of
:class:`ArtifactStore` (``schema_fingerprints``/``get_schema``/
``embedding_fingerprints``/``get_embedding``/``embedding_validated``/
``iter_searches``/``manifest``), so ``Engine.warm_start(view)`` works
unchanged.
"""

from __future__ import annotations

import io
import mmap
import os
import pickle
import struct
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.core.embedding import SchemaEmbedding
from repro.dtd.model import DTD
from repro.engine.store import (
    ArtifactStore,
    StoreError,
    dtd_from_payload,
    dtd_to_payload,
    embedding_from_payload,
    embedding_to_payload,
    search_key_digest,
)
from repro.matching.search import SearchResult

MAGIC = b"REPROPACK\x01\r\n"
_HEADER = struct.Struct(">QQ")  # generation, index length

PACK_DIR = "pack"
CURRENT = "CURRENT"

#: Pickle protocol 4 is supported by every Python this repo targets and
#: keeps packs readable across minor-version upgrades of the fleet.
_PICKLE_PROTOCOL = 4


class PackError(StoreError):
    """Raised on missing, corrupt or version-incompatible packs."""


def _pack_dir(store_root: Union[str, Path]) -> Path:
    return Path(store_root) / PACK_DIR


def _generation_of(pack_name: str) -> int:
    stem = Path(pack_name).stem  # pack-00000007
    try:
        return int(stem.split("-", 1)[1])
    except (IndexError, ValueError):
        raise PackError(f"unparseable pack file name {pack_name!r}") \
            from None


def current_pack_path(store_root: Union[str, Path]) -> Optional[Path]:
    """The active pack file named by ``CURRENT``, or ``None`` when the
    store has never been packed."""
    current = _pack_dir(store_root) / CURRENT
    try:
        name = current.read_text().strip()
    except OSError:
        return None
    if not name:
        return None
    return current.parent / name


def current_generation(store_root: Union[str, Path]) -> Optional[int]:
    """The active pack generation — one tiny file read, cheap enough to
    poll between requests.  ``None`` when the store is unpacked."""
    path = current_pack_path(store_root)
    if path is None:
        return None
    return _generation_of(path.name)


def pack_store(store: Union[str, Path, ArtifactStore],
               generation: Optional[int] = None,
               compact: bool = False) -> Path:
    """Pack every artifact of ``store`` into a new pack file and
    atomically repoint ``CURRENT`` at it.

    The new pack's generation is the current one + 1 (1 for a
    never-packed store) unless given explicitly.  Readers holding the
    old pack keep a valid mmap; new :class:`StoreView` opens see the
    new generation — this is the hot-reload publish step.

    By default the new generation **carries forward** artifacts that
    the previous generation served but the JSON store no longer holds
    (raw blob bytes are copied, marked ``carried`` in the index), so a
    hot-reloading fleet never loses an artifact a client may still
    name — :class:`StoreView` counts serves of carried artifacts so
    ``/metrics`` can surface the debt.  ``compact=True`` packs only the
    store's live artifacts, dropping every carried blob.
    """
    store = (store if isinstance(store, ArtifactStore)
             else ArtifactStore(store, create=False))
    root = store.root
    previous_path = current_pack_path(root)
    if generation is None:
        active = (None if previous_path is None
                  else _generation_of(previous_path.name))
        generation = 1 if active is None else active + 1

    index: dict = {"generation": generation,
                   "schemas": {}, "embeddings": {}, "searches": {},
                   "codecs": {}}
    blobs = io.BytesIO()

    def add(payload) -> tuple[int, int]:
        raw = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
        offset = blobs.tell()
        blobs.write(raw)
        return offset, len(raw)

    for fingerprint in store.schema_fingerprints():
        offset, length = add(dtd_to_payload(store.get_schema(fingerprint)))
        index["schemas"][fingerprint] = {
            "offset": offset, "length": length,
            "format": store.schema_format(fingerprint)}
    for fingerprint in store.embedding_fingerprints():
        embedding = store.get_embedding(fingerprint)
        offset, length = add(embedding_to_payload(embedding))
        index["embeddings"][fingerprint] = {
            "offset": offset, "length": length,
            "source": embedding.source.fingerprint(),
            "target": embedding.target.fingerprint(),
            "validated": store.embedding_validated(fingerprint)}
    for fingerprint in store.codec_fingerprints():
        offset, length = add(store.get_codec_source(fingerprint))
        meta = store.manifest.get("codecs", {}).get(fingerprint, {})
        index["codecs"][fingerprint] = {
            "offset": offset, "length": length,
            "source": meta.get("source", ""),
            "target": meta.get("target", ""),
            "provenance": meta.get("provenance", "generated")}
    for key, result in store.iter_searches():
        offset, length = add({
            "key": key,
            "embedding": (result.embedding.fingerprint()
                          if result.embedding is not None else None),
            "method": result.method,
            "seconds": result.seconds,
            "quality": result.quality})
        index["searches"][search_key_digest(key)] = {
            "offset": offset, "length": length}

    if not compact and previous_path is not None:
        _carry_forward(index, blobs, previous_path)

    index_raw = pickle.dumps(index, protocol=_PICKLE_PROTOCOL)
    pack_dir = _pack_dir(root)
    pack_dir.mkdir(parents=True, exist_ok=True)
    pack_path = pack_dir / f"pack-{generation:08d}.bin"
    tmp = pack_path.with_suffix(".tmp")
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(_HEADER.pack(generation, len(index_raw)))
        handle.write(index_raw)
        handle.write(blobs.getvalue())
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, pack_path)
    # Publish: CURRENT flips only after the pack is durably on disk.
    tmp_current = pack_dir / (CURRENT + ".tmp")
    tmp_current.write_text(pack_path.name + "\n")
    os.replace(tmp_current, pack_dir / CURRENT)
    return pack_path


def _carry_forward(index: dict, blobs: io.BytesIO,
                   previous_path: Path) -> None:
    """Copy every previous-generation artifact the new index lacks into
    ``blobs``, marked ``carried``.  Raw blob bytes are copied verbatim
    (no unpickle/repickle), and *every* section is carried, so a
    carried embedding's source/target schemas — themselves absent from
    the store — resolve within the new pack.  Entries already carried
    keep their flag: the debt persists across generations until a
    ``compact`` pack drops it."""
    with StoreView(previous_path) as previous:
        for section in ("schemas", "embeddings", "codecs", "searches"):
            live = index[section]
            for key, entry in previous._index.get(section, {}).items():
                if key in live:
                    continue
                raw = previous._raw(entry)
                offset = blobs.tell()
                blobs.write(raw)
                carried = dict(entry)
                carried.update(offset=offset, length=len(raw),
                               carried=True)
                live[key] = carried


class StoreView:
    """A read-only, zero-copy view of one pack generation.

    Opening costs one mmap plus the pickled index — O(index) whatever
    the artifact bodies weigh.  Artifacts materialise lazily from the
    mapped pages (and are memoised), so a worker that serves two
    embeddings touches two blobs, not the whole store.  The view never
    parses JSON; ``json_parses`` exists purely as the assertable
    counter mirroring :attr:`ArtifactStore.parses`.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.json_parses = 0   # by construction; the assertable counter
        self.unpickles = 0
        self._schemas: dict[str, DTD] = {}
        self._embeddings: dict[str, SchemaEmbedding] = {}
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise PackError(f"no pack file at {self.path}: {exc}") from None
        try:
            self._map = mmap.mmap(self._file.fileno(), 0,
                                  access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            self._file.close()
            raise PackError(f"cannot map {self.path}: {exc}") from None
        # Header and index are read as byte *copies* (both are small);
        # only blob reads borrow the mapped pages.  A lingering
        # memoryview export would make mmap.close() raise BufferError.
        header_end = len(MAGIC) + _HEADER.size
        header = bytes(self._map[:header_end])
        if header[:len(MAGIC)] != MAGIC:
            self.close()
            raise PackError(f"{self.path} is not a repro pack")
        self.generation, index_len = _HEADER.unpack(header[len(MAGIC):])
        try:
            self._index = pickle.loads(
                self._map[header_end:header_end + index_len])
        except Exception as exc:
            self.close()
            raise PackError(f"pack index of {self.path} is corrupt: "
                            f"{exc}") from None
        self._blob_base = header_end + index_len
        #: Artifacts carried forward from older generations (absent
        #: from the source store at pack time) and how often this view
        #: served one — the hot-reload debt surfaced via ``/metrics``.
        self._stale = frozenset(
            key
            for section in ("schemas", "embeddings", "codecs")
            for key, entry in self._index.get(section, {}).items()
            if entry.get("carried"))
        self.stale_serves = 0

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        try:
            self._map.close()
        except AttributeError:
            pass
        self._file.close()

    def __enter__(self) -> "StoreView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw access ----------------------------------------------------------
    def _raw(self, entry: dict) -> bytes:
        """One blob's raw pickled bytes (generation carry-forward)."""
        start = self._blob_base + entry["offset"]
        return bytes(self._map[start:start + entry["length"]])

    def _blob(self, entry: dict):
        start = self._blob_base + entry["offset"]
        whole = memoryview(self._map)
        raw = whole[start:start + entry["length"]]
        self.unpickles += 1
        try:
            return pickle.loads(raw)  # zero-copy: unpickles the pages
        except Exception as exc:
            raise PackError(f"pack blob of {self.path} is corrupt: "
                            f"{exc}") from None
        finally:
            # Release the exports even when unpickling raises (a held
            # traceback must not pin the mmap open past close()).
            raw.release()
            whole.release()

    # -- ArtifactStore read surface -----------------------------------------
    @property
    def manifest(self) -> dict:
        """An ArtifactStore-shaped manifest (metadata only), so code
        written against the JSON store's manifest keeps working."""
        return {"schemas": self._index["schemas"],
                "embeddings": self._index["embeddings"],
                "searches": self._index["searches"],
                # Packs written before the codec plane carry no
                # "codecs" index key; they read back as empty.
                "codecs": self._index.get("codecs", {})}

    def schema_fingerprints(self) -> list[str]:
        return sorted(self._index["schemas"])

    def stale_fingerprints(self) -> frozenset:
        """Fingerprints served from carry-forward blobs: the latest
        source store no longer holds them."""
        return self._stale

    def get_schema(self, fingerprint: str) -> DTD:
        if fingerprint in self._stale:
            self.stale_serves += 1
        cached = self._schemas.get(fingerprint)
        if cached is not None:
            return cached
        entry = self._index["schemas"].get(fingerprint)
        if entry is None:
            raise PackError(f"no schema {fingerprint[:12]}… in {self.path}")
        dtd = dtd_from_payload(self._blob(entry))
        self._schemas[fingerprint] = dtd
        return dtd

    def schema_format(self, fingerprint: str) -> str:
        entry = self._index["schemas"].get(fingerprint)
        if entry is None:
            raise PackError(f"no schema {fingerprint[:12]}… in {self.path}")
        return entry.get("format", "dtd")

    def embedding_fingerprints(self) -> list[str]:
        return sorted(self._index["embeddings"])

    def get_embedding(self, fingerprint: str) -> SchemaEmbedding:
        if fingerprint in self._stale:
            self.stale_serves += 1
        cached = self._embeddings.get(fingerprint)
        if cached is not None:
            return cached
        entry = self._index["embeddings"].get(fingerprint)
        if entry is None:
            raise PackError(
                f"no embedding {fingerprint[:12]}… in {self.path}")
        embedding = embedding_from_payload(
            self._blob(entry), self.get_schema(entry["source"]),
            self.get_schema(entry["target"]))
        self._embeddings[fingerprint] = embedding
        return embedding

    def embedding_validated(self, fingerprint: str) -> bool:
        entry = self._index["embeddings"].get(fingerprint)
        return bool(entry and entry.get("validated"))

    def codec_fingerprints(self) -> list[str]:
        return sorted(self._index.get("codecs", {}))

    def get_codec_source(self, fingerprint: str) -> str:
        if fingerprint in self._stale:
            self.stale_serves += 1
        entry = self._index.get("codecs", {}).get(fingerprint)
        if entry is None:
            raise PackError(
                f"no codec for embedding {fingerprint[:12]}… in "
                f"{self.path}")
        return self._blob(entry)

    def iter_searches(self) -> Iterator[tuple[tuple, SearchResult]]:
        for digest in sorted(self._index["searches"]):
            payload = self._blob(self._index["searches"][digest])
            embedding = (self.get_embedding(payload["embedding"])
                         if payload["embedding"] else None)
            yield (payload["key"],
                   SearchResult(embedding, payload["method"],
                                payload["seconds"], payload["quality"]))

    # -- inspection ----------------------------------------------------------
    def stats(self) -> dict:
        return {
            "generation": self.generation,
            "bytes": len(self._map),
            "schemas": len(self._index["schemas"]),
            "embeddings": len(self._index["embeddings"]),
            "searches": len(self._index["searches"]),
            "codecs": len(self._index.get("codecs", {})),
            "json_parses": self.json_parses,
            "unpickles": self.unpickles,
            "stale": len(self._stale),
            "stale_serves": self.stale_serves,
        }

    def __repr__(self) -> str:
        return (f"StoreView({str(self.path)!r}, gen={self.generation}, "
                f"schemas={len(self._index['schemas'])}, "
                f"embeddings={len(self._index['embeddings'])})")


def open_view(store_root: Union[str, Path]) -> StoreView:
    """The :class:`StoreView` of the store's current pack generation."""
    path = current_pack_path(store_root)
    if path is None:
        raise PackError(f"store at {store_root} has no pack — run "
                        "`repro store pack` (or pack_store()) first")
    return StoreView(path)
