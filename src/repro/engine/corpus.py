"""Streaming corpus I/O — feed document corpora without materialising them.

A *corpus* is an ordered stream of named XML documents.  Three on-disk
shapes are recognised, all streamed lazily so million-document corpora
never sit in memory at once:

* a **directory** — every ``*.xml`` file, in sorted name order;
* an **NDJSON file** (``.ndjson`` / ``.jsonl``) — one JSON object per
  line, ``{"name": …, "xml": …}`` (a bare JSON string is also accepted
  and named by line number);
* a **single XML file** — a one-document corpus.

Documents are yielded as :class:`CorpusDocument` (name + raw text);
parsing stays with the consumer so a parallel runner can fan the parse
cost out to its workers too.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Union


class CorpusError(ValueError):
    """Raised for unreadable corpus paths or malformed NDJSON rows."""


@dataclass(frozen=True)
class CorpusDocument:
    """One named document: raw XML text, not yet parsed."""

    name: str
    text: str


def _iter_directory(path: Path) -> Iterator[CorpusDocument]:
    # One scandir pass keeps only the matching *names* (the dirent type
    # check costs no extra stat); each document body is read lazily at
    # yield time, so a million-document corpus holds one document in
    # memory at a time — never Path objects or file contents for all.
    with os.scandir(path) as entries:
        names = sorted(entry.name for entry in entries
                       if entry.is_file() and Path(entry.name).suffix == ".xml")
    if not names:
        raise CorpusError(f"no *.xml documents in directory {path}")
    for name in names:
        yield CorpusDocument(name, (path / name).read_text())


def _iter_ndjson(path: Path) -> Iterator[CorpusDocument]:
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorpusError(
                    f"{path}:{line_no}: not valid JSON: {exc}") from None
            if isinstance(row, str):
                yield CorpusDocument(f"{path.stem}-{line_no}", row)
            elif isinstance(row, dict) and "xml" in row:
                yield CorpusDocument(
                    str(row.get("name", f"{path.stem}-{line_no}")),
                    row["xml"])
            else:
                raise CorpusError(
                    f"{path}:{line_no}: expected an object with an 'xml' "
                    "field or a bare XML string")


def iter_corpus(path: Union[str, Path]) -> Iterator[CorpusDocument]:
    """Stream the corpus at ``path`` (directory, NDJSON, or XML file)."""
    path = Path(path)
    if path.is_dir():
        return _iter_directory(path)
    if not path.is_file():
        raise CorpusError(f"no corpus at {path}")
    if path.suffix in (".ndjson", ".jsonl"):
        return _iter_ndjson(path)
    return iter([CorpusDocument(path.name, path.read_text())])


def iter_corpora(paths: Iterable[Union[str, Path]],
                 ) -> Iterator[CorpusDocument]:
    """Chain several corpus paths into one ordered stream."""
    for path in paths:
        yield from iter_corpus(path)


def write_ndjson(documents: Iterable[CorpusDocument],
                 path: Union[str, Path]) -> int:
    """Write a corpus as NDJSON; returns the number of rows written."""
    count = 0
    with Path(path).open("w") as handle:
        for document in documents:
            handle.write(json.dumps({"name": document.name,
                                     "xml": document.text}) + "\n")
            count += 1
    return count
