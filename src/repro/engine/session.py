"""The :class:`Engine` session — fingerprint-keyed LRU caches over the
compiled artifacts of :mod:`repro.engine.compiled`.

An Engine turns the pipeline into "compile once, serve many": schemas
and embeddings are compiled on first use and reused by content
fingerprint; whole query translations and embedding-search results are
LRU-cached on top.  The module-level :func:`default_engine` backs the
classic one-shot API (``apply_embedding``, ``translate_query``,
``invert``, ``find_embedding``), which keeps its signatures and simply
delegates here.

Cache-correctness contract:

* keys are *content* fingerprints — re-parsing the same DTD text or
  re-building an equal embedding hits; a changed schema or embedding
  (built through the functional update paths: ``with_production``,
  ``renamed``, ``build_embedding``) has a new fingerprint and misses.
  Schemas and embeddings are immutable by contract after construction
  (their own classification/edge memos already rely on this); mutating
  one in place is unsupported and would serve stale artifacts;
* per-cache hit/miss/eviction counters (:class:`CacheStats`) make the
  contract testable;
* all caches are bounded (LRUs here, a flush-on-full memo inside each
  compiled translator), safe for long-running servers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import astuple, dataclass
from typing import (
    TYPE_CHECKING,
    Hashable,
    Iterable,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:  # runtime import stays inside the methods below
    from repro.engine.store import ArtifactStore

from repro.anfa.model import ANFA
from repro.core.embedding import SchemaEmbedding
from repro.core.instmap import MappingResult
from repro.core.similarity import SimilarityMatrix
from repro.dtd.model import DTD
from repro.engine.compiled import CompiledEmbedding, CompiledSchema
from repro.schema import AUTO, detect_format
from repro.schema import load_schema as _load_schema_text
from repro.matching.local import LocalSearchConfig
from repro.matching.search import SearchResult, search_embedding
from repro.xpath.ast import PathExpr
from repro.xpath.parser import parse_xr
from repro.xtree.nodes import ElementNode


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


class _LRUCache:
    """A small LRU: OrderedDict recency + shared stats counters."""

    def __init__(self, maxsize: int, stats: CacheStats) -> None:
        if maxsize < 1:
            raise ValueError("cache size must be >= 1")
        self.maxsize = maxsize
        self.stats = stats
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()

    def get(self, key: Hashable):
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> list[tuple[Hashable, object]]:
        """A snapshot of (key, value) pairs, oldest first — does not
        touch recency or the stats counters (used by store export)."""
        return list(self._data.items())

    def clear(self) -> None:
        self._data.clear()


@dataclass
class EngineConfig:
    """Cache bounds for one Engine session."""

    schema_cache: int = 64
    embedding_cache: int = 32
    translation_cache: int = 1024
    search_cache: int = 128


QueryLike = Union[str, PathExpr]


class Engine:
    """A compile-once/serve-many session over the whole pipeline.

    Typical server usage::

        engine = Engine()
        compiled = engine.compile_embedding(sigma)      # pay once
        for doc in documents:
            engine.apply_embedding(sigma, doc)          # cache hits
        for query in queries:
            engine.translate_query(sigma, query)        # LRU'd ANFAs

    All entry points also accept the raw model objects used by the
    classic API; compilation happens transparently behind the
    fingerprint caches.  Thread-safe: cache bookkeeping is guarded by a
    reentrant lock (compiles may run redundantly under contention, but
    results are consistent).
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self._lock = threading.RLock()
        self.schema_stats = CacheStats()
        self.embedding_stats = CacheStats()
        self.translation_stats = CacheStats()
        self.search_stats = CacheStats()
        self._schemas = _LRUCache(self.config.schema_cache,
                                  self.schema_stats)
        self._embeddings = _LRUCache(self.config.embedding_cache,
                                     self.embedding_stats)
        self._translations = _LRUCache(self.config.translation_cache,
                                       self.translation_stats)
        self._searches = _LRUCache(self.config.search_cache,
                                   self.search_stats)
        # (format, source text) provenance per schema fingerprint, kept
        # for save_store; bounded like the caches it shadows.
        self._sources: "OrderedDict[str, tuple[str, str]]" = OrderedDict()
        self._sources_bound = 4 * self.config.schema_cache

    # -- schema loading ----------------------------------------------------
    def load_schema(self, text: str, format: str = AUTO,
                    root: Optional[str] = None, name: str = "dtd") -> DTD:
        """Lower schema text through the frontend registry.

        The resolved format and source text are remembered per
        fingerprint, so :meth:`save_store` can persist provenance
        alongside the schema artifact.
        """
        resolved = detect_format(text) if format == AUTO else format
        dtd = _load_schema_text(text, format=resolved, root=root, name=name)
        with self._lock:
            self._sources[dtd.fingerprint()] = (resolved, text)
            self._sources.move_to_end(dtd.fingerprint())
            while len(self._sources) > self._sources_bound:
                self._sources.popitem(last=False)
        return dtd

    # -- compilation -------------------------------------------------------
    def compile_schema(self, dtd: Union[DTD, str],
                       format: str = AUTO, name: str = "dtd",
                       ) -> CompiledSchema:
        """The compiled artifact for ``dtd``, cached by fingerprint.

        ``dtd`` may be an already-lowered :class:`DTD` or raw schema
        text in any registered frontend format — ``format`` selects the
        frontend (default: auto-detect), exactly like the CLI's
        ``--format``.
        """
        if isinstance(dtd, str):
            dtd = self.load_schema(dtd, format=format, name=name)
        fingerprint = dtd.fingerprint()
        with self._lock:
            cached = self._schemas.get(fingerprint)
        if cached is not None:
            return cached  # type: ignore[return-value]
        compiled = CompiledSchema(dtd)
        with self._lock:
            self._schemas.put(fingerprint, compiled)
        return compiled

    def compile_embedding(self, embedding: SchemaEmbedding,
                          ensure_valid: bool = False) -> CompiledEmbedding:
        """The compiled artifact for ``embedding``, cached by fingerprint.

        Rebuilding an equal embedding (e.g. re-loading its JSON) hits;
        any content change produces a new fingerprint and a fresh
        compile.  With ``ensure_valid`` the Section 4.1 check runs (at
        most once per artifact) *before* compilation, so an invalid
        embedding raises the aggregated ``EmbeddingError`` exactly as
        the uncompiled path always did — never a low-level
        classification error from artifact construction.  Without it,
        no validation happens (see the ``validate`` flags on the
        serving methods).
        """
        fingerprint = embedding.fingerprint()
        with self._lock:
            cached = self._embeddings.get(fingerprint)
        if cached is not None:
            if ensure_valid:
                cached.ensure_valid()  # type: ignore[union-attr]
            return cached  # type: ignore[return-value]
        if ensure_valid:
            embedding.check()
        compiled = CompiledEmbedding(
            embedding,
            source_schema=self.compile_schema(embedding.source),
            target_schema=self.compile_schema(embedding.target))
        if ensure_valid:
            compiled.mark_validated()
        with self._lock:
            self._embeddings.put(fingerprint, compiled)
        return compiled

    # -- serving: mapping --------------------------------------------------
    def apply_embedding(self, embedding: SchemaEmbedding,
                        source_root: ElementNode,
                        validate: bool = True) -> MappingResult:
        """``σd(T1)`` through the compiled-embedding cache."""
        compiled = self.compile_embedding(embedding, ensure_valid=validate)
        return compiled.apply(source_root)

    def map_text(self, embedding: SchemaEmbedding, text: str,
                 validate: bool = True) -> str:
        """Serialized ``σd`` of an XML text through the generated codec
        (parse→map→serialize fused; byte-identical to serializing
        :meth:`apply_embedding` on the parsed document).  Embeddings
        whose shape has no codec take the interpreted path inside
        :meth:`CompiledEmbedding.map_text`."""
        compiled = self.compile_embedding(embedding, ensure_valid=validate)
        return compiled.map_text(text)

    def map_documents(self, embedding: SchemaEmbedding,
                      documents: Iterable[ElementNode],
                      validate: bool = True) -> list[MappingResult]:
        """Batch ``σd`` over many documents with one compile."""
        compiled = self.compile_embedding(embedding, ensure_valid=validate)
        return [compiled.apply(document) for document in documents]

    # -- serving: translation ----------------------------------------------
    def translate_query(self, embedding: SchemaEmbedding, query: QueryLike,
                        context_type: Optional[str] = None) -> ANFA:
        """``Tr(Q)`` with an LRU over whole-query results.

        ``query`` may be an XR string or an AST.  Strings are keyed on
        their raw text, so a repeated query is served without parsing
        or even touching the compiled embedding; ASTs key structurally.
        The returned ANFA is shared — treat it as immutable (evaluation
        never mutates; use ``ANFA.copy()`` for a private mutable copy).
        """
        fingerprint = embedding.fingerprint()
        if isinstance(query, str):
            key = (fingerprint, "text", query, context_type)
        else:
            key = (fingerprint, "ast", query, context_type)
        with self._lock:
            cached = self._translations.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        parsed = parse_xr(query) if isinstance(query, str) else query
        anfa = self.compile_embedding(embedding).translate(parsed,
                                                           context_type)
        with self._lock:
            self._translations.put(key, anfa)
        return anfa

    def translate_queries(self, embedding: SchemaEmbedding,
                          queries: Sequence[QueryLike],
                          context_type: Optional[str] = None) -> list[ANFA]:
        """Batch ``Tr`` over many queries with one compile."""
        return [self.translate_query(embedding, query, context_type)
                for query in queries]

    # -- serving: inversion ------------------------------------------------
    def invert(self, embedding: SchemaEmbedding, target_root: ElementNode,
               strict: bool = True) -> ElementNode:
        """``σd⁻¹`` through the compiled-embedding cache (no validation,
        matching the classic ``invert`` contract)."""
        compiled = self.compile_embedding(embedding)
        return compiled.invert(target_root, strict=strict)

    # -- serving: embedding search -------------------------------------------
    def find_embedding(self, source: DTD, target: DTD,
                       att: Optional[SimilarityMatrix] = None,
                       method: str = "auto", seed: int = 0,
                       restarts: int = 20,
                       config: Optional[LocalSearchConfig] = None,
                       use_cache: bool = True) -> SearchResult:
        """Schema-Embedding search with whole-result caching.

        The search is deterministic in its arguments, so results are
        cached on (S1, S2, att, parameters) fingerprints; the target's
        compiled path index is shared across strategies and searches
        either way.  ``use_cache=False`` forces a fresh search — the
        classic ``find_embedding`` wrapper uses it so repeated calls
        keep their per-call semantics (freshly measured ``seconds``, a
        fresh embedding object), which benchmarks rely on.
        """
        att = att or SimilarityMatrix.permissive()
        if use_cache:
            key = (source.fingerprint(), target.fingerprint(),
                   att.fingerprint(), method, seed, restarts,
                   astuple(config) if config is not None else None)
            with self._lock:
                cached = self._searches.get(key)
            if cached is not None:
                return cached  # type: ignore[return-value]
        target_index = self.compile_schema(target)
        result = search_embedding(source, target, att, method=method,
                                  seed=seed, restarts=restarts,
                                  config=config, target_index=target_index)
        if use_cache:
            with self._lock:
                self._searches.put(key, result)
        return result

    # -- serving: schema evolution -------------------------------------------
    def evolve(self, old_schema: DTD, new_schema: DTD,
               queries: Sequence[str],
               embedding: Optional[SchemaEmbedding] = None,
               validate: bool = True, method: str = "auto",
               seed: int = 0, restarts: int = 20,
               samples: Optional[int] = None):
        """Per-query compatibility verdicts across a version bump.

        Finds (or accepts) an embedding ``old_schema → new_schema`` and
        classifies every query as ``still-valid``, ``translatable``
        (re-translated query attached) or ``broken`` (structured
        reason), with per-query failure isolation.  Returns an
        :class:`~repro.evolution.engine.EvolutionReport`; the serve
        layer returns its payload verbatim, so daemon and fleet
        responses are byte-identical to this call.
        """
        # The evolution layer sits above the engine; importing it here
        # (not at module top) keeps the layering acyclic.
        from repro.evolution.engine import evolve
        return evolve(old_schema, new_schema, queries, engine=self,
                      embedding=embedding, validate=validate,
                      method=method, seed=seed, restarts=restarts,
                      samples=samples)

    # -- persistence ---------------------------------------------------------
    def save_store(self, path) -> "ArtifactStore":
        """Persist every cached schema, embedding and search result to
        an artifact store at ``path`` (created if absent).

        The store holds the *declarative* artifacts (the Section 4.5
        transformation-language form), not the compiled objects:
        :meth:`warm_start` recompiles them once at load, after which a
        new process serves with zero compile misses.
        """
        from repro.engine.store import ArtifactStore

        store = ArtifactStore(path)
        with self._lock:
            schemas = self._schemas.items()
            embeddings = self._embeddings.items()
            searches = self._searches.items()
            sources = dict(self._sources)
        for fp, compiled in schemas:
            source_format, source_text = sources.get(fp, (None, None))
            store.put_schema(compiled.dtd,  # type: ignore[union-attr]
                             format=source_format, source_text=source_text)
        for fp, compiled in embeddings:
            store.put_embedding(
                compiled.embedding,  # type: ignore[union-attr]
                validated=compiled.validated)  # type: ignore[union-attr]
            # Persist the generated codec so warm starts (daemon,
            # pre-fork fleet) attach it with zero regeneration; shapes
            # the generator refuses simply store no codec.
            codec = compiled.codec  # type: ignore[union-attr]
            if codec is not None:
                store.put_codec(
                    fp, codec.source,  # type: ignore[arg-type]
                    source_schema=codec.source_fingerprint,
                    target_schema=codec.target_fingerprint,
                    provenance="engine-save")
        for key, result in searches:
            store.put_search(key, result)  # type: ignore[arg-type]
        return store

    @classmethod
    def warm_start(cls, path, config: Optional[EngineConfig] = None,
                   ) -> "Engine":
        """A new Engine preloaded from the artifact store at ``path``
        (an already-open :class:`ArtifactStore` — or any object with
        its read surface, e.g. a packed
        :class:`~repro.engine.storepack.StoreView` — is also accepted;
        its memoised artifacts are reused instead of re-reading the
        disk).

        Every stored schema and embedding is compiled up front (paying
        each compile exactly once, at load time rather than on the
        first request) and stored search results are re-inserted into
        the search cache.  Stats are reset after loading, so a
        warm-started engine that only sees known artifacts reports
        **zero** compile misses while serving.

        With no explicit ``config`` the cache bounds are grown to fit
        the store: an LRU smaller than the artifact set would evict
        during this very load and silently void the zero-miss
        guarantee.  An explicit ``config`` is respected as given.
        """
        from repro.engine.store import ArtifactStore

        # Duck-typed: ArtifactStore and StoreView share the read
        # surface (fingerprint lists, get_*, iter_searches, manifest).
        store = (path if hasattr(path, "embedding_fingerprints")
                 else ArtifactStore(path, create=False))
        if config is None:
            defaults = EngineConfig()
            config = EngineConfig(
                schema_cache=max(defaults.schema_cache,
                                 len(store.schema_fingerprints())),
                embedding_cache=max(defaults.embedding_cache,
                                    len(store.embedding_fingerprints())),
                translation_cache=defaults.translation_cache,
                search_cache=max(defaults.search_cache,
                                 len(store.manifest["searches"])))
        engine = cls(config)
        codec_fps = (frozenset(store.codec_fingerprints())
                     if hasattr(store, "codec_fingerprints")
                     else frozenset())
        for fingerprint in store.schema_fingerprints():
            engine.compile_schema(store.get_schema(fingerprint))
        for fingerprint in store.embedding_fingerprints():
            compiled = engine.compile_embedding(
                store.get_embedding(fingerprint))
            if store.embedding_validated(fingerprint):
                compiled.mark_validated()
                # Prebuild the pfrag templates too: the first mapping
                # request should pay nothing but the walk itself.
                compiled.instmap
            if fingerprint in codec_fps:
                # Cached codec source: compile + bind, zero regeneration.
                compiled.attach_codec(
                    store.get_codec_source(fingerprint))
        for key, result in store.iter_searches():
            with engine._lock:
                engine._searches.put(key, result)
        engine.reset_stats()
        return engine

    def ensure_capacity(self, schemas: Optional[int] = None,
                        embeddings: Optional[int] = None) -> None:
        """Grow (never shrink) the schema/embedding cache bounds.

        Hot reload can add artifacts past the bounds a warm start was
        sized for; growing before compiling keeps the zero-eviction
        (hence zero-recompile) guarantee for store-loaded artifacts.
        """
        with self._lock:
            if schemas is not None:
                self._schemas.maxsize = max(self._schemas.maxsize, schemas)
            if embeddings is not None:
                self._embeddings.maxsize = max(self._embeddings.maxsize,
                                               embeddings)

    # -- bookkeeping ---------------------------------------------------------
    def stats(self) -> dict[str, dict[str, int]]:
        """Per-cache hit/miss/eviction counters."""
        return {
            "schemas": self.schema_stats.as_dict(),
            "embeddings": self.embedding_stats.as_dict(),
            "translations": self.translation_stats.as_dict(),
            "searches": self.search_stats.as_dict(),
        }

    def describe_stats(self) -> str:
        """A one-line-per-cache rendering for CLI/--stats output."""
        rows = []
        for name, counters in self.stats().items():
            rows.append(f"{name}: {counters['hits']} hits, "
                        f"{counters['misses']} misses, "
                        f"{counters['evictions']} evictions")
        return "\n".join(rows)

    def clear(self) -> None:
        """Drop every cached artifact (counters are kept)."""
        with self._lock:
            self._schemas.clear()
            self._embeddings.clear()
            self._translations.clear()
            self._searches.clear()

    def reset_stats(self) -> None:
        with self._lock:
            for stats in (self.schema_stats, self.embedding_stats,
                          self.translation_stats, self.search_stats):
                stats.hits = stats.misses = stats.evictions = 0


# -- the default engine ------------------------------------------------------

_default_engine: Optional[Engine] = None
_default_lock = threading.Lock()


def default_engine() -> Engine:
    """The process-wide Engine backing the classic one-shot API."""
    global _default_engine
    if _default_engine is None:
        with _default_lock:
            if _default_engine is None:
                _default_engine = Engine()
    return _default_engine


def set_default_engine(engine: Optional[Engine]) -> Optional[Engine]:
    """Swap the process-wide Engine (``None`` resets to a fresh one on
    next use); returns the previous engine for restoration."""
    global _default_engine
    with _default_lock:
        previous = _default_engine
        _default_engine = engine
    return previous
