"""The compilation-and-caching layer: compile once, serve many.

* :mod:`repro.engine.compiled` — :class:`CompiledSchema` and
  :class:`CompiledEmbedding`, the immutable per-fingerprint artifacts;
* :mod:`repro.engine.session` — the :class:`Engine` session with LRU
  caches and the process-wide :func:`default_engine` that the classic
  one-shot API delegates to.
"""

from repro.engine.compiled import CompiledEmbedding, CompiledSchema
from repro.engine.session import (
    CacheStats,
    Engine,
    EngineConfig,
    default_engine,
    set_default_engine,
)

__all__ = [
    "CacheStats",
    "CompiledEmbedding",
    "CompiledSchema",
    "Engine",
    "EngineConfig",
    "default_engine",
    "set_default_engine",
]
