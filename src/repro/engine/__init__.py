"""The compilation-and-caching layer: compile once, serve many — and
persist/parallelise the compiled artifacts.

* :mod:`repro.engine.compiled` — :class:`CompiledSchema` and
  :class:`CompiledEmbedding`, the immutable per-fingerprint artifacts;
* :mod:`repro.engine.plan` — the document-plane fast path:
  :class:`MappingProgram` / :class:`InverseProgram`, flat per-type
  instruction sequences interpreted without recursion (byte-identical
  to the reference InstMap / inverse walkers);
* :mod:`repro.engine.session` — the :class:`Engine` session with LRU
  caches, ``save_store``/``warm_start`` persistence, and the
  process-wide :func:`default_engine` that the classic one-shot API
  delegates to;
* :mod:`repro.engine.store` — :class:`ArtifactStore`, the versioned,
  fingerprint-keyed on-disk form of schemas/embeddings/search results;
* :mod:`repro.engine.storepack` — the packed store: one mmap'd binary
  file per generation (:func:`pack_store` / :class:`StoreView`),
  zero-copy across a pre-fork fleet, zero JSON parses at warm start;
* :mod:`repro.engine.parallel` — :class:`ParallelRunner`, chunked
  corpus fan-out across a pool of warm-started worker engines;
* :mod:`repro.engine.corpus` — streaming corpus I/O (directories,
  NDJSON files, single documents);
* :mod:`repro.engine.stream` — the streaming document plane: σd driven
  directly from parser events, emitting serialized output incrementally
  with memory bounded by the largest buffered fragment;
* :mod:`repro.engine.codegen` — generated per-schema codecs: the flat
  mapping program specialised to Python source (parse→map→serialize
  fused), compiled once and cached in the artifact store.
"""

from repro.engine.codegen import (
    CodecError,
    GeneratedCodec,
    compile_codec,
    generate_codec,
    generate_codec_source,
)
from repro.engine.compiled import CompiledEmbedding, CompiledSchema
from repro.engine.plan import InverseProgram, MappingProgram, PlanError
from repro.engine.stream import (
    StreamStats,
    iter_mapped,
    stream_map,
    stream_map_to_path,
)
from repro.engine.corpus import (
    CorpusDocument,
    CorpusError,
    iter_corpora,
    iter_corpus,
    write_ndjson,
)
from repro.engine.parallel import (
    CorpusOutcome,
    ParallelReport,
    ParallelRunner,
    TranslationOutcome,
)
from repro.engine.session import (
    CacheStats,
    Engine,
    EngineConfig,
    default_engine,
    set_default_engine,
)
from repro.engine.store import ArtifactStore, StoreError
from repro.engine.storepack import (
    PackError,
    StoreView,
    current_generation,
    open_view,
    pack_store,
)

__all__ = [
    "ArtifactStore",
    "CacheStats",
    "CodecError",
    "CompiledEmbedding",
    "CompiledSchema",
    "CorpusDocument",
    "CorpusError",
    "CorpusOutcome",
    "Engine",
    "EngineConfig",
    "GeneratedCodec",
    "InverseProgram",
    "MappingProgram",
    "PackError",
    "ParallelReport",
    "PlanError",
    "ParallelRunner",
    "StoreError",
    "StoreView",
    "StreamStats",
    "TranslationOutcome",
    "compile_codec",
    "current_generation",
    "default_engine",
    "generate_codec",
    "generate_codec_source",
    "iter_corpora",
    "iter_corpus",
    "iter_mapped",
    "open_view",
    "pack_store",
    "set_default_engine",
    "stream_map",
    "stream_map_to_path",
    "write_ndjson",
]
