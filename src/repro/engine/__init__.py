"""The compilation-and-caching layer: compile once, serve many — and
persist/parallelise the compiled artifacts.

* :mod:`repro.engine.compiled` — :class:`CompiledSchema` and
  :class:`CompiledEmbedding`, the immutable per-fingerprint artifacts;
* :mod:`repro.engine.plan` — the document-plane fast path:
  :class:`MappingProgram` / :class:`InverseProgram`, flat per-type
  instruction sequences interpreted without recursion (byte-identical
  to the reference InstMap / inverse walkers);
* :mod:`repro.engine.session` — the :class:`Engine` session with LRU
  caches, ``save_store``/``warm_start`` persistence, and the
  process-wide :func:`default_engine` that the classic one-shot API
  delegates to;
* :mod:`repro.engine.store` — :class:`ArtifactStore`, the versioned,
  fingerprint-keyed on-disk form of schemas/embeddings/search results;
* :mod:`repro.engine.storepack` — the packed store: one mmap'd binary
  file per generation (:func:`pack_store` / :class:`StoreView`),
  zero-copy across a pre-fork fleet, zero JSON parses at warm start;
* :mod:`repro.engine.parallel` — :class:`ParallelRunner`, chunked
  corpus fan-out across a pool of warm-started worker engines;
* :mod:`repro.engine.corpus` — streaming corpus I/O (directories,
  NDJSON files, single documents).
"""

from repro.engine.compiled import CompiledEmbedding, CompiledSchema
from repro.engine.plan import InverseProgram, MappingProgram, PlanError
from repro.engine.corpus import (
    CorpusDocument,
    CorpusError,
    iter_corpora,
    iter_corpus,
    write_ndjson,
)
from repro.engine.parallel import (
    CorpusOutcome,
    ParallelReport,
    ParallelRunner,
    TranslationOutcome,
)
from repro.engine.session import (
    CacheStats,
    Engine,
    EngineConfig,
    default_engine,
    set_default_engine,
)
from repro.engine.store import ArtifactStore, StoreError
from repro.engine.storepack import (
    PackError,
    StoreView,
    current_generation,
    open_view,
    pack_store,
)

__all__ = [
    "ArtifactStore",
    "CacheStats",
    "CompiledEmbedding",
    "CompiledSchema",
    "CorpusDocument",
    "CorpusError",
    "CorpusOutcome",
    "Engine",
    "EngineConfig",
    "InverseProgram",
    "MappingProgram",
    "PackError",
    "ParallelReport",
    "PlanError",
    "ParallelRunner",
    "StoreError",
    "StoreView",
    "TranslationOutcome",
    "current_generation",
    "default_engine",
    "iter_corpora",
    "iter_corpus",
    "open_view",
    "pack_store",
    "set_default_engine",
    "write_ndjson",
]
