"""Compiled schema/embedding artifacts — "compile once, serve many".

The paper presents InstMap, ``Tr`` and ``σd⁻¹`` as one-shot algorithms;
a serving system runs them millions of times against a handful of
schemas and embeddings.  Everything that depends only on the schema or
the embedding — never on the document or query — is hoisted here:

* :class:`CompiledSchema` — an immutable, hashable wrapper over a
  :class:`~repro.dtd.model.DTD` precomputing the production graph, the
  reachability closure, the mindef templates, and the per-type target
  path indexes that :mod:`repro.matching.local` enumerates during
  embedding search;
* :class:`CompiledEmbedding` — a validated-at-most-once σ carrying the
  prebuilt pfrag templates (the :class:`~repro.core.instmap.InstMap`),
  the per-edge ANFA translation table of a persistent
  :class:`~repro.core.translate.Translator`, and the inverse walker.

Both are keyed by *content fingerprints* (``DTD.fingerprint()`` /
``SchemaEmbedding.fingerprint()``): rebuilding an equal schema from
text reuses the artifact, mutating one in place misses the cache.

Related systems compile the same way: Genevès et al. (PLDI 2008)
precompile schemas into tree automata reused across query-compatibility
checks, and injective tree-pattern matchers precompute per-edge
automaton tables.  The caching session lives in
:mod:`repro.engine.session`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.embedding import SchemaEmbedding
from repro.core.instmap import InstMap, MappingResult
from repro.core.inverse import run_invert
from repro.core.translate import Translator
from repro.dtd.mindef import MinDef
from repro.dtd.model import DTD, Edge
from repro.matching.prefix_free import PathKind, PathRequest, enumerate_paths
from repro.xpath.ast import PathExpr
from repro.xtree.nodes import ElementNode
from repro.anfa.model import ANFA
from repro.xpath.paths import XRPath


class CompiledSchema:
    """An immutable, hashable compilation of one DTD.

    Construction walks the schema once; afterwards every view that the
    hot paths consult — production-graph edges, reachability, mindef
    padding templates, candidate target paths — is a dictionary lookup.
    Treat instances as frozen: they are shared between every embedding
    and search using the schema.
    """

    __slots__ = ("dtd", "fingerprint", "edges", "_mindef", "_paths",
                 "_reachable")

    def __init__(self, dtd: DTD) -> None:
        self.dtd = dtd
        self.fingerprint = dtd.fingerprint()
        # Production graph, fully materialised (also prewarms the
        # DTD's own lazy edge cache for code holding the raw object).
        self.edges: dict[str, tuple[Edge, ...]] = {
            element_type: dtd.edges_from(element_type)
            for element_type in dtd.types}
        self._mindef: Optional[MinDef] = None
        #: per-type target-path index: (image, kind, end, caps) -> paths
        self._paths: dict[tuple, list[XRPath]] = {}
        self._reachable: Optional[frozenset[str]] = None

    # -- graph views (lazy, computed once per artifact) -------------------
    @property
    def reachable(self) -> frozenset[str]:
        """The reachability closure from the root."""
        if self._reachable is None:
            self._reachable = frozenset(self.dtd.reachable_types())
        return self._reachable

    @property
    def mindef(self) -> MinDef:
        """The shared mindef templates (lazy: only consistent schemas
        have one, and matching-only sources never need it)."""
        if self._mindef is None:
            self._mindef = MinDef(self.dtd)
        return self._mindef

    # -- per-type target-path index ---------------------------------------
    def paths(self, image: str, kind: PathKind, end: Optional[str],
              max_len: int, max_paths: int) -> list[XRPath]:
        """Candidate XR paths of ``kind`` from ``image`` (to ``end``),
        memoised per (type, kind, endpoint, caps).

        This is the enumeration :class:`repro.matching.local.LocalEmbedder`
        performs in its inner backtracking loop; serving it from the
        compiled schema shares the work across embedder instances,
        restarts, and whole searches.  Callers must not mutate the
        returned list.
        """
        key = (image, kind, end, max_len, max_paths)
        cached = self._paths.get(key)
        if cached is None:
            cached = enumerate_paths(self.dtd, image, PathRequest(kind, end),
                                     max_len, max_paths)
            self._paths[key] = cached
        return cached

    # -- identity ---------------------------------------------------------
    def __hash__(self) -> int:
        return int(self.fingerprint[:16], 16)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, CompiledSchema)
                and other.fingerprint == self.fingerprint)

    def __repr__(self) -> str:
        return (f"CompiledSchema({self.dtd.name!r}, "
                f"types={len(self.edges)}, fp={self.fingerprint[:12]})")


class CompiledEmbedding:
    """A fully compiled σ: validate once, then serve documents/queries.

    * mapping  — ``instmap`` holds the pre-classified pfrag templates;
    * querying — ``translator`` holds the per-edge ANFA table (primed at
      compile time) and a structural ``Trl`` memo that persists across
      queries;
    * inversion — path classifications are shared with the above, so
      the inverse walks without re-deriving anything.

    Validation is *separate* from compilation (:meth:`ensure_valid`):
    callers that historically skipped validation (``validate=False``,
    ``invert``) keep their exact behaviour while validating callers pay
    the check at most once per fingerprint.
    """

    __slots__ = ("embedding", "fingerprint", "source_schema",
                 "target_schema", "translator", "edge_table_size",
                 "_instmap", "_inverse", "_codec", "_validated")

    def __init__(self, embedding: SchemaEmbedding,
                 source_schema: Optional[CompiledSchema] = None,
                 target_schema: Optional[CompiledSchema] = None) -> None:
        self.embedding = embedding
        self.fingerprint = embedding.fingerprint()
        self.source_schema = source_schema or CompiledSchema(embedding.source)
        self.target_schema = target_schema or CompiledSchema(embedding.target)
        # per-edge ANFA translation table + persistent Trl memo.
        self.translator = Translator(embedding)
        self.edge_table_size = self.translator.prime_edges()
        # pfrag templates are built on the first mapping (translation /
        # inversion never need them, and the lazy build keeps error
        # behaviour for broken embeddings identical to the seed's
        # lazy classification).
        self._instmap: Optional[InstMap] = None
        self._inverse = None
        self._codec = None
        self._validated = False

    @property
    def instmap(self) -> InstMap:
        """The precompiled InstMap: every edge path classified once,
        the mindef padding shared with the compiled target schema."""
        if self._instmap is None:
            # Share the compiled target mindef with the embedding's
            # own lazy slot (R2 checks) and the InstMap padding.
            if self.embedding._mindef is None:
                self.embedding._mindef = self.target_schema.mindef
            self._instmap = InstMap(self.embedding, validate=False,
                                    mindef=self.target_schema.mindef)
        return self._instmap

    # -- validation --------------------------------------------------------
    def ensure_valid(self) -> "CompiledEmbedding":
        """Run the Section 4.1 validity check at most once."""
        if not self._validated:
            self.embedding.check()
            self._validated = True
        return self

    def mark_validated(self) -> None:
        """Record an external successful check (the engine validates
        *before* compiling so invalid embeddings raise the aggregated
        ``EmbeddingError`` rather than a construction error)."""
        self._validated = True

    @property
    def validated(self) -> bool:
        return self._validated

    # -- serving -----------------------------------------------------------
    def apply(self, source_root: ElementNode) -> MappingResult:
        """``σd(T1)`` via the precompiled InstMap."""
        return self.instmap.apply(source_root)

    def translate(self, query: PathExpr,
                  context_type: Optional[str] = None) -> ANFA:
        """``Tr(Q)`` via the persistent translator."""
        return self.translator.translate(query, context_type)

    def invert(self, target_root: ElementNode,
               strict: bool = True) -> ElementNode:
        """``σd⁻¹`` via the compiled inverse program (per-edge step
        templates with pre-resolved occurrence indexes, iterative walk);
        embeddings the plan compiler rejects use the reference walker
        with its exact lazy error behaviour."""
        if self._inverse is None:
            from repro.engine.plan import InverseProgram, PlanError

            try:
                self._inverse = InverseProgram(self.embedding,
                                               self.instmap._infos)
            except PlanError:
                self._inverse = False  # compile refused: reference path
            except Exception:
                if self._validated:
                    raise  # a validated embedding must compile
                # ``invert`` historically never validates: a broken
                # embedding keeps the reference walker's lazy errors.
                self._inverse = False
        if self._inverse:
            return self._inverse.apply(target_root, strict=strict)
        return run_invert(self.embedding, target_root, strict=strict)

    # -- generated codec ----------------------------------------------------
    @property
    def codec(self):
        """The generated parse→map→serialize codec, or ``None`` when
        the embedding's shape cannot be specialised (the interpreter /
        reference path serves those).  Generated and compiled at most
        once per artifact; warm starts attach cached source instead via
        :meth:`attach_codec`."""
        if self._codec is None:
            from repro.engine.codegen import CodecError, generate_codec

            try:
                self._codec = generate_codec(
                    self.instmap,
                    source_fingerprint=self.source_schema.fingerprint,
                    target_fingerprint=self.target_schema.fingerprint,
                    embedding_fingerprint=self.fingerprint)
            except CodecError:
                self._codec = False  # shape refused: no codec
        return self._codec or None

    def attach_codec(self, source: str) -> None:
        """Compile cached codec source (from the artifact store) and
        bind it to this embedding's InstMap — zero regeneration."""
        from repro.engine.codegen import compile_codec

        self._codec = compile_codec(source, self.instmap)

    def map_text(self, text: str) -> str:
        """Serialized ``σd`` of an XML text, through the codec when one
        exists (byte-identical to ``to_string(self.apply(...).tree)``)."""
        codec = self.codec
        if codec is not None:
            return codec.map_text(text)
        from repro.xtree.parser import parse_xml
        from repro.xtree.serialize import to_string

        return to_string(self.instmap.apply(parse_xml(text)).tree)

    # -- identity -----------------------------------------------------------
    def __hash__(self) -> int:
        return int(self.fingerprint[:16], 16)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, CompiledEmbedding)
                and other.fingerprint == self.fingerprint)

    def __repr__(self) -> str:
        return (f"CompiledEmbedding({self.embedding.source.name!r} -> "
                f"{self.embedding.target.name!r}, "
                f"edges={self.edge_table_size}, fp={self.fingerprint[:12]})")
