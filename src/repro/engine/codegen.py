"""Generated per-schema codecs — map + serialize fused into Python.

The interpreter (:mod:`repro.engine.plan`) runs one generic loop over
flat instructions and then serializes the materialised target tree.
For a fixed compiled embedding none of that genericity is needed: the
per-production dispatch, the static mindef padding, element forms
(``<t/>`` vs inline vs multiline) and the serializer's pad/escape work
are all decidable from the instruction stream at *generation* time.

:func:`generate_codec_source` symbolically executes each type's
``TypeProgram`` ops and emits a specialised Python module: one handler
per source type appending prerendered static text blocks and pushing
work items for hot children onto an explicit stack (no recursion — the
generated module is iterative by construction).  ``map_tree(root)``
returns the serialized target document directly; no target tree is
ever allocated on the fast path.

Byte-identity is inherited, not re-proven: static blocks are rendered
through :func:`repro.xtree.serialize.iter_serialized` over trees built
from the very instruction streams ``MappingProgram._run`` executes,
text escaping *is* ``escape_text``, and every dynamic shape the
interpreter serves through the reference ``_FragmentBuilder``
(concat arity/tag mismatches, zero-instance stars) is routed through
:func:`_codec_fallback`, which builds the same reference fragment and
splices its bytes into the output stream.  Codecs fix ``indent=2``
(the serializer default used across Engine, CLI and serve).

Determinism: generated source is a pure function of the embedding —
handlers are numbered after sorting source type names, dispatch dict
literals are sorted, and nothing else (timestamps, ids, set iteration)
flows in.  Repeated generations are byte-identical, which makes the
source safe to cache in the artifact store keyed by
(schema fingerprint, embedding fingerprint).
"""
# lint: codec-plane

from __future__ import annotations

from typing import Optional

from repro.core.errors import EmbeddingError  # noqa: F401  (codec runtime)
from repro.core.instmap import InstMap
from repro.engine.plan import (
    LOOP_SLOT,
    OP_CLOSE,
    OP_HOT,
    OP_LEAF,
    OP_OPEN,
    OP_TEXT,
    MappingProgram,
    _pause_gc,  # noqa: F401  (codec runtime)
    _resume_gc,  # noqa: F401  (codec runtime)
)
from repro.engine.stream import _sever
from repro.xtree.nodes import ElementNode, TextNode
from repro.xtree.parser import parse_xml  # noqa: F401  (codec runtime)
from repro.xtree.serialize import escape_text as _esc
from repro.xtree.serialize import iter_serialized

__all__ = ["CodecError", "GeneratedCodec", "generate_codec_source",
           "compile_codec", "generate_codec"]


class CodecError(ValueError):
    """The embedding's shape cannot be compiled into a codec (the
    interpreter / reference path serves it instead)."""


# -- runtime support shared by every generated module -------------------------

_PADS: dict[int, str] = {}


def _pad(depth: int) -> str:
    pad = _PADS.get(depth)
    if pad is None:
        pad = "  " * depth
        _PADS[depth] = pad
    return pad


def _blk(cache: dict, lines: tuple, depth: int) -> str:
    """One static block (lines pre-padded *relative* to the fragment),
    re-padded to an absolute depth and cached per depth."""
    block = cache.get(depth)
    if block is None:
        pad = _pad(depth)
        block = "\n".join(pad + line for line in lines)
        cache[depth] = block
    return block


def _codec_fallback(instmap: InstMap, out: list, stack: list,
                    node: ElementNode, depth: int, image_tag: str) -> None:
    """Serve one fragment off the codec's static path and splice its
    serialized lines (plus dispatch items for its hot endpoints) into
    the codec's output stream — the codec twin of
    ``MappingProgram._serve_sparse``: sparse-concat shapes run through
    the compiled plane, only non-static shapes hit the reference
    builder."""
    image = ElementNode(image_tag)
    pairs = instmap.fragment_pairs(image, node, {})
    hot = {leaf.node_id: source for leaf, source in pairs}
    items: list = []
    walk: list = [(image, depth)]
    while walk:
        current, level = walk.pop()
        if level is None:
            items.append((1, current, 0, ""))  # prebuilt close line
            continue
        if isinstance(current, TextNode):
            items.append((1, _pad(level) + _esc(current.value), 0, ""))
            continue
        source = hot.get(current.node_id)
        if source is not None:
            items.append((0, source, level, current.tag))
            continue
        children = current.children
        if not children:
            items.append((1, f"{_pad(level)}<{current.tag}/>", 0, ""))
            continue
        only_text = True
        for child in children:
            if not isinstance(child, TextNode):
                only_text = False
                break
        if only_text:
            body = "".join(_esc(child.value) for child in children)
            items.append(
                (1, f"{_pad(level)}<{current.tag}>{body}</{current.tag}>",
                 0, ""))
            continue
        items.append((1, f"{_pad(level)}<{current.tag}>", 0, ""))
        walk.append((f"{_pad(level)}</{current.tag}>", None))
        for child in reversed(children):
            walk.append((child, level + 1))
    stack.extend(reversed(items))
    _sever(image)


# -- generation-time virtual interpretation -----------------------------------

class _V:
    __slots__ = ("tag", "children")

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self.children: list = []


class _VText:
    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value


class _VHole:
    __slots__ = ("tag", "slot")

    def __init__(self, tag: str, slot: int) -> None:
        self.tag = tag
        self.slot = slot


class _VCopy:
    __slots__ = ()


def _vrun(ops, root: _V) -> None:
    """Run instruction ops against a virtual tree: hot endpoints and
    PCDATA copies become markers instead of live nodes."""
    parent = root
    stack: list = []
    for op in ops:
        code = op[0]
        if code == OP_OPEN:
            node = _V(op[1])
            parent.children.append(node)
            stack.append(parent)
            parent = node
        elif code == OP_CLOSE:
            parent = stack.pop()
        elif code == OP_LEAF:
            parent.children.append(_V(op[1]))
        elif code == OP_HOT:
            parent.children.append(_VHole(op[1], op[2]))
        elif code == OP_TEXT:
            parent.children.append(_VText(op[1]))
        else:  # OP_TEXT_COPY
            parent.children.append(_VCopy())


def _is_static(node) -> bool:
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (_VHole, _VCopy)):
            return False
        if isinstance(current, _V):
            stack.extend(current.children)
    return True


def _materialize(node: _V) -> ElementNode:
    """A static virtual subtree as real nodes, for byte-exact line
    rendering through the real serializer."""
    root = ElementNode(node.tag)
    stack = [(node, root)]
    while stack:
        virtual, real = stack.pop()
        for child in virtual.children:
            if isinstance(child, _VText):
                real.append(TextNode(child.value))
            else:
                element = ElementNode(child.tag)
                real.append(element)
                stack.append((child, element))
    return root


def _static_lines(node: _V, rel: int) -> list[str]:
    return list(iter_serialized(_materialize(node), 2, depth=rel))


# Parts of a rendered fragment, in document order:
#   ("lit", line)            — a line pre-padded at its relative depth
#   ("hole", rel, slot, tag) — dispatch a source child here
#   ("copy", rel, tag)       — the holder element of the node's PCDATA
#
# Recursion here is bounded by the embedding's longest XR path (a
# schema artifact, tens of steps), never by document depth —
# generation walks the fragment template, not the instance.
# lint: allow-recursion
def _render(node, rel: int, parts: list) -> None:
    if isinstance(node, _VText):
        parts.append(("lit", _pad(rel) + _esc(node.value)))
        return
    if isinstance(node, _VHole):
        parts.append(("hole", rel, node.slot, node.tag))
        return
    if isinstance(node, _VCopy):
        raise CodecError("PCDATA copy outside its holder element")
    if _is_static(node):
        for line in _static_lines(node, rel):
            parts.append(("lit", line))
        return
    children = node.children
    if len(children) == 1 and isinstance(children[0], _VCopy):
        parts.append(("copy", rel, node.tag))
        return
    for child in children:
        if isinstance(child, _VCopy):
            raise CodecError(
                "PCDATA copy is not the sole child of its holder")
    # Dynamic content is always an element child (a hole, or an element
    # containing one), so the multiline form is statically correct.
    parts.append(("lit", f"{_pad(rel)}<{node.tag}>"))
    for child in children:
        _render(child, rel + 1, parts)
    parts.append(("lit", f"{_pad(rel)}</{node.tag}>"))


def _ops_parts(ops, image: str) -> list:
    root = _V(image)
    _vrun(ops, root)
    if len(root.children) == 1 and isinstance(root.children[0], _VCopy):
        # path(A, str) = text(): the image itself holds the PCDATA.
        return [("copy", 0, image)]
    parts: list = []
    _render(root, 0, parts)
    return parts


# -- code emission ------------------------------------------------------------

class _Writer:
    """Accumulates generated static blocks deterministically."""

    def __init__(self) -> None:
        self.blocks: list[tuple[str, tuple[str, ...]]] = []

    def block(self, lines: list[str]) -> str:
        """Intern one static block; returns its ``_L{i}`` name."""
        name = f"_L{len(self.blocks)}"
        self.blocks.append((name, tuple(lines)))
        return name


def _tokens(writer: _Writer, parts: list, kid_exprs: dict,
            depth_expr: str = "depth", allow_copy: bool = False) -> list:
    """Compile a parts list into ("expr", code) / ("item", code) tokens
    in document order.  Consecutive literal lines are interned as one
    static block; ``kid_exprs`` maps hole slots to source-child
    expressions; copy parts reference ``v`` and are only legal inside
    ``str`` handlers."""
    tokens: list[tuple[str, str]] = []
    lit_run: list[str] = []

    def flush() -> None:
        if lit_run:
            name = writer.block(lit_run)
            tokens.append(
                ("expr", f"_blk(_B{name[2:]}, {name}, {depth_expr})"))
            lit_run.clear()

    for part in parts:
        if part[0] == "lit":
            lit_run.append(part[1])
            continue
        flush()
        if part[0] == "hole":
            _, rel, slot, tag = part
            at = depth_expr if rel == 0 else f"{depth_expr} + {rel}"
            tokens.append(("item", f"(0, {kid_exprs[slot]}, {at}, {tag!r})"))
        else:  # copy
            if not allow_copy:
                raise CodecError("PCDATA copy outside a str program")
            _, rel, tag = part
            at = depth_expr if rel == 0 else f"{depth_expr} + {rel}"
            tokens.append(
                ("expr",
                 f'_pad({at}) + "<{tag}>" + _esc(v) + "</{tag}>"'))
    flush()
    return tokens


def _handler_code(tokens: list, indent: str) -> list[str]:
    """Handler body: the leading static run goes straight to ``out``;
    everything from the first dispatch on is pushed reversed."""
    code: list[str] = []
    position = 0
    while position < len(tokens) and tokens[position][0] == "expr":
        code.append(f"{indent}out.append({tokens[position][1]})")
        position += 1
    for kind, expr in reversed(tokens[position:]):
        if kind == "expr":
            code.append(f'{indent}stack.append((1, {expr}, 0, ""))')
        else:
            code.append(f"{indent}stack.append({expr})")
    return code


def _items_code(tokens: list, indent: str) -> list[str]:
    """Star-body tokens appended to ``items`` in document order (the
    caller pushes ``reversed(items)`` once, after the kid loop)."""
    code: list[str] = []
    for kind, expr in tokens:
        if kind == "expr":
            code.append(f'{indent}items.append((1, {expr}, 0, ""))')
        else:
            code.append(f"{indent}items.append({expr})")
    return code


def _star_layout(program) -> tuple:
    """Head lines / per-kid body parts / tail lines of a star program,
    segmented exactly as ``MappingProgram._run_star`` executes it."""
    dummy = _V(program.image)
    _vrun(program.head_ops, dummy)
    chain = [dummy]
    node = dummy
    for _ in range(program.head_depth):
        node = node.children[-1]
        chain.append(node)
    chain_index = [len(level.children) - 1 for level in chain[:-1]]
    head: list[str] = [f"<{chain[0].tag}>"]
    for level in range(len(chain) - 1):
        for pad_tree in chain[level].children[:-1]:
            head.extend(_static_lines(pad_tree, level + 1))
        head.append(f"{_pad(level + 1)}<{chain[level + 1].tag}>")
    # Replay the tail against the open chain, as _run_star does: CLOSE
    # pops a level, pads land after the chain node of that level.
    parent = chain[-1]
    open_stack = list(chain[:-1])
    for op in program.tail_ops:
        code = op[0]
        if code == OP_OPEN:
            child = _V(op[1])
            parent.children.append(child)
            open_stack.append(parent)
            parent = child
        elif code == OP_CLOSE:
            parent = open_stack.pop()
        elif code == OP_LEAF:
            parent.children.append(_V(op[1]))
        elif code == OP_TEXT:
            parent.children.append(_VText(op[1]))
        else:
            raise CodecError("dynamic op in a star tail")
    tail: list[str] = []
    for level in range(len(chain) - 2, -1, -1):
        tail.append(f"{_pad(level + 1)}</{chain[level + 1].tag}>")
        for pad_tree in chain[level].children[chain_index[level] + 1:]:
            tail.extend(_static_lines(pad_tree, level + 1))
    tail.append(f"</{chain[0].tag}>")
    # Body: one star instance's parts, relative to the kid depth.
    body_root = _V(chain[-1].tag)
    _vrun(program.body_ops, body_root)
    body_parts: list = []
    for child in body_root.children:
        _render(child, 0, body_parts)
    return head, body_parts, tail, len(chain)


_HEADER = '''\
"""Generated per-schema codec — map + serialize fused.

Generated by repro.engine.codegen; regenerate instead of editing.
Cached by (schema fingerprint, embedding fingerprint).
"""
# lint: codec-plane

from repro.engine.codegen import (
    ElementNode,
    EmbeddingError,
    TextNode,
    _blk,
    _codec_fallback,
    _esc,
    _pad,
    _pause_gc,
    _resume_gc,
    parse_xml,
)

'''


def generate_codec_source(instmap: InstMap, *,
                          source_fingerprint: str = "",
                          target_fingerprint: str = "",
                          embedding_fingerprint: str = "") -> str:
    """Emit the specialised codec module for one compiled embedding.

    Deterministic: equal embeddings produce byte-identical source.
    Raises :class:`CodecError` when the embedding runs on the
    reference path (no static shape to specialise).
    """
    mp: Optional[MappingProgram] = instmap._program
    if mp is None:
        raise CodecError(
            "embedding compiled onto the reference path; no static "
            "shape to generate a codec from")
    writer = _Writer()
    type_names = sorted(mp.programs)
    handler_names = {name: f"_h{index}"
                     for index, name in enumerate(type_names)}

    bodies: list[list[str]] = []
    for source_type in type_names:
        program = mp.programs[source_type]
        code = [f"def {handler_names[source_type]}(out, stack, node, "
                "depth):"]
        kind = program.kind
        if kind == "empty":
            # Children of Empty-typed elements are ignored entirely.
            parts = _ops_parts(program.ops, program.image)
            code.extend(_handler_code(_tokens(writer, parts, {}), "    "))
        elif kind == "str":
            code.append("    ch = node.children")
            code.append("    if not ch:")
            code.append('        v = ""')
            code.append("    elif len(ch) == 1 and isinstance(ch[0], "
                        "TextNode):")
            code.append("        v = ch[0].value")
            code.append("    else:")
            code.append("        raise EmbeddingError(")
            message = (f"<{source_type}> has P({source_type}) = str but "
                       "does not contain a single text value")
            code.append(f"            {message!r})")
            parts = _ops_parts(program.ops, program.image)
            code.extend(_handler_code(
                _tokens(writer, parts, {}, allow_copy=True), "    "))
        elif kind == "concat":
            code.append("    kids = [c for c in node.children "
                        "if isinstance(c, ElementNode)]")
            checks = [f"len(kids) == {len(program.expected)}"]
            checks += [f"kids[{index}].tag == {tag!r}"
                       for index, tag in enumerate(program.expected)]
            condition = " and ".join(checks)
            if len(condition) <= 68:
                code.append(f"    if ({condition}):")
            else:
                code.append("    if (")
                for check in checks[:-1]:
                    code.append(f"            {check} and")
                code.append(f"            {checks[-1]}):")
            kid_exprs = {index: f"kids[{index}]"
                         for index in range(len(program.expected))}
            parts = _ops_parts(program.ops, program.image)
            code.extend(_handler_code(
                _tokens(writer, parts, kid_exprs), "        "))
            code.append("    else:")
            code.append("        _codec_fallback(_IM, out, stack, node, "
                        f"depth, {program.image!r})")
        elif kind == "disj":
            code.append("    kids = [c for c in node.children "
                        "if isinstance(c, ElementNode)]")
            code.append("    if not kids:")
            empty_parts = _ops_parts(program.empty_ops, program.image)
            empty_code = _handler_code(
                _tokens(writer, empty_parts, {}), "        ")
            code.extend(empty_code if empty_code else ["        pass"])
            code.append("        return")
            code.append("    k = kids[0]")
            code.append("    t = k.tag")
            keyword = "if"
            for alt_tag, alt_ops in program.alts.items():
                code.append(f"    {keyword} t == {alt_tag!r}:")
                parts = _ops_parts(alt_ops, program.image)
                code.extend(_handler_code(
                    _tokens(writer, parts, {0: "k"}), "        "))
                keyword = "elif"
            code.append("    else:")
            code.append("        raise EmbeddingError(")
            code.append(f'            "instance edge ({source_type}, " + t '
                        '+ ", occ 1) is not covered"')
            code.append('            " by the embedding (document does not '
                        'conform to the source"')
            code.append('            " schema)")')
        else:  # star
            head, body_parts, tail, kid_rel = _star_layout(program)
            code.append("    kids = [c for c in node.children "
                        "if isinstance(c, ElementNode)]")
            code.append("    if not kids:")
            code.append("        _codec_fallback(_IM, out, stack, node, "
                        f"depth, {program.image!r})")
            code.append("        return")
            head_name = writer.block(head)
            tail_name = writer.block(tail)
            code.append(f"    out.append(_blk(_B{head_name[2:]}, "
                        f"{head_name}, depth))")
            code.append(f"    d = depth + {kid_rel}")
            code.append(f"    stack.append((1, _blk(_B{tail_name[2:]}, "
                        f'{tail_name}, depth), 0, ""))')
            if (len(body_parts) == 1 and body_parts[0][0] == "hole"
                    and body_parts[0][2] == LOOP_SLOT):
                tag = body_parts[0][3]
                code.append("    for k in reversed(kids):")
                code.append(f"        stack.append((0, k, d, {tag!r}))")
            else:
                body_tokens = _tokens(writer, body_parts,
                                      {LOOP_SLOT: "k"}, "d")
                code.append("    items = []")
                code.append("    for k in kids:")
                code.extend(_items_code(body_tokens, "        "))
                code.append("    stack.extend(reversed(items))")
        bodies.append(code)

    out: list[str] = [_HEADER]
    out.append(f"SOURCE_FINGERPRINT = {source_fingerprint!r}")
    out.append(f"TARGET_FINGERPRINT = {target_fingerprint!r}")
    out.append(f"EMBEDDING_FINGERPRINT = {embedding_fingerprint!r}")
    out.append(f"SOURCE_ROOT = {mp.source.root!r}")
    out.append(f"ROOT_IMAGE = {mp.root_image!r}")
    out.append("")
    out.append("_IM = None")
    out.append("")
    out.append("")
    out.append("def bind(instmap):")
    out.append('    """Late-bind the owning InstMap (reference fallback '
               'fragments)."""')
    out.append("    global _IM")
    out.append("    _IM = instmap")
    out.append("")
    for name, lines in writer.blocks:
        out.append("")
        if len(lines) == 1:
            out.append(f"{name} = ({lines[0]!r},)")
        else:
            out.append(f"{name} = (")
            for line in lines:
                out.append(f"    {line!r},")
            out.append(")")
        out.append(f"_B{name[2:]}" + " = {}")
    for code in bodies:
        out.append("")
        out.append("")
        out.extend(code)
    out.append("")
    out.append("")
    out.append("_H = {")
    for source_type in type_names:
        out.append(f"    {source_type!r}: {handler_names[source_type]},")
    out.append("}")
    out.append("_IMG = {")
    for source_type in type_names:
        out.append(f"    {source_type!r}: "
                   f"{mp.programs[source_type].image!r},")
    out.append("}")
    out.append("")
    out.append("")
    out.append("def map_tree(root):")
    out.append('    """Serialized \\u03c3d(root) — byte-identical to '
               'to_string(InstMap.apply(root).tree)."""')
    out.append("    if root.tag != SOURCE_ROOT:")
    out.append("        raise EmbeddingError(")
    out.append('            "instance root <" + root.tag + "> is not the '
               'source root <" + SOURCE_ROOT + ">")')
    out.append("    out = []")
    out.append("    stack = [(0, root, 0, ROOT_IMAGE)]")
    out.append("    pop = stack.pop")
    out.append("    get = _H.get")
    out.append("    _pause_gc()")
    out.append("    try:")
    out.append("        while stack:")
    out.append("            kind, payload, depth, expected = pop()")
    out.append("            if kind:")
    out.append("                out.append(payload)")
    out.append("                continue")
    out.append("            handler = get(payload.tag)")
    out.append("            if handler is None:")
    out.append("                raise EmbeddingError(")
    out.append('                    "instance element <" + payload.tag +')
    out.append('                    "> is not a source type of the '
               'embedding (document"')
    out.append('                    " does not conform to the source '
               'schema)")')
    out.append("            image = _IMG[payload.tag]")
    out.append("            if image != expected:")
    out.append("                raise EmbeddingError(")
    out.append('                    "image of <" + payload.tag + "> has '
               'tag <" + expected +')
    out.append('                    ">, expected \\u03bb(" + payload.tag '
               '+ ") = " + image)')
    out.append("            handler(out, stack, payload, depth)")
    out.append("    finally:")
    out.append("        _resume_gc()")
    out.append('    return "\\n".join(out)')
    out.append("")
    out.append("")
    out.append("def map_text(text):")
    out.append('    """Parse, map and serialize in one fused pass."""')
    out.append("    return map_tree(parse_xml(text))")
    out.append("")
    return "\n".join(out)


class GeneratedCodec:
    """A compiled codec module bound to its InstMap."""

    __slots__ = ("source", "source_fingerprint", "target_fingerprint",
                 "embedding_fingerprint", "map_tree", "map_text")

    def __init__(self, source: str, namespace: dict) -> None:
        self.source = source
        self.source_fingerprint = namespace["SOURCE_FINGERPRINT"]
        self.target_fingerprint = namespace["TARGET_FINGERPRINT"]
        self.embedding_fingerprint = namespace["EMBEDDING_FINGERPRINT"]
        self.map_tree = namespace["map_tree"]
        self.map_text = namespace["map_text"]


def compile_codec(source: str, instmap: InstMap) -> GeneratedCodec:
    """Compile codec source and bind it to ``instmap``."""
    fingerprint = ""
    for line in source.splitlines():
        if line.startswith("EMBEDDING_FINGERPRINT"):
            fingerprint = line.split("=", 1)[1].strip().strip("'\"")
            break
    namespace: dict = {}
    code = compile(source, f"<repro-codec {fingerprint[:12]}>", "exec")
    exec(code, namespace)
    namespace["bind"](instmap)
    return GeneratedCodec(source, namespace)


def generate_codec(instmap: InstMap, *, source_fingerprint: str = "",
                   target_fingerprint: str = "",
                   embedding_fingerprint: str = "") -> GeneratedCodec:
    """Generate, compile and bind in one step."""
    source = generate_codec_source(
        instmap, source_fingerprint=source_fingerprint,
        target_fingerprint=target_fingerprint,
        embedding_fingerprint=embedding_fingerprint)
    return compile_codec(source, instmap)
