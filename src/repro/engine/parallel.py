"""Parallel batch serving — fan one corpus across many warm engines.

:class:`ParallelRunner` chunks a document corpus (or query list) across
a ``multiprocessing`` pool.  Each worker owns a private
:class:`~repro.engine.session.Engine`; when an artifact-store path is
given the workers **warm-start** from it, so every process serves with
zero schema/embedding compile misses (the compile was paid once, by
whoever built the store).  Results are re-merged in corpus order —
``jobs=4`` output is element-for-element identical to ``jobs=1`` — and
per-worker cache counters are aggregated into one report.

Two things intentionally do *not* survive the process boundary:

* node ids — each worker draws from its own id counter, so ids are
  unique within a :class:`~repro.core.instmap.MappingResult` but not
  across results from different workers (rendered XML, ``tree_equal``
  and the per-result ``idM`` are unaffected);
* engine identity — workers never share caches; the aggregated stats
  therefore show one embedding compile per worker when no store is
  given, and zero when one is.

``jobs=1`` runs the identical chunk pipeline serially in-process (no
pool, no pickling) — the byte-identity tests compare the two paths.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.anfa.model import ANFA
from repro.core.embedding import SchemaEmbedding
from repro.core.instmap import MappingResult
from repro.engine.corpus import CorpusDocument, iter_corpus
from repro.engine.session import Engine, EngineConfig
from repro.engine.store import ArtifactStore
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string

#: Documents/queries per pool task; small enough that a 4-worker pool
#: stays busy on a few hundred items, large enough to amortise IPC.
DEFAULT_CHUNK_SIZE = 8


@dataclass
class ParallelReport:
    """One batch run: fan-out shape plus aggregated cache counters."""

    jobs: int
    chunks: int
    items: int
    #: summed per-worker Engine stats (hits/misses/evictions per cache).
    stats: dict[str, dict[str, int]] = field(default_factory=dict)

    def describe(self) -> str:
        rows = [f"jobs: {self.jobs}, chunks: {self.chunks}, "
                f"items: {self.items}"]
        for name, counters in self.stats.items():
            rows.append(f"{name}: {counters.get('hits', 0)} hits, "
                        f"{counters.get('misses', 0)} misses, "
                        f"{counters.get('evictions', 0)} evictions")
        return "\n".join(rows)


@dataclass
class CorpusOutcome:
    """One corpus document's result: rendered XML or the failure."""

    name: str
    ok: bool
    #: rendered target document when ``ok``, else the error message.
    output: str


@dataclass
class TranslationOutcome:
    """One query's result: the translated ANFA or the failure."""

    query: str
    ok: bool
    anfa: Optional[ANFA] = None
    error: str = ""


# -- worker-side state --------------------------------------------------------
#
# Pool workers are single-purpose: one initializer installs the engine
# and the batch's embedding, task functions only ship chunk payloads.

class _WorkerContext:
    def __init__(self, store_path: Optional[str],
                 config: Optional[EngineConfig],
                 embedding_ref: Union[SchemaEmbedding, str]) -> None:
        self.engine = Engine(config)
        if store_path is not None:
            # A batch serves exactly one embedding, so the worker loads
            # just that artifact from the store (not the whole store):
            # compile it now, then reset stats so serving reports zero
            # compile misses — the same warm-start contract as
            # Engine.warm_start, scoped to the batch.
            store = ArtifactStore(store_path, create=False)
            if isinstance(embedding_ref, str):
                fingerprint = embedding_ref
                embedding_ref = store.get_embedding(fingerprint)
            else:
                fingerprint = embedding_ref.fingerprint()
            compiled = self.engine.compile_embedding(embedding_ref)
            if store.embedding_validated(fingerprint):
                compiled.mark_validated()
                compiled.instmap
            self.engine.reset_stats()
        assert isinstance(embedding_ref, SchemaEmbedding)
        self.embedding = embedding_ref


_WORKER: Optional[_WorkerContext] = None


def _init_worker(store_path: Optional[str], config: Optional[EngineConfig],
                 embedding_ref: Union[SchemaEmbedding, str]) -> None:
    global _WORKER
    _WORKER = _WorkerContext(store_path, config, embedding_ref)


def _stats_delta(before: dict, after: dict) -> dict:
    return {cache: {counter: after[cache][counter] - before[cache][counter]
                    for counter in after[cache]}
            for cache in after}


def _map_chunk(task):
    index, documents, validate = task
    context = _WORKER
    assert context is not None
    before = context.engine.stats()
    results = [context.engine.apply_embedding(context.embedding, document,
                                              validate=validate)
               for document in documents]
    return index, results, _stats_delta(before, context.engine.stats())


def _translate_chunk(task):
    index, queries, context_type = task
    context = _WORKER
    assert context is not None
    before = context.engine.stats()
    results = [context.engine.translate_query(context.embedding, query,
                                              context_type)
               for query in queries]
    return index, results, _stats_delta(before, context.engine.stats())


def _translate_outcome_chunk(task):
    index, queries, context_type = task
    context = _WORKER
    assert context is not None
    before = context.engine.stats()
    outcomes = []
    for query in queries:
        try:
            anfa = context.engine.translate_query(context.embedding, query,
                                                  context_type)
            outcomes.append(TranslationOutcome(str(query), True, anfa))
        except Exception as exc:  # one bad query must not sink the batch
            outcomes.append(TranslationOutcome(
                str(query), False, error=f"{type(exc).__name__}: {exc}"))
    return index, outcomes, _stats_delta(before, context.engine.stats())


def _corpus_chunk(task):
    index, rows, validate = task
    context = _WORKER
    assert context is not None
    before = context.engine.stats()
    outcomes = []
    for name, text in rows:
        try:
            document = parse_xml(text)
            result = context.engine.apply_embedding(context.embedding,
                                                    document,
                                                    validate=validate)
            outcomes.append(CorpusOutcome(name, True, to_string(result.tree)))
        except Exception as exc:  # one bad document must not sink the batch
            outcomes.append(CorpusOutcome(
                name, False, f"{type(exc).__name__}: {exc}"))
    return index, outcomes, _stats_delta(before, context.engine.stats())


def _chunked(items: Iterable, size: int) -> Iterator[list]:
    chunk: list = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


# -- the runner ---------------------------------------------------------------

class ParallelRunner:
    """Chunked fan-out of one embedding's batch across worker engines.

    ``jobs=None`` uses every core; ``store`` names an artifact-store
    directory the workers warm-start from (the embedding is added to it
    first, so a fresh store directory works too).  One runner can serve
    many batches; ``last_report`` describes the most recent one.
    """

    def __init__(self, jobs: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 store: Optional[Union[str, Path]] = None,
                 config: Optional[EngineConfig] = None) -> None:
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.chunk_size = max(1, chunk_size or DEFAULT_CHUNK_SIZE)
        self.store_path = str(store) if store is not None else None
        self.config = config
        self.last_report: Optional[ParallelReport] = None

    # -- batch entry points ------------------------------------------------
    def map_documents(self, embedding: SchemaEmbedding,
                      documents: Iterable, validate: bool = True,
                      ) -> list[MappingResult]:
        """``σd`` over a document stream, order preserved."""
        return self._run(_map_chunk, embedding,
                         ((chunk, validate)
                          for chunk in _chunked(documents, self.chunk_size)))

    def translate_queries(self, embedding: SchemaEmbedding,
                          queries: Sequence,
                          context_type: Optional[str] = None) -> list[ANFA]:
        """``Tr`` over a query list, order preserved."""
        return self._run(_translate_chunk, embedding,
                         ((chunk, context_type)
                          for chunk in _chunked(queries, self.chunk_size)))

    def translate_outcomes(self, embedding: SchemaEmbedding,
                           queries: Sequence,
                           context_type: Optional[str] = None,
                           ) -> list[TranslationOutcome]:
        """``Tr`` with per-query failure isolation (the CLI's batch
        path): a malformed query yields a failed outcome instead of
        aborting the rest of the batch."""
        return self._run(_translate_outcome_chunk, embedding,
                         ((chunk, context_type)
                          for chunk in _chunked(queries, self.chunk_size)))

    def map_corpus(self, embedding: SchemaEmbedding,
                   corpus: Union[str, Path, Iterable[CorpusDocument]],
                   validate: bool = True) -> list[CorpusOutcome]:
        """Parse + map + render a corpus; workers absorb the parse cost
        too.  ``corpus`` may be a path (directory / NDJSON / XML file)
        or any stream of :class:`CorpusDocument` / ``(name, text)``
        pairs.  Failures come back as per-document outcomes."""
        if isinstance(corpus, (str, Path)):
            corpus = iter_corpus(corpus)
        rows = ((document.name, document.text)
                if isinstance(document, CorpusDocument) else tuple(document)
                for document in corpus)
        return self._run(_corpus_chunk, embedding,
                         ((chunk, validate)
                          for chunk in _chunked(rows, self.chunk_size)))

    # -- execution ---------------------------------------------------------
    def _run(self, worker, embedding: SchemaEmbedding, chunk_args) -> list:
        embedding_ref: Union[SchemaEmbedding, str] = embedding
        if self.store_path is not None:
            # Publish the embedding (and its schemas) so workers load by
            # fingerprint instead of re-pickling the whole object.
            store = ArtifactStore(self.store_path)
            embedding_ref = store.put_embedding(embedding)
        tasks = ((index, *args) for index, args in enumerate(chunk_args))

        outputs: list = []
        stats: dict[str, dict[str, int]] = {}
        chunks = 0

        def consume(result) -> None:
            nonlocal chunks
            _index, payload, delta = result
            outputs.extend(payload)
            chunks += 1
            for cache, counters in delta.items():
                bucket = stats.setdefault(cache, {})
                for counter, value in counters.items():
                    bucket[counter] = bucket.get(counter, 0) + value

        if self.jobs == 1:
            # The identical chunk pipeline, in-process: byte-identity
            # between jobs=1 and jobs=N is tested against this path.
            global _WORKER
            previous = _WORKER
            _init_worker(self.store_path, self.config, embedding_ref)
            try:
                for task in tasks:
                    consume(worker(task))
            finally:
                _WORKER = previous
        else:
            with multiprocessing.Pool(
                    self.jobs, initializer=_init_worker,
                    initargs=(self.store_path, self.config,
                              embedding_ref)) as pool:
                # imap keeps corpus order and consumes the task stream
                # lazily, so corpora never materialise in the parent.
                for result in pool.imap(worker, tasks):
                    consume(result)

        self.last_report = ParallelReport(self.jobs, chunks, len(outputs),
                                          stats)
        return outputs
