"""The persistent artifact store — compiled-once artifacts across processes.

:class:`~repro.engine.session.Engine` makes the pipeline "compile once,
serve many" *within* a process; the store pushes the same philosophy
across process (and machine) boundaries.  Schemas, embeddings and whole
search results are serialised to a directory keyed by the same content
fingerprints the engine caches use:

* ``manifest.json`` — format/version plus a fingerprint-indexed table
  of every artifact with light metadata (root type, λ endpoints, the
  search parameters);
* ``schemas/<fp>.json`` — one DTD in a structural JSON form that
  round-trips *exactly* (definition order included, so the reloaded
  schema has the same fingerprint); the manifest entry records the
  frontend ``format`` it was ingested through (``dtd``/``compact``/
  ``xsd``; absent in pre-frontend stores, which read back as ``dtd``)
  and, when known, a ``sources/<fp>.txt`` copy of the input text;
* ``embeddings/<fp>.json`` — λ and the path rows of one embedding,
  referencing its schemas by fingerprint;
* ``searches/<digest>.json`` — one cached ``find_embedding`` result,
  keyed by a digest of the engine's search-cache key;
* ``lineage/<digest>.json`` — one schema-evolution edge: a schema
  fingerprint, its successor fingerprint, the embedding (by
  fingerprint, ``null`` when none was found) and free-form provenance
  (who recorded it, verdict counts, …).  The section is lazy: stores
  written before it existed carry no ``lineage`` manifest key and keep
  reading back unchanged, and recording the first edge touches only
  the manifest and the new edge file — never the existing artifacts;
* ``codecs/<fp>.py`` — the generated parse→map→serialize codec source
  of one embedding (:mod:`repro.engine.codegen`), keyed by the
  embedding fingerprint with the (source schema, target schema)
  fingerprint pair and generation provenance in the manifest entry.
  Codec generation is deterministic, so the file doubles as its own
  cache key; like ``lineage`` the section is lazy and pre-codec stores
  read back cleanly without any artifact file being rewritten.

A new process calls ``Engine.warm_start(path)`` and serves with zero
schema/embedding compile misses; ``Engine.save_store(path)`` persists a
running session.  The format is declarative (the Section 4.5
transformation-language artifact, extended with schemas and search
outcomes), so stores are diffable, versionable and safe to rsync.

Writes are atomic (temp file + rename) and idempotent: putting an
artifact that is already stored under its fingerprint is a no-op.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.core.embedding import EdgeKey, SchemaEmbedding
from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    Production,
    Star,
    Str,
)
from repro.matching.search import SearchResult
from repro.xpath.paths import XRPath

FORMAT = "repro-artifact-store"
VERSION = 1

#: JSON-able form of an Engine search-cache key (tuples become lists).
SearchKey = tuple


class StoreError(ValueError):
    """Raised on missing, corrupt or version-incompatible stores."""


# -- structural (de)serialisation ---------------------------------------------
#
# Productions are encoded structurally rather than through the compact
# text syntax: "b" is ambiguous between a one-child concatenation and a
# one-alternative disjunction, and fingerprints must survive the round
# trip bit-for-bit.

def production_to_payload(production: Production) -> dict:
    if isinstance(production, Str):
        return {"kind": "str"}
    if isinstance(production, Empty):
        return {"kind": "empty"}
    if isinstance(production, Concat):
        return {"kind": "concat", "children": list(production.children)}
    if isinstance(production, Disjunction):
        return {"kind": "disjunction", "children": list(production.children),
                "optional": production.optional}
    if isinstance(production, Star):
        return {"kind": "star", "child": production.child}
    raise StoreError(f"unknown production {production!r}")


def production_from_payload(payload: dict) -> Production:
    kind = payload.get("kind")
    if kind == "str":
        return Str()
    if kind == "empty":
        return Empty()
    if kind == "concat":
        return Concat(tuple(payload["children"]))
    if kind == "disjunction":
        return Disjunction(tuple(payload["children"]),
                           optional=bool(payload.get("optional", False)))
    if kind == "star":
        return Star(payload["child"])
    raise StoreError(f"unknown production kind {kind!r}")


def dtd_to_payload(dtd: DTD) -> dict:
    """A DTD as JSON, preserving definition order (fingerprint-exact)."""
    return {
        "name": dtd.name,
        "root": dtd.root,
        "types": [[element_type,
                   production_to_payload(dtd.production(element_type))]
                  for element_type in dtd.types],
    }


def dtd_from_payload(payload: dict) -> DTD:
    elements = {element_type: production_from_payload(row)
                for element_type, row in payload["types"]}
    return DTD(elements, payload["root"], payload.get("name", "dtd"))


def embedding_to_payload(embedding: SchemaEmbedding) -> dict:
    """An embedding as JSON; schemas are referenced by fingerprint."""
    return {
        "source": embedding.source.fingerprint(),
        "target": embedding.target.fingerprint(),
        "lam": dict(embedding.lam),
        "paths": [{"source": a, "child": b, "occ": occ, "path": str(path)}
                  for (a, b, occ), path in sorted(embedding.paths.items())],
    }


def embedding_from_payload(payload: dict, source: DTD,
                           target: DTD) -> SchemaEmbedding:
    paths: dict[EdgeKey, XRPath] = {
        (row["source"], row["child"], row.get("occ", 1)):
            XRPath.parse(row["path"])
        for row in payload["paths"]}
    return SchemaEmbedding(source, target, dict(payload["lam"]), paths)


def search_key_digest(key: SearchKey) -> str:
    """A stable digest of an Engine search-cache key."""
    return hashlib.sha256(
        json.dumps(key, sort_keys=True, default=list).encode("utf-8")
    ).hexdigest()


def lineage_digest(old: str, new: str,
                   embedding: Optional[str] = None) -> str:
    """The content key of one lineage edge (old, new, embedding)."""
    return hashlib.sha256(
        f"{old}\n{new}\n{embedding or ''}".encode("utf-8")).hexdigest()


def _key_from_json(value):
    """Rebuild the engine's tuple-shaped key from its JSON list form."""
    if isinstance(value, list):
        return tuple(_key_from_json(item) for item in value)
    return value


# -- the store ----------------------------------------------------------------

class ArtifactStore:
    """A versioned, fingerprint-keyed artifact directory.

    Opening is cheap (one manifest read); artifact bodies load lazily
    and are memoised, so a store shared by many workers costs each of
    them only the artifacts it actually serves.
    """

    def __init__(self, root: Union[str, Path], create: bool = True) -> None:
        self.root = Path(root)
        #: JSON artifact-body parses this store has performed — the
        #: counter the packed view (`repro.engine.storepack.StoreView`,
        #: whose equivalent stays 0 by construction) is measured
        #: against.
        self.parses = 0
        self._schemas: dict[str, DTD] = {}
        self._embeddings: dict[str, SchemaEmbedding] = {}
        manifest_path = self.root / "manifest.json"
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
            except json.JSONDecodeError as exc:
                raise StoreError(
                    f"manifest at {self.root} is corrupt: {exc}") from exc
            if manifest.get("format") != FORMAT:
                raise StoreError(f"{self.root} is not an artifact store")
            if manifest.get("version") != VERSION:
                raise StoreError(
                    f"store version {manifest.get('version')} is not the "
                    f"supported version {VERSION}")
            self.manifest = manifest
        elif create:
            self.manifest = {"format": FORMAT, "version": VERSION,
                             "schemas": {}, "embeddings": {}, "searches": {}}
            self.root.mkdir(parents=True, exist_ok=True)
            self._flush_manifest()
        else:
            raise StoreError(f"no artifact store at {self.root}")

    # -- manifest ------------------------------------------------------------
    def _flush_manifest(self) -> None:
        """Atomic manifest write: readers never see a torn file.

        Before writing, entries present on disk are merged in (ours
        win), so two processes adding *different* artifacts to a shared
        store do not lose each other's additions — artifact bodies are
        fingerprint-named and idempotent, only the index races.  True
        concurrent writes of the *same* entry still follow last-writer
        -wins; a multi-writer deployment should build stores up front
        (``repro store build``) and treat them as read-mostly.
        """
        manifest_path = self.root / "manifest.json"
        if manifest_path.exists():
            try:
                on_disk = json.loads(manifest_path.read_text())
            except json.JSONDecodeError:
                on_disk = {}
            if on_disk.get("format") == FORMAT \
                    and on_disk.get("version") == VERSION:
                # "lineage" and "codecs" are lazy — older manifests
                # carry no such key on either side, hence
                # .get/setdefault on both rather than indexing.
                for section in ("schemas", "embeddings", "searches",
                                "lineage", "codecs"):
                    on_disk_section = on_disk.get(section)
                    if not on_disk_section:
                        continue
                    ours = self.manifest.setdefault(section, {})
                    for key, meta in on_disk_section.items():
                        ours.setdefault(key, meta)
        tmp = self.root / "manifest.json.tmp"
        tmp.write_text(json.dumps(self.manifest, indent=2, sort_keys=True)
                       + "\n")
        os.replace(tmp, manifest_path)

    def _write_artifact(self, relative: str, payload: dict) -> None:
        path = self.root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)

    def _write_text(self, relative: str, text: str) -> None:
        """Atomic plain-text write (schema source provenance)."""
        path = self.root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    def _read_artifact(self, relative: str) -> dict:
        path = self.root / relative
        if not path.exists():
            raise StoreError(f"missing artifact file {path}")
        self.parses += 1
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreError(f"artifact {path} is corrupt: {exc}") from exc

    # -- schemas ---------------------------------------------------------------
    def put_schema(self, dtd: DTD, format: Optional[str] = None,
                   source_text: Optional[str] = None) -> str:
        """Store ``dtd``; idempotent per fingerprint.

        ``format`` records which frontend the schema came through and
        ``source_text`` the exact input text (written to
        ``sources/<fp>.txt``) — the provenance that ``repro store
        inspect`` surfaces.  Both are optional: schemas built in memory
        store as format ``dtd`` with no source file, and stores written
        before the frontend layer existed (no ``format`` key at all)
        keep loading and read back as ``dtd``.
        """
        fingerprint = dtd.fingerprint()
        entry = self.manifest["schemas"].get(fingerprint)
        dirty = False
        if entry is None:
            self._write_artifact(f"schemas/{fingerprint}.json",
                                 dtd_to_payload(dtd))
            entry = {"name": dtd.name, "root": dtd.root,
                     "types": len(dtd.types), "format": format or "dtd"}
            dirty = True
        elif format is not None and entry.get("format", "dtd") != format:
            # A format flip must keep (format, source) consistent:
            # accept it only when the matching source text comes along
            # (rewriting the provenance file) or none was recorded yet.
            if source_text is not None and entry.get("source"):
                self._write_text(entry["source"], source_text)
                entry = {**entry, "format": format}
                dirty = True
            elif not entry.get("source"):
                entry = {**entry, "format": format}
                dirty = True
        if source_text is not None and not entry.get("source"):
            relative = f"sources/{fingerprint}.txt"
            self._write_text(relative, source_text)
            entry = {**entry, "source": relative}
            dirty = True
        if dirty:
            self.manifest["schemas"][fingerprint] = entry
            self._flush_manifest()
        self._schemas[fingerprint] = dtd
        return fingerprint

    def get_schema(self, fingerprint: str) -> DTD:
        cached = self._schemas.get(fingerprint)
        if cached is not None:
            return cached
        if fingerprint not in self.manifest["schemas"]:
            raise StoreError(f"no schema {fingerprint[:12]}… in {self.root}")
        try:
            dtd = dtd_from_payload(
                self._read_artifact(f"schemas/{fingerprint}.json"))
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(
                f"schema {fingerprint[:12]}… is corrupt: {exc}") from exc
        if dtd.fingerprint() != fingerprint:
            raise StoreError(
                f"schema {fingerprint[:12]}… is corrupt (content "
                f"fingerprint {dtd.fingerprint()[:12]}…)")
        self._schemas[fingerprint] = dtd
        return dtd

    def schema_fingerprints(self) -> list[str]:
        return sorted(self.manifest["schemas"])

    def schema_format(self, fingerprint: str) -> str:
        """The frontend format the schema was ingested through.

        Pre-frontend stores carry no ``format`` key; their schemas read
        back as ``dtd`` (the only format that existed then).
        """
        entry = self.manifest["schemas"].get(fingerprint)
        if entry is None:
            raise StoreError(f"no schema {fingerprint[:12]}… in {self.root}")
        return entry.get("format", "dtd")

    def schema_source_text(self, fingerprint: str) -> Optional[str]:
        """The exact source text the schema was built from, if stored."""
        entry = self.manifest["schemas"].get(fingerprint)
        if entry is None:
            raise StoreError(f"no schema {fingerprint[:12]}… in {self.root}")
        relative = entry.get("source")
        if not relative:
            return None
        path = self.root / relative
        if not path.exists():
            raise StoreError(f"missing source file {path}")
        return path.read_text()

    # -- embeddings --------------------------------------------------------------
    def put_embedding(self, embedding: SchemaEmbedding,
                      validated: bool = False) -> str:
        fingerprint = embedding.fingerprint()
        entry = self.manifest["embeddings"].get(fingerprint)
        if entry is None or (validated and not entry.get("validated")):
            self.put_schema(embedding.source)
            self.put_schema(embedding.target)
            self._write_artifact(f"embeddings/{fingerprint}.json",
                                 embedding_to_payload(embedding))
            self.manifest["embeddings"][fingerprint] = {
                "source": embedding.source.fingerprint(),
                "target": embedding.target.fingerprint(),
                "edges": len(embedding.paths),
                "validated": bool(validated
                                  or (entry or {}).get("validated", False)),
            }
            self._flush_manifest()
        self._embeddings[fingerprint] = embedding
        return fingerprint

    def get_embedding(self, fingerprint: str) -> SchemaEmbedding:
        cached = self._embeddings.get(fingerprint)
        if cached is not None:
            return cached
        entry = self.manifest["embeddings"].get(fingerprint)
        if entry is None:
            raise StoreError(
                f"no embedding {fingerprint[:12]}… in {self.root}")
        payload = self._read_artifact(f"embeddings/{fingerprint}.json")
        try:
            embedding = embedding_from_payload(
                payload, self.get_schema(entry["source"]),
                self.get_schema(entry["target"]))
        except StoreError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(
                f"embedding {fingerprint[:12]}… is corrupt: {exc}") from exc
        if embedding.fingerprint() != fingerprint:
            raise StoreError(
                f"embedding {fingerprint[:12]}… is corrupt (content "
                f"fingerprint {embedding.fingerprint()[:12]}…)")
        self._embeddings[fingerprint] = embedding
        return embedding

    def embedding_validated(self, fingerprint: str) -> bool:
        entry = self.manifest["embeddings"].get(fingerprint)
        return bool(entry and entry.get("validated"))

    def embedding_fingerprints(self) -> list[str]:
        return sorted(self.manifest["embeddings"])

    # -- search results ------------------------------------------------------------
    def put_search(self, key: SearchKey, result: SearchResult) -> str:
        digest = search_key_digest(key)
        embedding_fp: Optional[str] = None
        if result.embedding is not None:
            embedding_fp = self.put_embedding(result.embedding,
                                              validated=True)
        self._write_artifact(f"searches/{digest}.json", {
            "key": list(key),
            "embedding": embedding_fp,
            "method": result.method,
            "seconds": result.seconds,
            "quality": result.quality,
        })
        self.manifest["searches"][digest] = {"method": result.method,
                                             "embedding": embedding_fp}
        self._flush_manifest()
        return digest

    def iter_searches(self) -> Iterator[tuple[SearchKey, SearchResult]]:
        for digest in sorted(self.manifest["searches"]):
            payload = self._read_artifact(f"searches/{digest}.json")
            embedding = (self.get_embedding(payload["embedding"])
                         if payload["embedding"] else None)
            yield (_key_from_json(payload["key"]),
                   SearchResult(embedding, payload["method"],
                                payload["seconds"], payload["quality"]))

    # -- lineage -------------------------------------------------------------------
    def put_lineage(self, payload: dict) -> str:
        """Record one schema-evolution edge; idempotent per digest.

        ``payload`` needs ``old``/``new`` schema fingerprints and may
        carry ``embedding`` (an embedding fingerprint or ``None``) and
        ``provenance`` (a free-form JSON object).  The section is
        created on first write — a pre-lineage store gains it without
        any existing artifact being rewritten.
        """
        old = payload.get("old")
        new = payload.get("new")
        if not isinstance(old, str) or not isinstance(new, str):
            raise StoreError("a lineage edge needs 'old' and 'new' "
                             "schema fingerprints")
        embedding = payload.get("embedding")
        digest = lineage_digest(old, new, embedding)
        section = self.manifest.setdefault("lineage", {})
        if digest not in section:
            self._write_artifact(f"lineage/{digest}.json", payload)
            section[digest] = {"old": old, "new": new,
                               "embedding": embedding}
            self._flush_manifest()
        return digest

    def get_lineage(self, digest: str) -> dict:
        """One recorded edge's full payload (provenance included)."""
        if digest not in self.manifest.get("lineage", {}):
            raise StoreError(
                f"no lineage edge {digest[:12]}… in {self.root}")
        return self._read_artifact(f"lineage/{digest}.json")

    def lineage_digests(self) -> list[str]:
        return sorted(self.manifest.get("lineage", {}))

    def iter_lineage(self) -> Iterator[tuple[str, dict]]:
        for digest in self.lineage_digests():
            yield digest, self.get_lineage(digest)

    # -- generated codecs ----------------------------------------------------------
    def put_codec(self, fingerprint: str, source: str,
                  source_schema: str = "", target_schema: str = "",
                  provenance: str = "generated") -> str:
        """Cache one embedding's generated codec source; idempotent per
        embedding fingerprint.

        ``source_schema``/``target_schema`` record the (schema,
        embedding) fingerprint pair the codec was generated for and
        ``provenance`` who generated it (``generated``, ``warm-start``,
        a build id, …).  Like ``lineage``, the section is created on
        first write — pre-codec stores gain it without any existing
        artifact file being rewritten.
        """
        section = self.manifest.setdefault("codecs", {})
        if fingerprint not in section:
            self._write_text(f"codecs/{fingerprint}.py", source)
            section[fingerprint] = {"source": source_schema,
                                    "target": target_schema,
                                    "provenance": provenance}
            self._flush_manifest()
        return fingerprint

    def get_codec_source(self, fingerprint: str) -> str:
        """The generated codec source cached for one embedding."""
        if fingerprint not in self.manifest.get("codecs", {}):
            raise StoreError(
                f"no codec for embedding {fingerprint[:12]}… in "
                f"{self.root}")
        path = self.root / f"codecs/{fingerprint}.py"
        if not path.exists():
            raise StoreError(f"missing codec file {path}")
        return path.read_text()

    def codec_fingerprints(self) -> list[str]:
        return sorted(self.manifest.get("codecs", {}))

    # -- inspection ------------------------------------------------------------------
    def describe(self) -> dict:
        """A manifest summary for ``repro store inspect``."""
        return {
            "path": str(self.root),
            "format": FORMAT,
            "version": VERSION,
            "schemas": [
                {"fingerprint": fp, "format": "dtd", "source": None, **meta}
                for fp, meta in sorted(self.manifest["schemas"].items())],
            "embeddings": [
                {"fingerprint": fp, **meta}
                for fp, meta in sorted(self.manifest["embeddings"].items())],
            "searches": [
                {"digest": digest, **meta}
                for digest, meta in sorted(self.manifest["searches"].items())],
            "lineage": [
                {"digest": digest, **meta}
                for digest, meta in sorted(
                    self.manifest.get("lineage", {}).items())],
            "codecs": [
                {"embedding": fp, **meta}
                for fp, meta in sorted(
                    self.manifest.get("codecs", {}).items())],
        }

    def __repr__(self) -> str:
        return (f"ArtifactStore({str(self.root)!r}, "
                f"schemas={len(self.manifest['schemas'])}, "
                f"embeddings={len(self.manifest['embeddings'])}, "
                f"searches={len(self.manifest['searches'])})")
