"""Compiled document-plane mapping programs — the InstMap fast path.

:class:`~repro.core.instmap.InstMap` (paper §4.2) is linear in
``|T1| + |T2|``, but the reference implementation pays a large constant
per hot node: a ``_FragmentBuilder`` allocation, a ``slots`` dict per
created node, a ``target.production(tag)`` + ``_slot_key`` derivation
per path step, a recursive completion pass with ``mindef`` deep copies,
and a final sort of every child list.  None of that depends on the
document: for a fixed (validated) embedding the *shape* of every
production fragment is static — only the hot endpoints, star
multiplicities, OR choices and text values vary per node.

This module hoists all of it to compile time.  Each source type is
compiled into a :class:`TypeProgram`: a flat instruction sequence
(tuples interpreted by one loop, no recursion, no dict bookkeeping)
with

* pre-resolved slot keys — ``Concat.index_of_occurrence`` per
  :data:`~repro.core.embedding.EdgeKey` is folded into the instruction
  order at compile time;
* pre-walked path-step templates — the prefix-shared trie of the
  fragment's XR paths, already completed and sorted into production
  order;
* prebuilt mindef padding plans — default instances are flattened into
  the same instruction stream (no ``copy_tree`` recursion at runtime).

:class:`MappingProgram.apply` is then an iterative interpreter: a BFS
over hot (image, source-node) pairs, each fragment emitted by running
its type's instruction sequence.  :class:`InverseProgram` does the same
for ``σd⁻¹``: per-edge step templates with precomputed occurrence
indexes, executed with an explicit stack (deep documents never recurse).

The invariant (enforced by ``tests/test_fastpath_equivalence.py`` and
``benchmarks/bench_fastpath.py``): a compiled program produces output
**byte-identical** to the reference path — same serialized tree, same
``idM`` correspondence, same error class on malformed documents.
Fragments whose shape the compiler cannot prove static (a malformed
document, or an invalid embedding compiled with ``validate=False``)
fall back to the reference ``_FragmentBuilder`` per fragment, so
behaviour is preserved bit-for-bit even off the happy path.
"""

from __future__ import annotations

import gc
import threading
from collections import deque
from typing import Optional

from repro.core.embedding import STR_KEY, SchemaEmbedding
from repro.core.errors import EmbeddingError, InverseError
from repro.dtd.mindef import DEFAULT_STRING, MinDef
from repro.dtd.model import (
    Concat,
    Disjunction,
    Empty,
    Star,
    Str,
)
from repro.xpath.paths import PathInfo
from repro.xtree.nodes import ElementNode, TextNode
from repro.xtree.nodes import _id_counter as _ids

# -- instruction opcodes ------------------------------------------------------
#: create an element, append to the current parent, push as parent
OP_OPEN = 0
#: pop the current parent
OP_CLOSE = 1
#: append a childless element (a leaf pad)
OP_LEAF = 2
#: append a static text node (mindef ``#s`` padding)
OP_TEXT = 3
#: append a hot endpoint element bound to the slot-th source child
OP_HOT = 4
#: append the source node's PCDATA (``str`` programs only)
OP_TEXT_COPY = 5

#: OP_HOT slot value meaning "the current star-loop child".
LOOP_SLOT = -1

#: Cache-miss sentinel for the sparse-concat cache (``None`` is a valid
#: cached value: "this shape needs the reference builder").
_UNCOMPILED = object()

#: Distinct (type, child-tag signature) shapes memoised per program
#: before a wholesale flush — partial-document shapes are usually few
#: (a handful of optional fields), so this is a runaway-input backstop,
#: not a working-set tune.
SPARSE_CACHE_LIMIT = 4096


# Deliberately NOT a ValueError: this is the compiler's internal
# control-flow signal, caught by InstMap's constructor.  If it ever
# escaped, the CLI boundary swallowing it into a clean exit-2 would
# hide a compiler bug — a loud traceback is the contract here.
# lint: allow-error-type
class PlanError(Exception):
    """Compilation cannot prove the fragment shape static (invalid
    embedding compiled with ``validate=False``); the caller falls back
    to the reference builder wholesale."""


# -- process-global GC pause (reentrant, thread-safe) ------------------------
# The threaded serve daemon maps documents concurrently: a naive
# isenabled()/disable() pair races between threads.  A depth counter
# under a lock keeps collection off while *any* mapping burst is in
# flight and restores the user's setting when the last one finishes.
_gc_lock = threading.Lock()
_gc_pause_depth = 0
_gc_was_enabled = False


def _pause_gc() -> None:
    global _gc_pause_depth, _gc_was_enabled
    with _gc_lock:
        if _gc_pause_depth == 0:
            _gc_was_enabled = gc.isenabled()
            if _gc_was_enabled:
                gc.disable()
        _gc_pause_depth += 1


def _resume_gc() -> None:
    global _gc_pause_depth
    with _gc_lock:
        _gc_pause_depth -= 1
        if _gc_pause_depth == 0 and _gc_was_enabled:
            gc.enable()


# -- compiled per-type programs ----------------------------------------------

class TypeProgram:
    """The compiled production fragment ``pfrag_A`` of one source type."""

    __slots__ = ("kind", "image", "expected", "ops", "alts", "empty_ops",
                 "head_ops", "body_ops", "tail_ops", "head_depth")

    def __init__(self, kind: str, image: str) -> None:
        self.kind = kind
        self.image = image
        self.expected: tuple[str, ...] = ()
        self.ops: tuple = ()
        self.alts: dict[str, tuple] = {}
        self.empty_ops: tuple = ()
        self.head_ops: tuple = ()
        self.body_ops: tuple = ()
        self.tail_ops: tuple = ()
        self.head_depth = 0


class _TrieNode:
    """One prebuilt target position in a fragment's path trie."""

    __slots__ = ("tag", "target_type", "slots", "payload")

    def __init__(self, tag: str, target_type: str) -> None:
        self.tag = tag
        self.target_type = target_type
        #: slot key -> child _TrieNode (the paper's ``pos()`` bookkeeping,
        #: resolved at compile time)
        self.slots: dict = {}
        #: None (interior) | ("hot", slot) | ("text",)
        self.payload: Optional[tuple] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_TrieNode(<{self.tag}>, {sorted(self.slots)})"


class MappingProgram:
    """All type programs for one embedding, plus the BFS interpreter."""

    def __init__(self, embedding: SchemaEmbedding, mindef: MinDef,
                 infos: dict, instmap) -> None:
        self.embedding = embedding
        self.source = embedding.source
        self.target = embedding.target
        self.mindef = mindef
        self._infos = infos
        #: the owning InstMap — only used for the per-fragment reference
        #: fallback on documents whose shape the program cannot serve.
        self._instmap = instmap
        self.root_image = embedding.lam[self.source.root]
        self._pad_cache: dict[str, tuple] = {}
        #: (source_type, child-tag signature) -> sparse-concat ops, or
        #: None when that shape must use the reference fallback
        #: (an undeclared edge, where the reference's exact error
        #: behaviour is the contract).  Bounded like the translation
        #: memos: flushed wholesale past the cap.
        self._sparse_cache: dict[tuple[str, tuple[str, ...]],
                                 Optional[tuple]] = {}
        #: fragments served by a sparse-concat (or precompiled empty)
        #: program vs. fragments sent to the reference builder.
        self.sparse_served = 0
        self.reference_fallbacks = 0
        self.programs: dict[str, TypeProgram] = {}
        for source_type in self.source.elements:
            self.programs[source_type] = self._compile_type(source_type)

    # -- compilation -------------------------------------------------------
    def _info(self, key) -> PathInfo:
        info = self._infos.get(key)
        if info is None:
            raise PlanError(f"edge {key} unclassified")
        return info

    def _pad_ops(self, target_type: str) -> tuple:
        """``mindef(target_type)`` flattened into instructions."""
        cached = self._pad_cache.get(target_type)
        if cached is not None:
            return cached
        ops: list[tuple] = []
        # Iterative flatten of the shared mindef template.
        stack: list = [("open", self.mindef.template(target_type))]
        while stack:
            action, node = stack.pop()
            if action == "close":
                ops.append((OP_CLOSE,))
                continue
            if isinstance(node, TextNode):
                ops.append((OP_TEXT, node.value))
                continue
            if not node.children:
                ops.append((OP_LEAF, node.tag))
                continue
            ops.append((OP_OPEN, node.tag))
            stack.append(("close", node))
            for child in reversed(node.children):
                stack.append(("open", child))
        result = tuple(ops)
        self._pad_cache[target_type] = result
        return result

    def _slot_key(self, target_type: str, step, edge):
        """The compile-time twin of ``_FragmentBuilder._slot_key``."""
        kind = edge.kind.value
        if kind == "and":
            production = self.target.production(target_type)
            occ = step.pos if step.pos is not None else 1
            return ("c", production.index_of_occurrence(step.label, occ))
        if kind == "or":
            return ("o",)
        if step.pos is None:
            raise PlanError(f"unpinned star step {step} in a trie path")
        return ("s", step.pos)

    def _insert_path(self, root: _TrieNode, info: PathInfo,
                     payload: tuple) -> None:
        """Add one pre-classified path to the fragment trie, sharing the
        longest existing prefix (the reference ``_walk``)."""
        node = root
        for step, edge in zip(info.path.steps, info.edges):
            if node.payload is not None:
                raise PlanError("path passes through a sibling endpoint")
            key = self._slot_key(node.target_type, step, edge)
            existing = node.slots.get(key)
            if existing is not None:
                if existing.tag != step.label:
                    raise PlanError(
                        f"conflicting OR choices: {existing.tag} vs "
                        f"{step.label}")
                node = existing
                continue
            child = _TrieNode(step.label, step.label)
            node.slots[key] = child
            node = child
        if node.slots or node.payload is not None:
            raise PlanError("endpoint interior to a sibling path")
        node.payload = payload

    # Mutual recursion with _emit_child is bounded by the embedding's
    # longest path (a schema artifact, tens of steps), never by
    # document depth — compilation walks the trie, not the instance.
    # lint: allow-recursion
    def _emit_completed(self, node: _TrieNode, ops: list) -> None:
        """Emit ``node``'s completed, production-ordered children — the
        compile-time twin of ``_FragmentBuilder._complete``."""
        production = self.target.production(node.target_type)
        if isinstance(production, Str):
            # Only reachable for a fragment root with no paths (an
            # Empty source mapped onto a str target): pad the value.
            ops.append((OP_TEXT, DEFAULT_STRING))
            return
        if isinstance(production, Empty):
            return
        if isinstance(production, Concat):
            for index, child_type in enumerate(production.children):
                child = node.slots.get(("c", index))
                if child is None:
                    ops.extend(self._pad_ops(child_type))
                else:
                    self._emit_child(child, ops)
        elif isinstance(production, Disjunction):
            child = node.slots.get(("o",))
            if child is not None:
                self._emit_child(child, ops)
            else:
                choice = self.mindef.default_choice[node.target_type]
                if choice is not None:
                    ops.extend(self._pad_ops(choice))
        elif isinstance(production, Star):
            if node.slots:
                top = max(key[1] for key in node.slots)
                for position in range(1, top + 1):
                    child = node.slots.get(("s", position))
                    if child is None:
                        ops.extend(self._pad_ops(production.child))
                    else:
                        self._emit_child(child, ops)

    def _emit_child(self, node: _TrieNode, ops: list) -> None:
        payload = node.payload
        if payload is not None:
            if payload[0] == "hot":
                ops.append((OP_HOT, node.tag, payload[1]))
                return
            # text holder: the Str path endpoint receives the PCDATA.
            ops.append((OP_OPEN, node.tag))
            ops.append((OP_TEXT_COPY,))
            ops.append((OP_CLOSE,))
            return
        mark = len(ops)
        ops.append((OP_OPEN, node.tag))
        self._emit_completed(node, ops)
        if len(ops) == mark + 1:
            ops[mark] = (OP_LEAF, node.tag)
        else:
            ops.append((OP_CLOSE,))

    def _trie_ops(self, image: str,
                  paths: list[tuple[PathInfo, tuple]]) -> tuple:
        root = _TrieNode(image, image)
        for info, payload in paths:
            self._insert_path(root, info, payload)
        if root.payload is not None:
            # An empty-step path: the image itself is the endpoint.  Only
            # ``path(A, str) = text()`` is valid here (Example 4.2); an
            # empty element path is an invalid embedding — fall back.
            if root.payload != ("text",):
                raise PlanError("empty element path (image is an endpoint)")
            return ((OP_TEXT_COPY,),)
        ops: list[tuple] = []
        self._emit_completed(root, ops)
        return tuple(ops)

    def _compile_type(self, source_type: str) -> TypeProgram:
        image = self.embedding.lam.get(source_type)
        if image is None:
            raise PlanError(f"λ undefined on {source_type}")
        production = self.source.production(source_type)

        if isinstance(production, Str):
            program = TypeProgram("str", image)
            info = self._info((source_type, STR_KEY, 1))
            program.ops = self._trie_ops(image, [(info, ("text",))])
            return program

        if isinstance(production, Empty):
            program = TypeProgram("empty", image)
            program.ops = self._trie_ops(image, [])
            return program

        if isinstance(production, Concat):
            program = TypeProgram("concat", image)
            program.expected = production.children
            paths: list[tuple[PathInfo, tuple]] = []
            seen: dict[str, int] = {}
            for slot, child in enumerate(production.children):
                seen[child] = seen.get(child, 0) + 1
                info = self._info((source_type, child, seen[child]))
                paths.append((info, ("hot", slot)))
            program.ops = self._trie_ops(image, paths)
            return program

        if isinstance(production, Disjunction):
            program = TypeProgram("disj", image)
            for child in production.children:
                info = self._info((source_type, child, 1))
                program.alts[child] = self._trie_ops(
                    image, [(info, ("hot", 0))])
            program.empty_ops = self._trie_ops(image, [])
            return program

        assert isinstance(production, Star)
        program = TypeProgram("star", image)
        # Zero instances: pure mindef completion of the image, the same
        # slots the reference pads — precompiled so empty stars never
        # leave the compiled plane.
        program.empty_ops = self._trie_ops(image, [])
        info = self._info((source_type, production.child, 1))
        if not info.is_star_path():
            raise PlanError(f"{info.path} is not a STAR path")
        carrier = info.carrier_index
        # Head: walk (and complete around) the prefix, leaving the
        # carrier parent open; body: one instance (the suffix trie with
        # the hot endpoint); tail: close back up to the fragment root.
        head: list[tuple] = []
        depth = 0
        node_type = image
        for step in info.path.steps[:carrier]:
            production2 = self.target.production(node_type)
            if not isinstance(production2, Concat):
                raise PlanError("STAR path prefix crosses a non-AND edge")
            occ = step.pos if step.pos is not None else 1
            index = production2.index_of_occurrence(step.label, occ)
            for position, child_type in enumerate(production2.children):
                if position == index:
                    break
                head.extend(self._pad_ops(child_type))
            head.append((OP_OPEN, step.label))
            depth += 1
            node_type = step.label
        if not isinstance(self.target.production(node_type), Star):
            raise PlanError("STAR carrier parent is not a star type")
        # Tail: pads after each opened step, innermost first.
        tail: list[tuple] = []
        node_type = image
        opened: list[tuple[str, int]] = []  # (type, index of opened child)
        for step in info.path.steps[:carrier]:
            production2 = self.target.production(node_type)
            occ = step.pos if step.pos is not None else 1
            opened.append((node_type,
                           production2.index_of_occurrence(step.label, occ)))
            node_type = step.label
        for parent_type, index in reversed(opened):
            # Close the open step node first, then pad the positions
            # after it into the (now current) parent.
            production2 = self.target.production(parent_type)
            tail.append((OP_CLOSE,))
            for position in range(index + 1, len(production2.children)):
                tail.extend(self._pad_ops(production2.children[position]))
        # Body: one star instance — the suffix below the carrier step.
        carrier_step = info.path.steps[carrier]
        suffix_info = _SuffixView(info, carrier)
        body: list[tuple] = []
        if carrier + 1 == len(info.path.steps) and not info.path.text:
            body.append((OP_HOT, carrier_step.label, LOOP_SLOT))
        else:
            instance = _TrieNode(carrier_step.label, carrier_step.label)
            node = instance
            for step, edge in zip(suffix_info.steps, suffix_info.edges):
                key = self._slot_key(node.target_type, step, edge)
                child = _TrieNode(step.label, step.label)
                node.slots[key] = child
                node = child
            node.payload = (("text",) if info.path.text
                            else ("hot", LOOP_SLOT))
            self._emit_child(instance, body)
        program.head_ops = tuple(head)
        program.body_ops = tuple(body)
        program.tail_ops = tuple(tail)
        program.head_depth = carrier
        return program

    # -- sparse-concat variants --------------------------------------------
    def _sparse_ops(self, source_type: str,
                    signature: tuple[str, ...]) -> Optional[tuple]:
        """Compiled ops for a *partial* concat document: the fragment a
        concat node with exactly ``signature`` element children (in
        document order) produces.  Occurrences are counted per tag in
        document order — the reference builder's walk — so missing,
        repeated-but-declared and out-of-order children all compile;
        a child edge the embedding does not declare yields ``None``
        (cached), and the caller replays the reference builder for its
        exact ``EmbeddingError`` bytes.
        """
        key = (source_type, signature)
        cached = self._sparse_cache.get(key, _UNCOMPILED)
        if cached is not _UNCOMPILED:
            return cached
        paths: list[tuple[PathInfo, tuple]] = []
        seen: dict[str, int] = {}
        try:
            for slot, tag in enumerate(signature):
                seen[tag] = seen.get(tag, 0) + 1
                paths.append((self._info((source_type, tag, seen[tag])),
                              ("hot", slot)))
            ops = self._trie_ops(self.programs[source_type].image, paths)
        except PlanError:
            ops = None
        if len(self._sparse_cache) >= SPARSE_CACHE_LIMIT:
            self._sparse_cache.clear()
        self._sparse_cache[key] = ops
        return ops

    def _serve_sparse(self, program: TypeProgram, image: ElementNode,
                      source_node: ElementNode, kids, id_map: dict,
                      push, nxt) -> None:
        """One concat fragment whose shape mismatches the static
        program: run the per-signature sparse variant at compiled
        speed, or fall back to the reference builder when the shape
        cannot compile."""
        ops = self._sparse_ops(source_node.tag,
                               tuple(kid.tag for kid in kids))
        if ops is not None:
            self.sparse_served += 1
            self._run(ops, image, kids, None, None, id_map, push, nxt)
        else:
            self.reference_fallbacks += 1
            self._fallback(image, source_node, id_map, push)

    def sparse_fragment(self, image: ElementNode,
                        source_node: ElementNode, id_map: dict,
                        ) -> Optional[list]:
        """One fragment's hot pairs through the compiled (sparse)
        plane, or ``None`` when only the reference builder can serve
        the shape — the single-fragment twin of :meth:`_serve_sparse`
        used by the generated codecs' fallback splice."""
        program = self.programs.get(source_node.tag)
        if program is None or program.image != image.tag:
            return None
        pairs: list = []
        if program.kind == "concat":
            kids = [c for c in source_node.children
                    if isinstance(c, ElementNode)]
            ops = self._sparse_ops(source_node.tag,
                                   tuple(kid.tag for kid in kids))
            if ops is None:
                return None
            self.sparse_served += 1
            self._run(ops, image, kids, None, None, id_map,
                      pairs.append, _ids.__next__)
            return pairs
        if program.kind == "star":
            kids = [c for c in source_node.children
                    if isinstance(c, ElementNode)]
            if not kids:
                self.sparse_served += 1
                self._run(program.empty_ops, image, (), None, None,
                          id_map, pairs.append, _ids.__next__)
                return pairs
        return None

    # -- interpretation ----------------------------------------------------
    def apply(self, source_root: ElementNode):
        """``σd(T1)`` — byte-identical to the reference InstMap."""
        from repro.core.instmap import MappingResult

        if source_root.tag != self.source.root:
            raise EmbeddingError(
                f"instance root <{source_root.tag}> is not the source root "
                f"<{self.source.root}>")
        nxt = _ids.__next__
        target_root = ElementNode(self.root_image)
        id_map: dict[int, int] = {target_root.node_id: source_root.node_id}
        hot: deque = deque()
        hot.append((target_root, source_root))
        programs = self.programs
        pop = hot.popleft
        push = hot.append
        # The output tree is a large cyclic structure (parent pointers)
        # that is 100% live while being built: generational collections
        # triggered by the allocation burst re-trace it superlinearly
        # for zero reclaim.  Pause collection for the build (restored
        # even on malformed-document errors).
        _pause_gc()
        try:
            self._map_loop(hot, pop, push, programs, id_map, nxt)
        finally:
            _resume_gc()
        return MappingResult(target_root, id_map)

    def _map_loop(self, hot, pop, push, programs, id_map, nxt) -> None:
        while hot:
            image, source_node = pop()
            program = programs.get(source_node.tag)
            if program is None:
                raise EmbeddingError(
                    f"instance element <{source_node.tag}> is not a source "
                    "type of the embedding (document does not conform to "
                    "the source schema)")
            if program.image != image.tag:
                raise EmbeddingError(
                    f"image of <{source_node.tag}> has tag <{image.tag}>, "
                    f"expected λ({source_node.tag}) = {program.image}")
            kind = program.kind
            if kind == "concat":
                kids = [c for c in source_node.children
                        if isinstance(c, ElementNode)]
                if len(kids) == len(program.expected):
                    for kid, expected_tag in zip(kids, program.expected):
                        if kid.tag != expected_tag:
                            self._serve_sparse(program, image, source_node,
                                               kids, id_map, push, nxt)
                            break
                    else:
                        self._run(program.ops, image, kids, None, None,
                                  id_map, push, nxt)
                    continue
                self._serve_sparse(program, image, source_node, kids,
                                   id_map, push, nxt)
            elif kind == "star":
                kids = [c for c in source_node.children
                        if isinstance(c, ElementNode)]
                if kids:
                    self._run_star(program, image, kids, id_map, push, nxt)
                else:
                    # No instances: pure mindef completion of the image,
                    # byte-equal to the reference's padding of the same
                    # slots — precompiled, so empty stars stay compiled.
                    self.sparse_served += 1
                    self._run(program.empty_ops, image, (), None, None,
                              id_map, push, nxt)
            elif kind == "str":
                children = source_node.children
                if not children:
                    self._run(program.ops, image, (), "", None,
                              id_map, push, nxt)
                elif (len(children) == 1
                        and isinstance(children[0], TextNode)):
                    text = children[0]
                    self._run(program.ops, image, (), text.value,
                              text.node_id, id_map, push, nxt)
                else:
                    raise EmbeddingError(
                        f"<{source_node.tag}> has P({source_node.tag}) = str "
                        "but does not contain a single text value")
            elif kind == "disj":
                kids = [c for c in source_node.children
                        if isinstance(c, ElementNode)]
                if kids:
                    chosen = kids[0]
                    ops = program.alts.get(chosen.tag)
                    if ops is None:
                        raise EmbeddingError(
                            f"instance edge ({source_node.tag}, "
                            f"{chosen.tag}, occ 1) is not covered by the "
                            "embedding (document does not conform to the "
                            "source schema)")
                    self._run(ops, image, (chosen,), None, None,
                              id_map, push, nxt)
                else:
                    self._run(program.empty_ops, image, (), None, None,
                              id_map, push, nxt)
            else:  # empty: children (if any) are ignored, as in the paper
                self._run(program.ops, image, (), None, None,
                          id_map, push, nxt)

    def _fallback(self, image: ElementNode, source_node: ElementNode,
                  id_map: dict, push) -> None:
        """Serve one fragment through the reference builder (documents
        whose shape the static program does not cover)."""
        for pair in self._instmap.build_fragment(image, source_node, id_map):
            push(pair)

    def _run(self, ops, root: ElementNode, bind, text_value, text_src,
             id_map: dict, push, nxt, stack: Optional[list] = None) -> None:
        """Interpret one flat instruction sequence below ``root``.

        ``stack`` optionally seeds the open-element stack (the star
        tail replays CLOSE ops against the nodes its head opened).
        """
        parent = root
        children = root.children
        if stack is None:
            stack = []
        for op in ops:
            code = op[0]
            if code == OP_OPEN:
                node = ElementNode.__new__(ElementNode)
                node.node_id = nxt()
                node.parent = parent
                node.tag = op[1]
                node.children = []
                children.append(node)
                stack.append((parent, children))
                parent = node
                children = node.children
            elif code == OP_CLOSE:
                parent, children = stack.pop()
            elif code == OP_LEAF:
                node = ElementNode.__new__(ElementNode)
                node.node_id = nxt()
                node.parent = parent
                node.tag = op[1]
                node.children = []
                children.append(node)
            elif code == OP_HOT:
                node = ElementNode.__new__(ElementNode)
                node.node_id = nxt()
                node.parent = parent
                node.tag = op[1]
                node.children = []
                children.append(node)
                source_child = bind[op[2]]
                id_map[node.node_id] = source_child.node_id
                push((node, source_child))
            elif code == OP_TEXT:
                text = TextNode.__new__(TextNode)
                text.node_id = nxt()
                text.parent = parent
                text.value = op[1]
                children.append(text)
            else:  # OP_TEXT_COPY
                text = TextNode.__new__(TextNode)
                text.node_id = nxt()
                text.parent = parent
                text.value = text_value
                children.append(text)
                if text_src is not None:
                    id_map[text.node_id] = text_src

    def _run_star(self, program: TypeProgram, root: ElementNode, kids,
                  id_map: dict, push, nxt) -> None:
        self._run(program.head_ops, root, (), None, None, id_map, push, nxt)
        # The carrier parent is the innermost node the head left open
        # (always the last child appended at each level).
        depth = program.head_depth
        parent = root
        for _ in range(depth):
            parent = parent.children[-1]
        body = program.body_ops
        for kid in kids:
            self._run(body, parent, (kid,), None, None, id_map, push, nxt)
        # Tail pads/closes replay against the open stack the head
        # created: rebuild the ancestor chain and hand it to _run.
        chain = [root]
        node = root
        for _ in range(depth):
            node = node.children[-1]
            chain.append(node)
        stack = [(ancestor, ancestor.children) for ancestor in chain[:-1]]
        self._run(program.tail_ops, chain[-1], (), None, None,
                  id_map, push, nxt, stack=stack)


class _SuffixView:
    """The (steps, edges) of a STAR path below its carrier step."""

    __slots__ = ("steps", "edges")

    def __init__(self, info: PathInfo, carrier: int) -> None:
        self.steps = info.path.steps[carrier + 1:]
        self.edges = info.edges[carrier + 1:]


# -- compiled inverse ---------------------------------------------------------

class _InverseEdge:
    """One pre-resolved ``path(A, B)`` for the inverse walk."""

    __slots__ = ("child_type", "steps", "carrier_label", "prefix", "suffix",
                 "path_str", "prefix_str")

    def __init__(self, child_type: str, info: PathInfo) -> None:
        self.child_type = child_type
        #: (label, zero-based same-tag index) per step
        self.steps = tuple(
            (step.label, (step.pos or 1) - 1) for step in info.path.steps)
        self.path_str = str(info.path)
        self.carrier_label = None
        self.prefix = ()
        self.suffix = ()
        self.prefix_str = ""


def _walk_steps(node: ElementNode, steps) -> Optional[ElementNode]:
    """The reference ``_walk`` without intermediate list building."""
    current = node
    for label, index in steps:
        found = None
        remaining = index
        for child in current.children:
            if isinstance(child, ElementNode) and child.tag == label:
                if remaining == 0:
                    found = child
                    break
                remaining -= 1
        if found is None:
            return None
        current = found
    return current


class InverseProgram:
    """Compiled ``σd⁻¹``: per-type step templates, iterative walk.

    Byte-identical to :func:`repro.core.inverse.run_invert` (the
    reference), including error classes and strict-mode ambiguity
    checks; exercised by the fast-path equivalence suite.
    """

    def __init__(self, embedding: SchemaEmbedding, infos: dict) -> None:
        self.embedding = embedding
        self.source = embedding.source
        self.table: dict[str, tuple[str, tuple]] = {}
        for source_type, production in self.source.elements.items():
            if isinstance(production, Str):
                info = infos[(source_type, STR_KEY, 1)]
                self.table[source_type] = (
                    "str", (_InverseEdge(STR_KEY, info),))
            elif isinstance(production, Empty):
                self.table[source_type] = ("empty", ())
            elif isinstance(production, Concat):
                edges = []
                seen: dict[str, int] = {}
                for child_type in production.children:
                    seen[child_type] = seen.get(child_type, 0) + 1
                    info = infos[(source_type, child_type, seen[child_type])]
                    edges.append(_InverseEdge(child_type, info))
                self.table[source_type] = ("concat", tuple(edges))
            elif isinstance(production, Disjunction):
                edges = [
                    _InverseEdge(child_type,
                                 infos[(source_type, child_type, 1)])
                    for child_type in production.children]
                self.table[source_type] = (
                    "disj", (tuple(edges), production.optional))
            elif isinstance(production, Star):
                info = infos[(source_type, production.child, 1)]
                edge = _InverseEdge(production.child, info)
                carrier = info.carrier_index
                edge.prefix = edge.steps[:carrier]
                edge.prefix_str = str(info.path.prefix(carrier))
                edge.carrier_label = info.path.steps[carrier].label
                edge.suffix = edge.steps[carrier + 1:]
                self.table[source_type] = ("star", edge)

    def apply(self, target_root: ElementNode,
              strict: bool = True) -> ElementNode:
        if target_root.tag != self.embedding.target.root:
            raise InverseError(
                f"document root <{target_root.tag}> is not the target root "
                f"<{self.embedding.target.root}>")
        root = ElementNode(self.source.root)
        # Preorder DFS with an explicit stack: children are appended to
        # their (already created) parent in visit order, which preserves
        # the reference's production-order child lists.
        stack: list[tuple[ElementNode, str, ElementNode]] = [
            (target_root, self.source.root, root)]
        table = self.table
        while stack:
            image, source_type, node = stack.pop()
            kind, payload = table[source_type]
            if kind == "str":
                edge = payload[0]
                holder = _walk_steps(image, edge.steps)
                if holder is None:
                    raise InverseError(
                        f"text path {edge.path_str} missing below "
                        f"<{image.tag}> (image of {source_type})")
                value = holder.child_text()
                if value is None and holder.children:
                    raise InverseError(
                        f"text path {edge.path_str} endpoint "
                        f"<{holder.tag}> holds element content "
                        f"(image of {source_type})")
                if value:
                    node.append(TextNode(value))
            elif kind == "empty":
                pass
            elif kind == "concat":
                pending = []
                for edge in payload:
                    target = _walk_steps(image, edge.steps)
                    if target is None:
                        raise InverseError(
                            f"AND path {edge.path_str} missing below "
                            f"<{image.tag}> (image of {source_type})")
                    child = ElementNode(edge.child_type)
                    node.append(child)
                    pending.append((target, edge.child_type, child))
                stack.extend(reversed(pending))
            elif kind == "disj":
                edges, optional = payload
                matches = []
                for edge in edges:
                    target = _walk_steps(image, edge.steps)
                    if target is not None:
                        matches.append((edge.child_type, target))
                        if not strict:
                            break
                if len(matches) > 1:
                    raise InverseError(
                        f"ambiguous disjunction at image of {source_type}: "
                        f"{[m[0] for m in matches]} all present")
                if not matches:
                    if not optional:
                        raise InverseError(
                            f"no alternative of {source_type} present below "
                            f"<{image.tag}>")
                else:
                    child_type, target = matches[0]
                    child = ElementNode(child_type)
                    node.append(child)
                    stack.append((target, child_type, child))
            else:  # star
                edge = payload
                parent = _walk_steps(image, edge.prefix)
                if parent is None:
                    raise InverseError(
                        f"STAR path prefix {edge.prefix_str} missing "
                        f"below <{image.tag}> (image of {source_type})")
                label = edge.carrier_label
                pending = []
                for instance in parent.children:
                    if not isinstance(instance, ElementNode) \
                            or instance.tag != label:
                        continue
                    target = _walk_steps(instance, edge.suffix)
                    if target is None:
                        raise InverseError(
                            f"STAR path suffix missing under <{label}> "
                            f"instance (image of {source_type})")
                    child = ElementNode(edge.child_type)
                    node.append(child)
                    pending.append((target, edge.child_type, child))
                stack.extend(reversed(pending))
        return root
