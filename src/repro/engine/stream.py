"""Streaming document plane — bounded-memory ``σd`` over parser events.

``MappingProgram.apply`` materialises the whole source tree and the
whole target tree before the first output byte, so mapping memory is
O(document).  This module drives the *same* compiled per-type programs
straight from SAX-style parser events (:func:`repro.xtree.parser.
iter_events` / ``iter_events_path``) and emits serialized output
incrementally:

* **Star spine** — a source element whose program kind is ``star``
  *streams*: its image's head (open tags + mindef pads before the
  carrier) is emitted as soon as the first star instance starts, each
  instance is emitted as it completes, and the tail (closes + trailing
  pads) on the end event.  Star-of-star documents stream end-to-end;
  peak memory is bounded by the largest single fragment, never the
  document.
* **Buffered fragments** — ``concat``/``disj``/``str`` shapes buffer
  only their enclosing source fragment, then run through the *exact*
  interpreter machinery (``MappingProgram._run``/``_map_loop``,
  including its per-fragment reference ``_FragmentBuilder`` fallback),
  so every byte — happy path, mindef padding, malformed-document
  errors — is identical to ``InstMap.apply`` by construction.  The
  reference path is never bypassed, only fed smaller inputs.
* **Ignored subtrees** — children of an ``empty``-typed source element
  are skipped with a depth counter (the interpreter never looks at
  them), so even garbage subtrees below Empty types cost O(depth).

Documents whose *root* program is not a star (or whose embedding
compiled onto the reference path) fall back to whole-document
buffering: parse from the same event stream, ``InstMap.apply``,
serialize — byte-identical, memory O(document), never wrong.

Error contract: malformed XML raises the same ``XMLParseError``
(message/line/column) as ``parse_xml`` on the same input; malformed
instances raise the same ``EmbeddingError`` messages as the
interpreter.  One caveat: the interpreter surfaces instance errors in
BFS order over hot fragments while the streamer surfaces them in
document order — for a document with a *single* defect (the tested
contract) the raised error is identical.  :func:`stream_map_to_path`
writes through a temp file + ``os.replace`` so a mid-stream error
leaves no partial output.
"""
# lint: stream-plane

from __future__ import annotations

import os
import tempfile
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from repro.core.errors import EmbeddingError
from repro.core.instmap import InstMap
from repro.engine.plan import (
    LOOP_SLOT,
    OP_HOT,
    MappingProgram,
    TypeProgram,
    _pause_gc,
    _resume_gc,
)
from repro.xtree.nodes import ElementNode, TextNode
from repro.xtree.nodes import _id_counter as _ids
from repro.xtree.parser import iter_events, iter_events_path
from repro.xtree.serialize import iter_serialized


@dataclass
class StreamStats:
    """What the streamer did with one document."""

    #: star frames that streamed (head/instances/tail emitted live)
    frames_streamed: int = 0
    #: source fragments served through the buffered interpreter path
    fragments_buffered: int = 0
    #: subtrees below Empty-typed elements skipped without buffering
    subtrees_skipped: int = 0
    #: the root shape could not stream: whole document buffered
    whole_document: bool = False
    #: output size in characters
    chars_out: int = 0


def _sever(root) -> None:
    """Break parent/children cycles so refcounting frees the fragment
    immediately (collection is paused during a mapping burst)."""
    stack = [root]
    while stack:
        node = stack.pop()
        node.parent = None
        children = getattr(node, "children", None)
        if children:
            stack.extend(children)
            node.children = []


class _TreeCapture:
    """Rebuild one element subtree from its events (minus the initial
    start event, which the caller consumed to dispatch)."""

    __slots__ = ("root", "stack")

    def __init__(self, tag: str) -> None:
        self.root = ElementNode(tag)
        self.stack = [self.root]

    def feed(self, event) -> bool:
        kind = event[0]
        if kind == "start":
            node = ElementNode(event[1])
            self.stack[-1].append(node)
            self.stack.append(node)
        elif kind == "text":
            self.stack[-1].append(TextNode(event[1]))
        else:
            self.stack.pop()
            return not self.stack
        return False


class _StarSeg:
    """A star program's head/tail, segmented for incremental emission.

    Materialised once per (program, source type) by running the very
    ``head_ops``/``tail_ops`` the interpreter runs, then slicing the
    result around the open chain — the emitted bytes cannot drift from
    ``_run_star`` because they come from the same instructions.
    """

    __slots__ = ("open_tags", "pre_pads", "post_pads", "carrier_tag",
                 "kid_rel_depth")

    def __init__(self, mp: MappingProgram, program: TypeProgram) -> None:
        dummy = ElementNode(program.image)
        nxt = _ids.__next__
        mp._run(program.head_ops, dummy, (), None, None, {}, None, nxt)
        chain = [dummy]
        node = dummy
        for _ in range(program.head_depth):
            node = node.children[-1]
            chain.append(node)
        # Before the tail runs, the chain child is the last child at
        # every level; everything before it is a completed pad subtree.
        chain_index = [len(level.children) - 1 for level in chain[:-1]]
        self.pre_pads = [tuple(level.children[:-1]) for level in chain[:-1]]
        stack = [(ancestor, ancestor.children) for ancestor in chain[:-1]]
        mp._run(program.tail_ops, chain[-1], (), None, None, {}, None, nxt,
                stack=stack)
        self.post_pads = [
            tuple(level.children[index + 1:])
            for level, index in zip(chain[:-1], chain_index)]
        self.open_tags = tuple(n.tag for n in chain)
        self.carrier_tag = self.open_tags[-1]
        self.kid_rel_depth = len(self.open_tags)


def _segments(mp: MappingProgram, tag: str) -> _StarSeg:
    cache = getattr(mp, "_stream_segs", None)
    if cache is None:
        cache = {}
        mp._stream_segs = cache
    seg = cache.get(tag)
    if seg is None:
        seg = _StarSeg(mp, mp.programs[tag])
        cache[tag] = seg
    return seg


def _empty_fragment(mp: MappingProgram, tag: str) -> ElementNode:
    """The static image fragment of an Empty-typed source element."""
    cache = getattr(mp, "_stream_empties", None)
    if cache is None:
        cache = {}
        mp._stream_empties = cache
    fragment = cache.get(tag)
    if fragment is None:
        program = mp.programs[tag]
        fragment = ElementNode(program.image)
        mp._run(program.ops, fragment, (), None, None, {}, None,
                _ids.__next__)
        cache[tag] = fragment
    return fragment


class _StarFrame:
    """One streaming star-typed source element currently open."""

    __slots__ = ("tag", "program", "seg", "depth", "kid_depth", "kids",
                 "head_emitted", "direct", "endpoint")

    def __init__(self, mp: MappingProgram, tag: str, program: TypeProgram,
                 depth: int) -> None:
        self.tag = tag
        self.program = program
        self.seg = _segments(mp, tag)
        self.depth = depth
        self.kid_depth = depth + self.seg.kid_rel_depth
        self.kids = 0
        self.head_emitted = False
        body = program.body_ops
        self.direct = (len(body) == 1 and body[0][0] == OP_HOT
                       and body[0][2] == LOOP_SLOT)
        self.endpoint = body[0][1] if self.direct else None


def _pad(indent: Optional[int], depth: int) -> str:
    return "" if indent is None else " " * (indent * depth)


def _emit_head(frame: _StarFrame, indent: Optional[int]):
    seg = frame.seg
    depth = frame.depth
    yield f"{_pad(indent, depth)}<{seg.open_tags[0]}>"
    for level in range(len(seg.open_tags) - 1):
        for pad_tree in seg.pre_pads[level]:
            yield from iter_serialized(pad_tree, indent,
                                       depth=depth + level + 1)
        yield f"{_pad(indent, depth + level + 1)}<{seg.open_tags[level + 1]}>"
    frame.head_emitted = True


def _emit_tail(frame: _StarFrame, indent: Optional[int]):
    seg = frame.seg
    depth = frame.depth
    for level in range(len(seg.open_tags) - 2, -1, -1):
        yield (f"{_pad(indent, depth + level + 1)}"
               f"</{seg.open_tags[level + 1]}>")
        for pad_tree in seg.post_pads[level]:
            yield from iter_serialized(pad_tree, indent,
                                       depth=depth + level + 1)
    yield f"{_pad(indent, depth)}</{seg.open_tags[0]}>"


def _emit_zero_kids(instmap: InstMap, frame: _StarFrame,
                    indent: Optional[int]):
    # No star instances: the interpreter serves the whole fragment
    # through the reference builder (pure mindef completion) — do the
    # very same.  Text children are ignored by both paths.
    image = ElementNode(frame.program.image)
    instmap.build_fragment(image, ElementNode(frame.tag), {})
    yield from iter_serialized(image, indent, depth=frame.depth)
    _sever(image)


def _emit_buffered(mp: MappingProgram, frame: _StarFrame,
                   kid_root: ElementNode, indent: Optional[int],
                   stats: StreamStats):
    # One star instance whose own shape does not stream: run the
    # instance through the interpreter's body instructions + BFS loop
    # against a detached carrier parent, then serialize the result at
    # the carrier's depth.  Bytes match _run_star on the same kid by
    # construction (same functions, same inputs).
    stats.fragments_buffered += 1
    dummy = ElementNode(frame.seg.carrier_tag)
    id_map: dict[int, int] = {}
    local: deque = deque()
    nxt = _ids.__next__
    mp._run(frame.program.body_ops, dummy, (kid_root,), None, None,
            id_map, local.append, nxt)
    mp._map_loop(local, local.popleft, local.append, mp.programs,
                 id_map, nxt)
    for child in dummy.children:
        yield from iter_serialized(child, indent, depth=frame.kid_depth)
    _sever(dummy)
    _sever(kid_root)


def _stream_pieces(instmap: InstMap, events: Iterable, indent: Optional[int],
                   stats: StreamStats) -> Iterator[str]:
    it = iter(events)
    first = next(it)  # ("start", root_tag); parse errors propagate
    root_tag = first[1]
    if root_tag != instmap.source.root:
        raise EmbeddingError(
            f"instance root <{root_tag}> is not the source root "
            f"<{instmap.source.root}>")
    mp: Optional[MappingProgram] = instmap._program
    if mp is None or mp.programs[root_tag].kind != "star":
        # Non-star root (or reference-path embedding): buffer the whole
        # document and serve through InstMap.apply unchanged.
        stats.whole_document = True
        capture = _TreeCapture(root_tag)
        for event in it:
            if capture.feed(event):
                break
        for _ in it:  # surface trailing-content parse errors pre-output
            pass
        result = instmap.apply(capture.root)
        yield from iter_serialized(result.tree, indent)
        _sever(capture.root)
        _sever(result.tree)
        return

    frames = [_StarFrame(mp, root_tag, mp.programs[root_tag], 0)]
    stats.frames_streamed += 1
    capture: Optional[_TreeCapture] = None
    skip_depth = 0
    _pause_gc()
    try:
        for event in it:
            kind = event[0]
            if skip_depth:
                if kind == "start":
                    skip_depth += 1
                elif kind == "end":
                    skip_depth -= 1
                continue
            if capture is not None:
                if capture.feed(event):
                    yield from _emit_buffered(mp, frames[-1], capture.root,
                                              indent, stats)
                    capture = None
                continue
            if kind == "start":
                frame = frames[-1]
                if not frame.head_emitted:
                    yield from _emit_head(frame, indent)
                frame.kids += 1
                tag = event[1]
                if frame.direct:
                    program = mp.programs.get(tag)
                    if program is None:
                        raise EmbeddingError(
                            f"instance element <{tag}> is not a source "
                            "type of the embedding (document does not "
                            "conform to the source schema)")
                    if program.image != frame.endpoint:
                        raise EmbeddingError(
                            f"image of <{tag}> has tag <{frame.endpoint}>, "
                            f"expected λ({tag}) = {program.image}")
                    if program.kind == "star":
                        frames.append(_StarFrame(mp, tag, program,
                                                 frame.kid_depth))
                        stats.frames_streamed += 1
                        continue
                    if program.kind == "empty":
                        # Children of Empty types are ignored by the
                        # interpreter: emit the static fragment, skip.
                        stats.subtrees_skipped += 1
                        yield from iter_serialized(
                            _empty_fragment(mp, tag), indent,
                            depth=frame.kid_depth)
                        skip_depth = 1
                        continue
                capture = _TreeCapture(tag)
            elif kind == "end":
                frame = frames.pop()
                if frame.kids == 0:
                    yield from _emit_zero_kids(instmap, frame, indent)
                else:
                    yield from _emit_tail(frame, indent)
                if not frames:
                    break
            # text events at a star level are ignored (the interpreter
            # maps element children only)
        for _ in it:  # raise on trailing content after the root
            pass
    finally:
        _resume_gc()


def _events_for(text: Optional[str], path) -> Iterable:
    if (text is None) == (path is None):
        raise ValueError("stream_map: pass exactly one of text= or path=")
    if text is not None:
        return iter_events(text)
    return iter_events_path(path)


def iter_mapped(instmap: InstMap, *, text: Optional[str] = None,
                path=None, indent: Optional[int] = 2,
                chunk_pieces: int = 256,
                stats: Optional[StreamStats] = None) -> Iterator[str]:
    """Yield ``σd(document)`` as serialized text chunks.

    Concatenating the chunks equals ``to_string(instmap.apply(...)
    .tree, indent)`` byte for byte.  ``stats`` (optional) is filled in
    as the stream progresses.
    """
    if stats is None:
        stats = StreamStats()
    joiner = "\n" if indent is not None else ""
    buf: list[str] = []
    first = True
    for piece in _stream_pieces(instmap, _events_for(text, path), indent,
                                stats):
        if first:
            first = False
        else:
            buf.append(joiner)
        buf.append(piece)
        if len(buf) >= 2 * chunk_pieces:
            chunk = "".join(buf)
            stats.chars_out += len(chunk)
            buf.clear()
            yield chunk
    if buf:
        chunk = "".join(buf)
        stats.chars_out += len(chunk)
        yield chunk


def stream_map(instmap: InstMap, *, text: Optional[str] = None, path=None,
               write: Callable[[str], object],
               indent: Optional[int] = 2) -> StreamStats:
    """Map a document and push the serialized output through ``write``.

    The ``write`` callback receives text chunks as they are produced;
    on a malformed document a chunk prefix may already have been
    written when the error raises — use :func:`stream_map_to_path` for
    all-or-nothing file output.
    """
    stats = StreamStats()
    for chunk in iter_mapped(instmap, text=text, path=path, indent=indent,
                             stats=stats):
        write(chunk)
    return stats


def stream_map_to_path(instmap: InstMap, out_path, *,
                       text: Optional[str] = None, path=None,
                       indent: Optional[int] = 2) -> StreamStats:
    """Stream-map into ``out_path`` atomically (temp file +
    ``os.replace``): a mid-document error leaves no partial output."""
    out_path = os.fspath(out_path)
    directory = os.path.dirname(out_path) or "."
    handle = tempfile.NamedTemporaryFile(
        "w", dir=directory, prefix=".repro-stream-", suffix=".tmp",
        delete=False)
    try:
        with handle:
            stats = stream_map(instmap, text=text, path=path,
                               write=handle.write, indent=indent)
            if indent is not None:
                handle.write("\n")
        os.replace(handle.name, out_path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return stats
