"""Schema-evolution workloads: version bumps with known-good answers.

Each :class:`EvolutionCase` is one realistic schema bump over a
library schema — a *rename* (types change names, content models
don't), an *extend* (new optional-by-default leaf fields appended), a
*restructure* (consecutive fields regrouped under a fresh wrapper
type) or a *break* (a field dropped outright, so no
information-preserving embedding exists) — together with a stored
query workload and the verdict :func:`repro.evolution.evolve` must
return for every query.  Tests assert the expected verdicts exactly;
:mod:`benchmarks.bench_evolution` scales the same mutations up with
:func:`scaled_case` and checks verdict identity across the direct
engine call, the single daemon and the pre-fork fleet.

Mutations carry their ground-truth embedding (built from identity
paths plus the mutation's own overrides), so cases exercise the
verdict pipeline rather than the embedding search; the *break* case
deliberately has none.
"""
# lint: determinism-plane

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.embedding import SchemaEmbedding, build_embedding
from repro.dtd.model import DTD, Concat, Disjunction, Star, Str
from repro.workloads.library import SCHEMA_LIBRARY
from repro.workloads.queries import random_queries

# The verdict taxonomy, mirrored literally: the workloads plane sits
# below the serving layers and must not import repro.evolution (tests
# assert these match the canonical constants there).
STILL_VALID = "still-valid"
TRANSLATABLE = "translatable"
BROKEN = "broken"


@dataclass(frozen=True)
class Mutation:
    """One schema bump with its ground-truth embedding (when one
    exists — the *break* kind has none by construction)."""

    kind: str
    old: DTD
    new: DTD
    embedding: Optional[SchemaEmbedding]


@dataclass(frozen=True)
class EvolutionCase:
    """A mutation plus a stored workload and its expected verdicts."""

    name: str
    mutation: Mutation
    queries: tuple[str, ...]
    #: query → the verdict :func:`repro.evolution.evolve` must return.
    expected: dict

    @property
    def old(self) -> DTD:
        return self.mutation.old

    @property
    def new(self) -> DTD:
        return self.mutation.new

    @property
    def embedding(self) -> Optional[SchemaEmbedding]:
        return self.mutation.embedding


def identity_paths(schema: DTD, lam: dict,
                   overrides: Optional[dict] = None) -> dict:
    """The path table of the structure-preserving embedding: every
    child reached by its (λ-renamed) label, duplicate concat children
    position-qualified, ``overrides`` replacing individual entries
    (how restructure mutations reroute members through their wrapper).
    """
    paths: dict = {}
    for element_type in schema.types:
        production = schema.production(element_type)
        if isinstance(production, Str):
            paths[(element_type, "str")] = "text()"
        elif isinstance(production, Concat):
            totals: dict[str, int] = {}
            for child in production.children:
                totals[child] = totals.get(child, 0) + 1
            seen: dict[str, int] = {}
            for child in production.children:
                seen[child] = seen.get(child, 0) + 1
                step = lam.get(child, child)
                if totals[child] > 1:
                    step = f"{step}[position()={seen[child]}]"
                paths[(element_type, child, seen[child])] = step
        elif isinstance(production, Disjunction):
            for child in production.children:
                paths[(element_type, child)] = lam.get(child, child)
        elif isinstance(production, Star):
            child = production.child
            paths[(element_type, child)] = lam.get(child, child)
    if overrides:
        paths.update(overrides)
    return paths


def rename_mutation(old: DTD, mapping: dict,
                    name: Optional[str] = None) -> Mutation:
    """Types change names, content models stay — the classic
    compatibility-preserving bump.  Queries naming a renamed type are
    ``translatable``; queries over untouched regions ``still-valid``.
    """
    new = old.renamed(mapping, name=name or f"{old.name}-v2")
    lam = {t: mapping.get(t, t) for t in old.types}
    embedding = build_embedding(old, new, lam, identity_paths(old, lam))
    embedding.check()
    return Mutation("rename", old, new, embedding)


def extend_mutation(old: DTD, element_type: str,
                    extra: Sequence[str],
                    name: Optional[str] = None) -> Mutation:
    """New string leaves appended to one concat production — mapped
    documents gain default-completed fields, so every old query stays
    ``still-valid``."""
    production = old.production(element_type)
    if not isinstance(production, Concat):
        raise ValueError(f"extend_mutation needs a concat production, "
                         f"{element_type!r} is "
                         f"{type(production).__name__}")
    elements = dict(old.elements)
    for leaf in extra:
        if leaf in elements:
            raise ValueError(f"extend_mutation: {leaf!r} already exists")
        elements[leaf] = Str()
    elements[element_type] = Concat(production.children + tuple(extra))
    new = DTD(elements, old.root, name or f"{old.name}-v2")
    lam = {t: t for t in old.types}
    embedding = build_embedding(old, new, lam, identity_paths(old, lam))
    embedding.check()
    return Mutation("extend", old, new, embedding)


def restructure_mutation(old: DTD, parent: str, group: str,
                         members: Sequence[str],
                         name: Optional[str] = None) -> Mutation:
    """A consecutive run of one concat's children regrouped under a
    fresh wrapper type — queries stepping through a member become
    ``translatable`` (the wrapper step is spliced in)."""
    production = old.production(parent)
    if not isinstance(production, Concat):
        raise ValueError(f"restructure_mutation needs a concat "
                         f"production, {parent!r} is "
                         f"{type(production).__name__}")
    members = tuple(members)
    index = production.children.index(members[0])
    if production.children[index:index + len(members)] != members:
        raise ValueError(f"restructure_mutation: {members!r} is not a "
                         f"consecutive run of {parent!r}'s children")
    if group in old.elements:
        raise ValueError(f"restructure_mutation: {group!r} already "
                         "exists")
    elements = dict(old.elements)
    elements[group] = Concat(members)
    elements[parent] = Concat(production.children[:index] + (group,)
                              + production.children[index + len(members):])
    new = DTD(elements, old.root, name or f"{old.name}-v2")
    lam = {t: t for t in old.types}
    overrides = {(parent, member, 1): f"{group}/{member}"
                 for member in members}
    embedding = build_embedding(old, new, lam,
                                identity_paths(old, lam, overrides))
    embedding.check()
    return Mutation("restructure", old, new, embedding)


def break_mutation(old: DTD, parent: str, dropped: str,
                   name: Optional[str] = None) -> Mutation:
    """One field dropped outright — no information-preserving
    embedding exists, so the whole workload comes back ``broken`` with
    reason ``no-embedding``."""
    production = old.production(parent)
    if not isinstance(production, Concat) or \
            dropped not in production.children:
        raise ValueError(f"break_mutation: {dropped!r} is not a concat "
                         f"child of {parent!r}")
    elements = dict(old.elements)
    elements[parent] = Concat(tuple(c for c in production.children
                                    if c != dropped))
    referenced = set()
    for prod in elements.values():
        if isinstance(prod, (Concat, Disjunction)):
            referenced.update(prod.children)
        elif isinstance(prod, Star):
            referenced.add(prod.child)
    if dropped not in referenced:
        del elements[dropped]
    new = DTD(elements, old.root, name or f"{old.name}-v2")
    return Mutation("break", old, new, None)


def evolution_cases() -> list[EvolutionCase]:
    """The curated bumps with known-good expected verdicts.

    Queries are root-relative XR (the first step matches children of
    the root element), matching the translator's convention.
    """
    mondial = SCHEMA_LIBRARY["mondial"]()
    orders = SCHEMA_LIBRARY["orders"]()
    cases = [
        EvolutionCase(
            name="mondial-rename",
            mutation=rename_mutation(
                mondial, {"cname": "country_name",
                          "population": "inhabitants"}),
            queries=("country/cname/text()",
                     "country/capital/text()",
                     "country/provinces/province/prname/text()",
                     "///"),
            expected={"country/cname/text()": TRANSLATABLE,
                      "country/capital/text()": STILL_VALID,
                      "country/provinces/province/prname/text()":
                          STILL_VALID,
                      "///": BROKEN}),
        EvolutionCase(
            name="orders-extend",
            mutation=extend_mutation(orders, "product",
                                     ("weight", "origin")),
            queries=("order/lines/line/qty/text()",
                     "catalog/electronics/product/prodname/text()"),
            expected={"order/lines/line/qty/text()": STILL_VALID,
                      "catalog/electronics/product/prodname/text()":
                          STILL_VALID}),
        EvolutionCase(
            name="mondial-restructure",
            mutation=restructure_mutation(
                mondial, "country", "facts", ("cname", "capital")),
            queries=("country/cname/text()",
                     "country/provinces/province/prname/text()"),
            expected={"country/cname/text()": TRANSLATABLE,
                      "country/provinces/province/prname/text()":
                          STILL_VALID}),
        EvolutionCase(
            name="mondial-break",
            mutation=break_mutation(mondial, "country", "population"),
            queries=("country/cname/text()",
                     "country/population/text()"),
            expected={"country/cname/text()": BROKEN,
                      "country/population/text()": BROKEN}),
    ]
    return cases


def scaled_case(count: int, seed: int = 0) -> EvolutionCase:
    """A rename bump over mondial with ``count`` generated queries —
    the benchmark's scaling knob.  No per-query expectation (the
    generator mixes touched and untouched regions); determinism of the
    full verdict report is the asserted property."""
    mutation = rename_mutation(
        SCHEMA_LIBRARY["mondial"](),
        {"cname": "country_name", "population": "inhabitants",
         "prname": "province_name"})
    queries = tuple(str(query) for query in
                    random_queries(mutation.old, count, seed=seed))
    return EvolutionCase(name=f"mondial-rename-{count}",
                         mutation=mutation, queries=queries, expected={})
