"""Schemas, noise models and query workloads for tests and benchmarks.

* :mod:`repro.workloads.library` — the paper's Fig. 1 school example
  (with the σ1/σ2 embeddings of Examples 4.2/4.9), the five Fig. 3
  validity scenarios, and a library of realistic DTDs modelled on the
  kinds of sources the VLDB'05 study used (bibliographies, auctions,
  geographic and genealogy data, …);
* :mod:`repro.workloads.noise` — the *expansion* generator (derive a
  structurally richer target with a known ground-truth embedding) and
  the similarity-matrix noise model of the accuracy experiments;
* :mod:`repro.workloads.synthetic` — random consistent DTDs of a given
  size (scalability experiments, property tests);
* :mod:`repro.workloads.queries` — random XR query generation over a
  schema (query-preservation and translation experiments);
* :mod:`repro.workloads.evolution` — schema version bumps (rename /
  extend / restructure / break mutations of library schemas) with
  known-good expected verdicts for the evolution service.
"""

from repro.workloads.evolution import (
    EvolutionCase,
    Mutation,
    break_mutation,
    evolution_cases,
    extend_mutation,
    rename_mutation,
    restructure_mutation,
    scaled_case,
)
from repro.workloads.library import (
    SCHEMA_LIBRARY,
    SchoolExample,
    fig3_scenarios,
    school_example,
)
from repro.workloads.noise import Expansion, expand_schema, noisy_att
from repro.workloads.synthetic import random_dtd
from repro.workloads.queries import random_queries

__all__ = [
    "EvolutionCase",
    "Expansion",
    "Mutation",
    "SCHEMA_LIBRARY",
    "break_mutation",
    "evolution_cases",
    "extend_mutation",
    "rename_mutation",
    "restructure_mutation",
    "scaled_case",
    "SchoolExample",
    "expand_schema",
    "fig3_scenarios",
    "noisy_att",
    "random_dtd",
    "random_queries",
    "school_example",
]
