"""Target expansion and similarity noise — the VLDB'05 experiment setup.

The paper's experimental study "map[s] schemas taken from real-life and
benchmark sources to copies of these schemas with varying amounts of
introduced noise".  Two generators reproduce that setup:

* :func:`expand_schema` — derive from a source DTD a structurally
  *richer* target with a known ground-truth embedding: every source
  edge may be stretched into a wrapper chain (edge → path, the essence
  of schema embedding), junk siblings/alternatives are added (the
  "more general and thus more complex" target of the paper's
  motivation), and types may be renamed;
* :func:`noisy_att` — perturb the ground-truth similarity matrix:
  with probability ``noise`` per source type, spurious candidate
  matches are added and the true match may be degraded.  This is the
  ambiguity knob of the accuracy experiment (E12 in DESIGN.md): at
  noise 0 the matrix is unambiguous (polynomial case, Section 5.2); as
  noise grows the heuristics must search.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.embedding import SchemaEmbedding, build_embedding
from repro.core.similarity import SimilarityMatrix
from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    Production,
    Star,
    Str,
)
from repro.xpath.paths import PathStep, XRPath


@dataclass
class Expansion:
    """A generated target with its ground-truth embedding."""

    source: DTD
    target: DTD
    embedding: SchemaEmbedding

    @property
    def lam(self) -> dict[str, str]:
        return self.embedding.lam


class _Expander:
    def __init__(self, source: DTD, seed: int, wrap_max: int,
                 junk_prob: float, rename: bool) -> None:
        self.source = source
        self.rng = random.Random(seed)
        self.wrap_max = wrap_max
        self.junk_prob = junk_prob
        self.rename = rename
        self.elements: dict[str, Production] = {}
        self._fresh = 0
        self.lam = {t: (f"{t}_t" if rename else t) for t in source.types}
        self.paths: dict[tuple[str, str], str] = {}

    # ------------------------------------------------------------------
    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    def _junk_type(self) -> str:
        """A fresh padding type with a rank-0 production."""
        name = self.fresh("junk")
        roll = self.rng.random()
        if roll < 0.4:
            self.elements[name] = Str()
        elif roll < 0.6:
            self.elements[name] = Empty()
        elif roll < 0.8:
            leaf = self.fresh("junkleaf")
            self.elements[leaf] = Str()
            self.elements[name] = Star(leaf)
        else:
            leaf = self.fresh("junkleaf")
            self.elements[leaf] = Str()
            self.elements[name] = Concat((leaf,))
        return name

    def _with_junk(self, children: list[str]) -> tuple[str, ...]:
        """Intersperse junk siblings into a concatenation."""
        out: list[str] = []
        for child in children:
            if self.rng.random() < self.junk_prob:
                out.append(self._junk_type())
            out.append(child)
        if self.rng.random() < self.junk_prob:
            out.append(self._junk_type())
        return tuple(out)

    def _chain(self, length: int, endpoint: str, prefix: str) -> tuple[str, list[str]]:
        """Build ``w1 → w2 → … → endpoint``; return (w1, step labels)."""
        if length <= 0:
            return endpoint, [endpoint]
        head = self.fresh(prefix)
        steps = [head]
        current = head
        for index in range(1, length):
            nxt = self.fresh(prefix)
            self.elements[current] = Concat(self._with_junk([nxt]))
            steps.append(nxt)
            current = nxt
        self.elements[current] = Concat(self._with_junk([endpoint]))
        steps.append(endpoint)
        return head, steps

    def _wrap_length(self) -> int:
        return self.rng.randint(0, self.wrap_max)

    # ------------------------------------------------------------------
    def expand_type(self, source_type: str) -> None:
        image = self.lam[source_type]
        production = self.source.production(source_type)

        if isinstance(production, Str):
            length = self._wrap_length()
            if length == 0:
                self.elements[image] = Str()
                self.paths[(source_type, "str")] = "text()"
            else:
                head, steps = self._chain(length, self.fresh("strleaf"), "w")
                self.elements[steps[-1]] = Str()
                self.elements[image] = Concat(self._with_junk([head]))
                self.paths[(source_type, "str")] = "/".join(steps) + "/text()"
        elif isinstance(production, Empty):
            if self.rng.random() < self.junk_prob:
                self.elements[image] = Concat((self._junk_type(),))
            else:
                self.elements[image] = Empty()
        elif isinstance(production, Concat):
            entries: list[str] = []
            plans: list[tuple[str, int, list[str]]] = []
            seen: dict[str, int] = {}
            for child in production.children:
                seen[child] = seen.get(child, 0) + 1
                head, steps = self._chain(self._wrap_length(),
                                          self.lam[child], "w")
                entries.append(head)
                plans.append((child, seen[child], steps))
            target_children = self._with_junk(entries)
            self.elements[image] = Concat(target_children)
            # Repeated first steps (duplicate source children mapped
            # through zero-length chains) need position qualifiers —
            # exactly the Fig. 3(c) situation.
            head_totals: dict[str, int] = {}
            for head in entries:
                head_totals[head] = head_totals.get(head, 0) + 1
            head_seen: dict[str, int] = {}
            for (child, occ, steps), head in zip(plans, entries):
                head_seen[head] = head_seen.get(head, 0) + 1
                rendered = list(steps)
                if head_totals[head] > 1:
                    rendered[0] = f"{head}[position()={head_seen[head]}]"
                self.paths[(source_type, child, occ)] = "/".join(rendered)
        elif isinstance(production, Disjunction):
            alternatives: list[str] = []
            for child in production.children:
                length = self._wrap_length()
                head, steps = self._chain(length, self.lam[child], "alt")
                alternatives.append(head)
                self.paths[(source_type, child)] = "/".join(steps)
            while self.rng.random() < self.junk_prob:
                alternatives.append(self._junk_type())
            self.rng.shuffle(alternatives)
            self.elements[image] = Disjunction(tuple(alternatives),
                                               optional=production.optional)
    def expand(self) -> Expansion:
        for source_type in self.source.types:
            production = self.source.production(source_type)
            if isinstance(production, Star):
                self._expand_star(source_type, production)
            else:
                self.expand_type(source_type)
        target = DTD(self.elements, self.lam[self.source.root],
                     name=f"{self.source.name}-expanded")
        embedding = build_embedding(
            self.source, target, self.lam,
            {key: XRPath.parse(path) for key, path in self.paths.items()})
        embedding.check()
        return Expansion(self.source, target, embedding)

    def _expand_star(self, source_type: str, production: Star) -> None:
        image = self.lam[source_type]
        child = production.child
        prefix_len = self._wrap_length()
        suffix_len = self._wrap_length()

        # Suffix: instance type K → … → λ(B).
        if suffix_len == 0:
            instance_type = self.lam[child]
            suffix_steps: list[str] = [instance_type]
        else:
            instance_type, suffix_steps = self._chain(
                suffix_len, self.lam[child], "inst")

        # Prefix: λ(A) → c1 → … → cp, with P(cp) = K*.
        if prefix_len == 0:
            self.elements[image] = Star(instance_type)
            prefix_steps: list[str] = []
        else:
            head = self.fresh("pre")
            prefix_steps = [head]
            current = head
            for _ in range(1, prefix_len):
                nxt = self.fresh("pre")
                self.elements[current] = Concat(self._with_junk([nxt]))
                prefix_steps.append(nxt)
                current = nxt
            self.elements[current] = Star(instance_type)
            self.elements[image] = Concat(self._with_junk([head]))
        self.paths[(source_type, child)] = "/".join(
            prefix_steps + suffix_steps)


def expand_schema(source: DTD, seed: int = 0, wrap_max: int = 2,
                  junk_prob: float = 0.3, rename: bool = False) -> Expansion:
    """Expand a source DTD into a richer target with a known embedding.

    >>> from repro.workloads.library import SCHEMA_LIBRARY
    >>> exp = expand_schema(SCHEMA_LIBRARY["bib"](), seed=1)
    >>> exp.embedding.is_valid()
    True
    """
    expander = _Expander(source, seed, wrap_max, junk_prob, rename)
    return expander.expand()


def noisy_att(expansion: Expansion, noise: float, seed: int = 0,
              max_spurious: int = 3,
              degrade: bool = True) -> SimilarityMatrix:
    """Perturb the ground-truth similarity matrix (experiment E12).

    With probability ``noise`` per source type: up to ``max_spurious``
    spurious target candidates are added with scores in [0.3, 1.0];
    with probability ``noise/2`` the true entry degrades to [0.5, 0.95].
    ``noise = 0`` reproduces the unambiguous matrix (each source type
    has exactly one candidate), which Section 5.2 shows is solvable in
    polynomial time.
    """
    rng = random.Random(seed)
    att = SimilarityMatrix()
    target_types = list(expansion.target.types)
    for source_type in expansion.source.types:
        truth = expansion.lam[source_type]
        true_score = 1.0
        if degrade and rng.random() < noise / 2:
            true_score = rng.uniform(0.5, 0.95)
        att.set(source_type, truth, round(true_score, 4))
        if rng.random() < noise:
            count = rng.randint(1, max_spurious)
            for _ in range(count):
                candidate = rng.choice(target_types)
                if candidate == truth:
                    continue
                att.set(source_type, candidate,
                        round(rng.uniform(0.3, 1.0), 4))
    return att
