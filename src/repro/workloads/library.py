"""Named schemas: the paper's figures plus realistic DTD sources.

The school integration scenario reproduces Fig. 1 with the embeddings
σ1 (Example 4.2, classes) and σ2 (Example 4.9, students).  The five
Fig. 3 scenarios carry their expected validity verdicts from
Example 4.1.  The remaining entries model the *kinds* of real-life and
benchmark schemas the VLDB'05 experimental study drew on (DBLP-style
bibliographies, XMark-style auctions, Mondial-style geography, GedML
genealogy, order/catalog data) — the study only needs realistic shapes
and sizes with controllable noise, so hand-modelled equivalents
preserve the relevant behaviour (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.embedding import SchemaEmbedding, build_embedding
from repro.core.similarity import SimilarityMatrix
from repro.dtd.model import DTD
from repro.schema import load_schema


def _compact(spec: str, root: Optional[str] = None,
             name: str = "dtd") -> DTD:
    """Workload schemas are authored in the compact normal-form
    syntax; going through the frontend boundary keeps this module off
    the raw parsers (and exercises the same path the CLI uses)."""
    return load_schema(spec, format="compact", root=root, name=name)


# -- Fig. 1: the school integration scenario --------------------------------------

@dataclass
class SchoolExample:
    """Fig. 1 and Examples 4.2 / 4.4 / 4.8 / 4.9 in one bundle."""

    classes: DTD      # S0, Fig. 1(a)
    students: DTD     # S1, Fig. 1(b)
    school: DTD       # S,  Fig. 1(c)
    sigma1: SchemaEmbedding   # Example 4.2: S0 -> S
    sigma2: SchemaEmbedding   # Example 4.9: S1 -> S
    att: SimilarityMatrix


def school_example() -> SchoolExample:
    """Build the Fig. 1 schemas and the paper's two embeddings.

    >>> bundle = school_example()
    >>> bundle.sigma1.is_valid() and bundle.sigma2.is_valid()
    True
    """
    classes = _compact("""
        db -> class*
        class -> cno, title, type
        cno -> str
        title -> str
        type -> regular + project
        regular -> prereq
        prereq -> class*
        project -> str
    """, name="classes-S0")

    students = _compact("""
        db -> student*
        student -> ssn, name, taking
        ssn -> str
        name -> str
        taking -> cno*
        cno -> str
    """, name="students-S1")

    school = _compact("""
        school -> courses, students
        courses -> current, history
        current -> course*
        history -> course*
        course -> basic, category
        basic -> cno, credit, class
        class -> semester*
        semester -> title, year, term, instructor
        category -> mandatory + advanced
        mandatory -> regular + lab
        advanced -> project + seminar
        regular -> required, elective
        required -> prereq
        elective -> prereq
        prereq -> course*
        lab -> str
        seminar -> str
        project -> str
        students -> student*
        student -> ssn, name, gpa, taking
        taking -> cno*
        ssn -> str
        name -> str
        gpa -> str
        cno -> str
        credit -> str
        title -> str
        year -> str
        term -> str
        instructor -> str
    """, name="school-S")

    # Example 4.2: σ1 = (λ1, path1).
    sigma1 = build_embedding(classes, school,
        lam={"db": "school", "class": "course", "type": "category",
             "cno": "cno", "title": "title", "regular": "regular",
             "project": "project", "prereq": "prereq"},
        paths={
            ("db", "class"): "courses/current/course",
            ("class", "cno"): "basic/cno",
            ("class", "title"): "basic/class/semester[position()=1]/title",
            ("class", "type"): "category",
            ("type", "regular"): "mandatory/regular",
            ("type", "project"): "advanced/project",
            ("regular", "prereq"): "required/prereq",
            ("prereq", "class"): "course",
            ("cno", "str"): "text()",
            ("title", "str"): "text()",
            ("project", "str"): "text()",
        })

    # Example 4.9: σ2 = (λ2, path2).
    sigma2 = build_embedding(students, school,
        lam={"db": "school", "student": "student", "ssn": "ssn",
             "name": "name", "taking": "taking", "cno": "cno"},
        paths={
            ("db", "student"): "students/student",
            ("student", "ssn"): "ssn",
            ("student", "name"): "name",
            ("student", "taking"): "taking",
            ("taking", "cno"): "cno",
            ("ssn", "str"): "text()",
            ("name", "str"): "text()",
            ("cno", "str"): "text()",
        })

    # Example 4.2's att imposes no restrictions.
    att = SimilarityMatrix.permissive()
    return SchoolExample(classes, students, school, sigma1, sigma2, att)


# -- Fig. 3: the five validity scenarios ------------------------------------------

@dataclass
class Fig3Scenario:
    """One of the Fig. 3 / Example 4.1 scenarios."""

    key: str
    source: DTD
    target: DTD
    #: the candidate embedding, or None when the paper says none exists
    embedding: Optional[SchemaEmbedding]
    expect_valid: bool
    note: str


def fig3_scenarios() -> list[Fig3Scenario]:
    """The scenarios (a)–(e) with Example 4.1's verdicts."""
    scenarios: list[Fig3Scenario] = []

    # (a) source A -> B, C (concat); target A' -> B' + C' (disjunction):
    # B and C must coexist but only one of B'/C' can — no valid mapping.
    source_a = _compact("A -> B, C\nB -> str\nC -> str", name="fig3a-src")
    target_a = _compact(
        "Ap -> Bp + Cp\nBp -> str\nCp -> str", name="fig3a-tgt")
    scenarios.append(Fig3Scenario(
        "a", source_a, target_a,
        build_embedding(source_a, target_a,
                        lam={"A": "Ap", "B": "Bp", "C": "Cp"},
                        paths={("A", "B"): "Bp", ("A", "C"): "Cp",
                               ("B", "str"): "text()",
                               ("C", "str"): "text()"}),
        expect_valid=False,
        note="AND edges mapped onto OR edges violate the path type "
             "condition"))

    # (b) source A -> B* ; target A' -> B' (a single B'): the target
    # cannot accommodate multiple B elements.
    source_b = _compact("A -> B*\nB -> str", name="fig3b-src")
    target_b = _compact("Ap -> Bp\nBp -> str", name="fig3b-tgt")
    scenarios.append(Fig3Scenario(
        "b", source_b, target_b,
        build_embedding(source_b, target_b,
                        lam={"A": "Ap", "B": "Bp"},
                        paths={("A", "B"): "Bp", ("B", "str"): "text()"}),
        expect_valid=False,
        note="a star edge needs a STAR path"))

    # (c) source A -> B, C with λ(B)=λ(C)=B'; target A' -> B', B':
    # valid via position() qualifiers.
    source_c = _compact("A -> B, C\nB -> str\nC -> str", name="fig3c-src")
    target_c = _compact("Ap -> Bp, Bp\nBp -> str", name="fig3c-tgt")
    scenarios.append(Fig3Scenario(
        "c", source_c, target_c,
        build_embedding(source_c, target_c,
                        lam={"A": "Ap", "B": "Bp", "C": "Bp"},
                        paths={("A", "B"): "Bp[position()=1]",
                               ("A", "C"): "Bp[position()=2]",
                               ("B", "str"): "text()",
                               ("C", "str"): "text()"}),
        expect_valid=True,
        note="two source types may share a target type (Fig. 3(c))"))

    # (d) prefix violation: path(A,B) a prefix of path(A,C).
    source_d = _compact("A -> B, C\nB -> str\nC -> str", name="fig3d-src")
    target_d = _compact(
        "Ap -> Bp\nBp -> Cp\nCp -> str", name="fig3d-tgt")
    scenarios.append(Fig3Scenario(
        "d", source_d, target_d,
        build_embedding(source_d, target_d,
                        lam={"A": "Ap", "B": "Bp", "C": "Cp"},
                        paths={("A", "B"): "Bp", ("A", "C"): "Bp/Cp",
                               ("B", "str"): "text()",
                               ("C", "str"): "text()"}),
        expect_valid=False,
        note="prefix-free condition violated (Fig. 3(d))"))

    # (e) recursion in the target: a valid embedding exists by
    # unfolding the cycle once.  (The exact Fig. 3(e) productions are
    # not recoverable from the text; this scenario reproduces the
    # stated phenomenon — a cyclic target whose cycle must be unfolded
    # once, with a position() pin making the unfolded path
    # deterministic.)
    source_e = _compact("A -> B, C\nB -> str\nC -> str", name="fig3e-src")
    target_e = _compact("""
        Ap -> Bp, Sp
        Sp -> Ap*
        Bp -> str
    """, name="fig3e-tgt")
    scenarios.append(Fig3Scenario(
        "e", source_e, target_e,
        build_embedding(source_e, target_e,
                        lam={"A": "Ap", "B": "Bp", "C": "Bp"},
                        paths={("A", "B"): "Bp",
                               ("A", "C"): "Sp/Ap[position()=1]/Bp",
                               ("B", "str"): "text()",
                               ("C", "str"): "text()"}),
        expect_valid=True,
        note="cyclic target: path(A,C) unfolds the Ap cycle once "
             "(Fig. 3(e))"))

    return scenarios


# -- realistic schema library ------------------------------------------------------

def _bib() -> DTD:
    return _compact("""
        bib -> entry*
        entry -> article + book + phd
        article -> title, authors, journal, year
        book -> title, authors, publisher, year
        phd -> title, author, school, year
        authors -> author*
        author -> str
        title -> str
        journal -> str
        publisher -> str
        school -> str
        year -> str
    """, name="bib")


def _dblp() -> DTD:
    return _compact("""
        dblp -> record*
        record -> inproceedings + article2 + www
        inproceedings -> key, ititle, iauthors, booktitle, ipages, iyear
        article2 -> key, atitle, aauthors, journal, volume, apages, ayear
        www -> key, wtitle, url
        iauthors -> iauthor*
        aauthors -> aauthor*
        iauthor -> str
        aauthor -> str
        key -> str
        ititle -> str
        atitle -> str
        wtitle -> str
        booktitle -> str
        journal -> str
        volume -> str
        ipages -> str
        apages -> str
        iyear -> str
        ayear -> str
        url -> str
    """, name="dblp")


def _auction() -> DTD:
    """XMark-flavoured auction site."""
    return _compact("""
        site -> regions, people, auctions
        regions -> africa, asia, europe
        africa -> item*
        asia -> item*
        europe -> item*
        item -> iname, payment, description, shipping
        iname -> str
        payment -> str
        shipping -> str
        description -> text + parlist
        text -> str
        parlist -> listitem*
        listitem -> str
        people -> person*
        person -> pname, email, watches
        pname -> str
        email -> str
        watches -> watch*
        watch -> str
        auctions -> open_auction*
        open_auction -> seller, quantity, bids
        seller -> str
        quantity -> str
        bids -> bid*
        bid -> bidder, increase
        bidder -> str
        increase -> str
    """, name="auction")


def _mondial() -> DTD:
    """Mondial-flavoured geography."""
    return _compact("""
        mondial -> country*
        country -> cname, capital, population, provinces, borders
        cname -> str
        capital -> str
        population -> str
        provinces -> province*
        province -> prname, prpop, cities
        prname -> str
        prpop -> str
        cities -> city*
        city -> ctname, ctpop
        ctname -> str
        ctpop -> str
        borders -> border*
        border -> str
    """, name="mondial")


def _genealogy() -> DTD:
    """GedML-flavoured genealogy (recursive)."""
    return _compact("""
        gedcom -> indi*
        indi -> persname, birth, famc
        persname -> str
        birth -> date, place
        date -> str
        place -> str
        famc -> family + eps
        family -> husb, wife, children
        husb -> indi2 + eps
        wife -> indi2 + eps
        indi2 -> persname
        children -> indi*
    """, name="genealogy")


def _orders() -> DTD:
    """TPC-flavoured orders/catalog."""
    return _compact("""
        store -> catalog, orders
        catalog -> product*
        product -> sku, prodname, price, category2
        sku -> str
        prodname -> str
        price -> str
        category2 -> electronics + grocery + apparel
        electronics -> warranty
        warranty -> str
        grocery -> expiry
        expiry -> str
        apparel -> size
        size -> str
        orders -> order*
        order -> oid, customer, lines, status
        oid -> str
        customer -> custname, address
        custname -> str
        address -> str
        lines -> line*
        line -> lsku, qty
        lsku -> str
        qty -> str
        status -> open + shipped + cancelled
        open -> eta
        eta -> str
        shipped -> tracking
        tracking -> str
        cancelled -> reason
        reason -> str
    """, name="orders")


def _parts() -> DTD:
    """Recursive bill-of-materials."""
    return _compact("""
        bom -> part*
        part -> pno, pdesc, subparts
        pno -> str
        pdesc -> str
        subparts -> part*
    """, name="parts")


#: Named source schemas for the experiments (sizes 10–60 types; the
#: expansion generator grows targets to "a few hundred nodes").
SCHEMA_LIBRARY: dict[str, Callable[[], DTD]] = {
    "bib": _bib,
    "dblp": _dblp,
    "auction": _auction,
    "mondial": _mondial,
    "genealogy": _genealogy,
    "orders": _orders,
    "parts": _parts,
    "school-classes": lambda: school_example().classes,
    "school-students": lambda: school_example().students,
}
