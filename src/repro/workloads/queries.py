"""Random XR query generation over a source DTD.

Queries exercise every construct of the paper's grammar (Section 2.2):
child steps, unions, qualifiers (path existence, text equality,
position, boolean combinations), Kleene stars over schema cycles, and
``text()`` tails.  Generated queries are *schema-aware* — steps follow
schema edges — so they return non-trivial results on generated
instances; the translation tests rely on this to exercise ``Tr``
deeply rather than on vacuously-empty queries.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Star as StarProd,
    Str,
)
from repro.xpath.ast import (
    EmptyPath,
    Label,
    PathExpr,
    QAnd,
    QNot,
    QOr,
    QPath,
    QPos,
    QText,
    Qualified,
    Qualifier,
    Seq,
    Star,
    TextStep,
    Union,
    seq_of,
)


class QueryGenerator:
    """Reusable generator bound to one source DTD."""

    def __init__(self, dtd: DTD, seed: int = 0,
                 string_pool: Optional[list[str]] = None) -> None:
        self.dtd = dtd
        self.rng = random.Random(seed)
        self.string_pool = string_pool or ["alpha", "bravo", "#s", "x"]
        self._cycles = self._find_cycles()

    # ------------------------------------------------------------------
    def _children(self, element_type: str) -> list[str]:
        return sorted({e.child for e in self.dtd.edges_from(element_type)})

    def _find_cycles(self) -> dict[str, list[str]]:
        """Short label cycles per type (for meaningful ``p*`` queries)."""
        cycles: dict[str, list[str]] = {}
        for start in self.dtd.types:
            path = self._bfs_cycle(start)
            if path:
                cycles[start] = path
        return cycles

    def _bfs_cycle(self, start: str) -> Optional[list[str]]:
        from collections import deque

        queue = deque([(start, [])])
        seen = {start}
        while queue:
            current, path = queue.popleft()
            if len(path) > 6:
                continue
            for edge in self.dtd.edges_from(current):
                new_path = path + [edge.child]
                if edge.child == start and path:
                    return new_path
                if edge.child == start and not path:
                    return new_path  # self loop
                if edge.child not in seen:
                    seen.add(edge.child)
                    queue.append((edge.child, new_path))
        return None

    # ------------------------------------------------------------------
    def _random_walk(self, context: str, max_len: int) -> tuple[list[str], str]:
        labels: list[str] = []
        current = context
        for _ in range(self.rng.randint(1, max_len)):
            children = self._children(current)
            if not children:
                break
            nxt = self.rng.choice(children)
            labels.append(nxt)
            current = nxt
        return labels, current

    def _qualifier(self, context: str, depth: int) -> Qualifier:
        roll = self.rng.random()
        if roll < 0.35:
            labels, end = self._random_walk(context, 2)
            if not labels:
                return QPos(1)
            path = seq_of(Label(l) for l in labels)
            if isinstance(self.dtd.production(end), Str) \
                    and self.rng.random() < 0.5:
                return QText(Seq(path, TextStep()),
                             self.rng.choice(self.string_pool))
            return QPath(path)
        if roll < 0.5:
            return QPos(self.rng.randint(1, 3))
        if roll < 0.65 and depth < 2:
            return QNot(self._qualifier(context, depth + 1))
        if roll < 0.85 and depth < 2:
            return QAnd(self._qualifier(context, depth + 1),
                        self._qualifier(context, depth + 1))
        if depth < 2:
            return QOr(self._qualifier(context, depth + 1),
                       self._qualifier(context, depth + 1))
        return QPos(1)

    def _segment(self, context: str, budget: int) -> tuple[PathExpr, str]:
        """One step (possibly a union / starred cycle / qualified)."""
        children = self._children(context)
        if not children:
            return EmptyPath(), context
        roll = self.rng.random()
        if roll < 0.12 and context in self._cycles:
            cycle = self._cycles[context]
            return Star(seq_of(Label(l) for l in cycle)), context
        label = self.rng.choice(children)
        expr: PathExpr = Label(label)
        end = label
        if roll < 0.30 and len(children) > 1:
            other = self.rng.choice([c for c in children if c != label])
            expr = Union(Label(label), Label(other))
            # A union's continuation context: pick one branch for the
            # rest of the walk (translation handles both).
            end = self.rng.choice([label, other])
        if self.rng.random() < 0.3:
            expr = Qualified(expr, self._qualifier(end, 0))
        return expr, end

    def generate(self, max_steps: int = 5) -> PathExpr:
        context = self.dtd.root
        parts: list[PathExpr] = []
        for _ in range(self.rng.randint(1, max_steps)):
            segment, context = self._segment(context, max_steps)
            if isinstance(segment, EmptyPath):
                break
            parts.append(segment)
        if not parts:
            children = self._children(self.dtd.root)
            parts = [Label(children[0])] if children else [EmptyPath()]
        production = self.dtd.production(context)
        if isinstance(production, Str) and self.rng.random() < 0.5:
            parts.append(TextStep())
        return seq_of(parts)


def random_queries(dtd: DTD, count: int, seed: int = 0,
                   max_steps: int = 5) -> list[PathExpr]:
    """Generate ``count`` random XR queries over ``dtd``.

    >>> from repro.workloads.synthetic import random_dtd
    >>> qs = random_queries(random_dtd(10, seed=1), 5, seed=2)
    >>> len(qs)
    5
    """
    generator = QueryGenerator(dtd, seed=seed)
    return [generator.generate(max_steps) for _ in range(count)]
