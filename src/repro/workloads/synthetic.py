"""Random consistent DTD generation (scalability & property tests).

Schemas are generated as a spanning forest over ``n`` types (so every
type is reachable and the DTD is consistent by construction), with a
configurable mix of production shapes.  Optional recursion converts
selected leaves into stars pointing back at an ancestor — always
zero-able, so consistency is preserved.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from repro.dtd.consistency import is_consistent
from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    Production,
    Star,
    Str,
)


def random_dtd(n_types: int, seed: int = 0, star_p: float = 0.2,
               or_p: float = 0.25, opt_p: float = 0.3,
               max_children: int = 4, recursive_p: float = 0.0,
               name: Optional[str] = None) -> DTD:
    """Generate a consistent DTD with exactly ``n_types`` element types.

    ``star_p``/``or_p`` control the production mix (the remainder are
    concatenations); ``opt_p`` is the chance a disjunction gains an ε
    alternative; ``recursive_p`` the chance a leaf becomes a back-edge
    star (making the schema graph cyclic).

    >>> d = random_dtd(12, seed=4)
    >>> from repro.dtd.consistency import is_consistent
    >>> d.node_count(), is_consistent(d)
    (12, True)
    """
    if n_types < 1:
        raise ValueError("need at least one type")
    rng = random.Random(seed)
    names = [f"t{i}" for i in range(n_types)]
    pool = deque(names[1:])
    elements: dict[str, Production] = {}
    parents: dict[str, str] = {}
    queue = deque([names[0]])

    while queue:
        current = queue.popleft()
        if not pool:
            elements[current] = Str() if rng.random() < 0.7 else Empty()
            continue
        roll = rng.random()
        if roll < star_p:
            child = pool.popleft()
            parents[child] = current
            elements[current] = Star(child)
            queue.append(child)
        elif roll < star_p + or_p and len(pool) >= 2:
            count = min(len(pool), rng.randint(2, max_children))
            children = [pool.popleft() for _ in range(count)]
            for child in children:
                parents[child] = current
                queue.append(child)
            elements[current] = Disjunction(
                tuple(children), optional=rng.random() < opt_p)
        else:
            count = min(len(pool), rng.randint(1, max_children))
            children = [pool.popleft() for _ in range(count)]
            for child in children:
                parents[child] = current
                queue.append(child)
            # Occasionally repeat a child (exercises occurrence edges).
            if count >= 1 and rng.random() < 0.15:
                children.append(rng.choice(children))
            elements[current] = Concat(tuple(children))

    # Optional recursion: retarget some leaves into back-edge stars.
    if recursive_p > 0:
        for element_type in names:
            if not isinstance(elements[element_type], (Str, Empty)):
                continue
            if rng.random() >= recursive_p:
                continue
            ancestors = []
            walker = element_type
            while walker in parents:
                walker = parents[walker]
                ancestors.append(walker)
            if ancestors:
                elements[element_type] = Star(rng.choice(ancestors))

    dtd = DTD(elements, names[0], name or f"rand{n_types}-{seed}")
    assert is_consistent(dtd), "generator invariant violated"
    return dtd
