"""XR paths — the path subclass used by schema embeddings (Section 4.1).

An *XR path* over a DTD is ``ρ = η1/…/ηk`` where each ``ηi`` is ``A[q]``
with ``q`` either ``true`` or a ``position()`` qualifier, such that ρ
denotes a label path in the schema graph carrying all position labels.

Classification (paper Section 4.1, with the shape refinements R3/R4 of
DESIGN.md):

* **AND path** — no OR edges; every star edge carries a position
  qualifier (so the path denotes exactly one node per context);
* **OR path** — at least one OR edge, no star edges;
* **STAR path** — no OR edges; exactly one *unqualified* star edge (the
  multiplicity carrier); no other star edge anywhere on the path;
* a **text path** additionally ends with ``text()`` and its last element
  type has a ``str`` production.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Optional

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Edge,
    EdgeKind,
    Star as StarProd,
    Str,
)
from repro.xpath.ast import (
    EmptyPath,
    Label,
    PathExpr,
    QPos,
    Qualified,
    TextStep,
    seq_of,
)


class PathClassError(ValueError):
    """Raised when a path does not denote a label path in the schema."""


@dataclass(frozen=True)
class PathStep:
    """One step ``A[position()=k]`` (``pos=None`` when unqualified)."""

    label: str
    pos: Optional[int] = None

    def __str__(self) -> str:
        if self.pos is None:
            return self.label
        return f"{self.label}[position()={self.pos}]"


_STEP_RE = re.compile(
    r"^(?P<label>[\w.\-]+)(\[\s*position\(\)\s*=\s*(?P<pos>\d+)\s*\])?$")


@dataclass(frozen=True)
class XRPath:
    """An XR path: qualified label steps, optionally ending in text()."""

    steps: tuple[PathStep, ...]
    text: bool = False

    # -- construction ---------------------------------------------------
    @staticmethod
    def parse(source: str) -> "XRPath":
        """Parse e.g. ``basic/class/semester[position()=1]/title``.

        ``text()`` may only appear as the last step; a bare ``text()``
        is the empty-step text path (Example 4.2: ``path1(A,str) =
        text()``).
        """
        parts = [p.strip() for p in source.strip().split("/")]
        steps: list[PathStep] = []
        text = False
        for index, part in enumerate(parts):
            if part == "text()":
                if index != len(parts) - 1:
                    raise PathClassError(
                        f"text() must be the final step in {source!r}")
                text = True
                continue
            match = _STEP_RE.match(part)
            if not match:
                raise PathClassError(f"bad path step {part!r} in {source!r}")
            pos = match.group("pos")
            steps.append(PathStep(match.group("label"),
                                  int(pos) if pos else None))
        return XRPath(tuple(steps), text)

    def __str__(self) -> str:
        rendered = [str(step) for step in self.steps]
        if self.text:
            rendered.append("text()")
        return "/".join(rendered) if rendered else "."

    def fingerprint(self) -> str:
        """Stable content fingerprint (hex digest) for cache keys.

        Two paths with equal steps/text have equal fingerprints across
        processes — ``str()`` is the canonical form already.
        """
        return hashlib.sha256(str(self).encode("utf-8")).hexdigest()

    # -- structure ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.steps) + (1 if self.text else 0)

    def is_empty(self) -> bool:
        return not self.steps and not self.text

    def is_prefix_of(self, other: "XRPath") -> bool:
        """Prefix relation on XR paths (Section 4.1).

        Equal paths count as prefixes (they would map two source items
        to the same target node).  A text path is a prefix only of
        itself — text() has no continuation.
        """
        if self.text:
            return other.text and self.steps == other.steps
        if len(self.steps) > len(other.steps):
            return False
        return other.steps[:len(self.steps)] == self.steps

    def concat(self, other: "XRPath") -> "XRPath":
        if self.text:
            raise PathClassError("cannot extend a text path")
        return XRPath(self.steps + other.steps, other.text)

    def prefix(self, length: int) -> "XRPath":
        return XRPath(self.steps[:length], False)

    def with_pinned_carrier(self, position: int, carrier_index: int) -> "XRPath":
        """Pin the star-carrier step at ``carrier_index`` to ``position``.

        Used when a source star edge's path is instantiated for the
        k-th child, and by δ when a source qualifier ``B[position()=k]``
        crosses a star edge (Theorem 3.3's ``Tr(ρ/B[position()=k])``).
        The caller obtains ``carrier_index`` from
        :attr:`PathInfo.carrier_index`.
        """
        if not 0 <= carrier_index < len(self.steps):
            raise PathClassError(f"no step {carrier_index} in {self}")
        step = self.steps[carrier_index]
        if step.pos is not None:
            raise PathClassError(f"step {step} is already pinned")
        out = list(self.steps)
        out[carrier_index] = PathStep(step.label, position)
        return XRPath(tuple(out), self.text)

    # -- conversion -------------------------------------------------------
    def to_expr(self) -> PathExpr:
        """The equivalent :mod:`repro.xpath.ast` expression."""
        parts: list[PathExpr] = []
        for step in self.steps:
            expr: PathExpr = Label(step.label)
            if step.pos is not None:
                expr = Qualified(expr, QPos(step.pos))
            parts.append(expr)
        if self.text:
            parts.append(TextStep())
        if not parts:
            return EmptyPath()
        return seq_of(parts)


@dataclass(frozen=True)
class PathInfo:
    """The schema-graph classification of one XR path."""

    path: XRPath            # normalised (implied positions resolved)
    edges: tuple[Edge, ...]
    end_type: str           # type of the node the path arrives at
    or_indices: tuple[int, ...]        # steps traversing OR edges
    star_indices: tuple[int, ...]      # steps traversing STAR edges
    unpinned_star_indices: tuple[int, ...]

    @property
    def has_or(self) -> bool:
        return bool(self.or_indices)

    @property
    def has_star(self) -> bool:
        return bool(self.star_indices)

    def is_and_path(self) -> bool:
        """AND path: nonempty, no OR edges, all star steps pinned (R3)."""
        return (not self.path.is_empty() and not self.has_or
                and not self.unpinned_star_indices)

    def is_or_path(self) -> bool:
        """OR path: at least one OR edge, no star edges."""
        return self.has_or and not self.has_star

    def is_star_path(self) -> bool:
        """STAR path: a single unpinned star carrier, no OR edges, and
        no other star edge before or after the carrier (R4)."""
        return (not self.has_or
                and len(self.star_indices) == 1
                and len(self.unpinned_star_indices) == 1)

    @property
    def carrier_index(self) -> int:
        """Index of the multiplicity-carrier step of a STAR path."""
        if not self.is_star_path():
            raise PathClassError(f"{self.path} is not a STAR path")
        return self.unpinned_star_indices[0]


def classify_path(path: XRPath, dtd: DTD, start_type: str) -> PathInfo:
    """Walk ``path`` through the schema graph of ``dtd`` from
    ``start_type``; normalise implied positions and classify edges.

    Raises :class:`PathClassError` if the path does not denote a label
    path (Section 4.1 requires XR paths to represent schema paths).
    """
    current = start_type
    edges: list[Edge] = []
    steps: list[PathStep] = []
    or_indices: list[int] = []
    star_indices: list[int] = []
    unpinned: list[int] = []

    for index, step in enumerate(path.steps):
        production = dtd.production(current)
        if isinstance(production, Concat):
            count = production.occurrence_count(step.label)
            if count == 0:
                raise PathClassError(
                    f"{step.label!r} is not a child of {current!r}")
            if count > 1 and step.pos is None:
                raise PathClassError(
                    f"step {step} needs a position() qualifier: "
                    f"{step.label!r} occurs {count} times in P({current})")
            occ = step.pos if step.pos is not None else 1
            if not 1 <= occ <= count:
                raise PathClassError(
                    f"occurrence {occ} of {step.label!r} out of range "
                    f"in P({current})")
            edge = dtd.edge(current, step.label, occ)
            assert edge is not None
            edges.append(edge)
            # Normalise: drop a redundant [position()=1] on unique children.
            steps.append(PathStep(step.label,
                                  step.pos if count > 1 else None))
        elif isinstance(production, Disjunction):
            if step.label not in production.children:
                raise PathClassError(
                    f"{step.label!r} is not an alternative of {current!r}")
            if step.pos is not None and step.pos != 1:
                raise PathClassError(
                    f"position {step.pos} invalid on OR edge {step}")
            edge = dtd.edge(current, step.label)
            assert edge is not None
            edges.append(edge)
            or_indices.append(index)
            steps.append(PathStep(step.label, None))
        elif isinstance(production, StarProd):
            if step.label != production.child:
                raise PathClassError(
                    f"{step.label!r} is not the star child of {current!r}")
            edge = dtd.edge(current, step.label)
            assert edge is not None
            edges.append(edge)
            star_indices.append(index)
            if step.pos is None:
                unpinned.append(index)
            steps.append(step)
        else:
            raise PathClassError(
                f"{current!r} has no element children (P({current}) = "
                f"{production})")
        current = step.label

    if path.text:
        production = dtd.production(current)
        if not isinstance(production, Str):
            raise PathClassError(
                f"text() requires P({current!r}) = str, got {production}")

    return PathInfo(
        path=XRPath(tuple(steps), path.text),
        edges=tuple(edges),
        end_type=current,
        or_indices=tuple(or_indices),
        star_indices=tuple(star_indices),
        unpinned_star_indices=tuple(unpinned),
    )


def first_divergence(p1: XRPath, p2: XRPath) -> Optional[int]:
    """Index of the first differing step, or ``None`` if one path is a
    prefix of the other (Theorem 4.1's ``ρ/η1/…`` decomposition)."""
    for index, (s1, s2) in enumerate(zip(p1.steps, p2.steps)):
        if s1 != s2:
            return index
    return None
