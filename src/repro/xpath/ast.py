"""AST for regular XPath ``XR`` queries (paper Section 2.2).

Nodes are immutable dataclasses with structural equality, so query
translation can memoise on sub-expressions.  ``str()`` renders back to
the concrete syntax accepted by :func:`repro.xpath.parser.parse_xr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Iterable


class _StructurallyHashed:
    """Shared plumbing for the memoisable AST nodes.

    Translation memoises on ``(subquery, context)`` keys, so the same
    subtree is hashed once per memo probe — recursive structural
    hashing makes that O(|Q|) per probe and O(|Q|²) per translation.
    :func:`_cache_hashes` wraps each node class's generated hash to
    compute it once per object; the cache lives in ``__dict__`` (legal
    on frozen dataclasses) and is dropped on pickling because hash
    values do not survive process boundaries (PYTHONHASHSEED).
    """

    def __getstate__(self):
        return {key: value for key, value in self.__dict__.items()
                if not key.startswith("_cached_")}


class PathExpr(_StructurallyHashed):
    """Base class of path expressions ``p``."""

    def __truediv__(self, other: "PathExpr") -> "PathExpr":
        return Seq(self, other)

    def __or__(self, other: "PathExpr") -> "PathExpr":
        return Union(self, other)

    def star(self) -> "PathExpr":
        return Star(self)

    def where(self, qual: "Qualifier") -> "PathExpr":
        return Qualified(self, qual)


class Qualifier(_StructurallyHashed):
    """Base class of qualifiers ``q``."""

    def __and__(self, other: "Qualifier") -> "Qualifier":
        return QAnd(self, other)

    def __or__(self, other: "Qualifier") -> "Qualifier":
        return QOr(self, other)

    def __invert__(self) -> "Qualifier":
        return QNot(self)


# -- path expressions ---------------------------------------------------

@dataclass(frozen=True)
class EmptyPath(PathExpr):
    """``ε`` — the empty path (self)."""

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class Label(PathExpr):
    """``A`` — a child step to elements labelled ``name``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TextStep(PathExpr):
    """``text()`` — step to the string values of text children."""

    def __str__(self) -> str:
        return "text()"


@dataclass(frozen=True)
class Seq(PathExpr):
    """``p1/p2`` — composition."""

    left: PathExpr
    right: PathExpr

    def __str__(self) -> str:
        return f"{_wrap(self.left, Union)}/{_wrap(self.right, Union)}"


@dataclass(frozen=True)
class Union(PathExpr):
    """``p1 ∪ p2``."""

    left: PathExpr
    right: PathExpr

    def __str__(self) -> str:
        return f"{self.left} | {self.right}"


@dataclass(frozen=True)
class Star(PathExpr):
    """``p*`` — the Kleene closure (the regular-XPath extension)."""

    inner: PathExpr

    def __str__(self) -> str:
        return f"({self.inner})*"


@dataclass(frozen=True)
class DescOrSelf(PathExpr):
    """``//`` — descendant-or-self, the ``X`` fragment's replacement
    for ``p*``.  Over a DTD with alphabet Σ it is definable in ``XR`` as
    ``(A1 ∪ … ∪ An)*``; :func:`lower_descendants` performs that
    rewriting when a schema is available.
    """

    def __str__(self) -> str:
        return "descendant-or-self()"


@dataclass(frozen=True)
class Qualified(PathExpr):
    """``p[q]``."""

    inner: PathExpr
    qual: "Qualifier"

    def __str__(self) -> str:
        return f"{_wrap(self.inner, (Union, Seq))}[{self.qual}]"


# -- qualifiers ----------------------------------------------------------

@dataclass(frozen=True)
class QTrue(Qualifier):
    """``true`` — always holds (definable as ``[ε]``, Section 2.2)."""

    def __str__(self) -> str:
        return "true()"


@dataclass(frozen=True)
class QPath(Qualifier):
    """``p`` — the path has a non-empty result."""

    path: PathExpr

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class QText(Qualifier):
    """``p/text() = 'c'`` (``path`` already includes the text() step)."""

    path: PathExpr
    value: str

    def __str__(self) -> str:
        return f"{self.path}='{self.value}'"


@dataclass(frozen=True)
class QPos(Qualifier):
    """``position() = k``."""

    k: int

    def __str__(self) -> str:
        return f"position()={self.k}"


@dataclass(frozen=True)
class QNot(Qualifier):
    inner: Qualifier

    def __str__(self) -> str:
        return f"not({self.inner})"


@dataclass(frozen=True)
class QAnd(Qualifier):
    left: Qualifier
    right: Qualifier

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class QOr(Qualifier):
    left: Qualifier
    right: Qualifier

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


# -- helpers --------------------------------------------------------------

def _cache_hashes() -> None:
    """Wrap every AST node's dataclass-generated ``__hash__`` with a
    per-object cache (see :class:`_StructurallyHashed`)."""
    for node_class in (EmptyPath, Label, TextStep, Seq, Union, Star,
                       DescOrSelf, Qualified, QTrue, QPath, QText, QPos,
                       QNot, QAnd, QOr):
        generated = node_class.__hash__

        def __hash__(self, _generated=generated):
            cached = self.__dict__.get("_cached_hash")
            if cached is None:
                cached = _generated(self)
                self.__dict__["_cached_hash"] = cached
            return cached

        node_class.__hash__ = __hash__


_cache_hashes()


def _wrap(expr: PathExpr, kinds) -> str:
    rendered = str(expr)
    return f"({rendered})" if isinstance(expr, kinds) else rendered


def seq_of(parts: Iterable[PathExpr]) -> PathExpr:
    """Left-associated composition of several steps (ε for no parts)."""
    items = list(parts)
    if not items:
        return EmptyPath()
    return reduce(Seq, items)


def union_of(parts: Iterable[PathExpr]) -> PathExpr:
    items = list(parts)
    if not items:
        raise ValueError("union of nothing")
    return reduce(Union, items)


def query_size(expr: PathExpr | Qualifier) -> int:
    """``|Q|`` — the number of AST nodes (used in complexity bounds)."""
    if isinstance(expr, (Seq, Union, QAnd, QOr)):
        return 1 + query_size(expr.left) + query_size(expr.right)
    if isinstance(expr, Star):
        return 1 + query_size(expr.inner)
    if isinstance(expr, Qualified):
        return 1 + query_size(expr.inner) + query_size(expr.qual)
    if isinstance(expr, QNot):
        return 1 + query_size(expr.inner)
    if isinstance(expr, (QPath, QText)):
        return 1 + query_size(expr.path)
    return 1


def contains_star(expr: PathExpr | Qualifier) -> bool:
    """Whether the expression uses the regular-XPath ``p*`` construct."""
    if isinstance(expr, Star):
        return True
    if isinstance(expr, (Seq, Union, QAnd, QOr)):
        return contains_star(expr.left) or contains_star(expr.right)
    if isinstance(expr, Qualified):
        return contains_star(expr.inner) or contains_star(expr.qual)
    if isinstance(expr, QNot):
        return contains_star(expr.inner)
    if isinstance(expr, (QPath, QText)):
        return contains_star(expr.path)
    return False


def contains_descendant(expr: PathExpr | Qualifier) -> bool:
    """Whether the expression uses ``//`` (the ``X`` fragment axis).

    Cached per AST object (the translation entry point asks on every
    call; nodes are immutable, so the answer never changes).
    """
    cached = expr.__dict__.get("_cached_desc")
    if cached is not None:
        return cached
    if isinstance(expr, DescOrSelf):
        result = True
    elif isinstance(expr, (Seq, Union, QAnd, QOr)):
        result = (contains_descendant(expr.left)
                  or contains_descendant(expr.right))
    elif isinstance(expr, Qualified):
        result = (contains_descendant(expr.inner)
                  or contains_descendant(expr.qual))
    elif isinstance(expr, QNot):
        result = contains_descendant(expr.inner)
    elif isinstance(expr, (QPath, QText)):
        result = contains_descendant(expr.path)
    else:
        result = False
    expr.__dict__["_cached_desc"] = result
    return result


def lower_descendants(expr, alphabet: Iterable[str]):
    """Rewrite ``//`` into ``(A1 ∪ … ∪ An)*`` over the given alphabet.

    This turns an ``X`` query into a plain ``XR`` query relative to a
    schema, which is how the translation machinery consumes it.
    """
    labels = sorted(set(alphabet))

    def lower(node):
        if isinstance(node, DescOrSelf):
            if not labels:
                return EmptyPath()
            return Star(union_of(Label(name) for name in labels))
        if isinstance(node, Seq):
            return Seq(lower(node.left), lower(node.right))
        if isinstance(node, Union):
            return Union(lower(node.left), lower(node.right))
        if isinstance(node, Star):
            return Star(lower(node.inner))
        if isinstance(node, Qualified):
            return Qualified(lower(node.inner), lower(node.qual))
        if isinstance(node, QPath):
            return QPath(lower(node.path))
        if isinstance(node, QText):
            return QText(lower(node.path), node.value)
        if isinstance(node, QNot):
            return QNot(lower(node.inner))
        if isinstance(node, QAnd):
            return QAnd(lower(node.left), lower(node.right))
        if isinstance(node, QOr):
            return QOr(lower(node.left), lower(node.right))
        return node

    return lower(expr)
