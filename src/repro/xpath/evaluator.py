"""Evaluation of ``XR`` queries on XML trees (paper Section 2.2).

``v[[p]]`` is the set of (a) nodes reachable from the context node ``v``
via ``p`` and (b) string values contributed by ``…/text()`` sub-queries.
Internally we work with document-order *lists* so that ``position()``
qualifiers have well-defined XPath semantics; :class:`ResultSet` is the
set view used for equivalence checks (ids are compared after applying
``idM`` on the target side, per Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Union as TUnion

from repro.xpath.ast import (
    DescOrSelf,
    EmptyPath,
    Label,
    PathExpr,
    QAnd,
    QNot,
    QOr,
    QPath,
    QPos,
    QText,
    QTrue,
    Qualified,
    Qualifier,
    Seq,
    Star,
    TextStep,
    Union,
)
from repro.xtree.nodes import ElementNode, TextNode

#: Evaluation items: element nodes, or PCDATA string values.
Item = TUnion[ElementNode, str]


@dataclass(frozen=True)
class ResultSet:
    """The set view of a query answer: node ids plus string values."""

    ids: frozenset[int]
    strings: frozenset[str]

    @staticmethod
    def of(items: Iterable[Item]) -> "ResultSet":
        ids = set()
        strings = set()
        for item in items:
            if isinstance(item, str):
                strings.add(item)
            else:
                ids.add(item.node_id)
        return ResultSet(frozenset(ids), frozenset(strings))

    def map_ids(self, id_map: Mapping[int, int]) -> "ResultSet":
        """Apply a node-id mapping such as ``idM`` (Section 2.3).

        Ids without an image are kept as-is prefixed impossible;
        equivalence tests require totality, so a missing id raises.
        """
        mapped = frozenset(id_map[i] for i in self.ids)
        return ResultSet(mapped, self.strings)

    def is_empty(self) -> bool:
        return not self.ids and not self.strings

    def __len__(self) -> int:
        return len(self.ids) + len(self.strings)


class _Evaluator:
    def __init__(self, root: ElementNode) -> None:
        self._order: dict[int, int] = {}
        self._next = 0
        self._index(root)

    def _index(self, root: ElementNode) -> None:
        for node in root.iter():
            self._order[node.node_id] = self._next
            self._next += 1

    def order_key(self, item: Item) -> tuple[int, int]:
        if isinstance(item, str):
            return (1, 0)
        return (0, self._order.get(item.node_id, 1 << 30))

    def _dedup(self, items: list[Item]) -> list[Item]:
        seen_ids: set[int] = set()
        seen_strings: set[str] = set()
        out: list[Item] = []
        for item in items:
            if isinstance(item, str):
                if item not in seen_strings:
                    seen_strings.add(item)
                    out.append(item)
            elif item.node_id not in seen_ids:
                seen_ids.add(item.node_id)
                out.append(item)
        # Elements in document order; strings keep discovery order after.
        elements = sorted((i for i in out if not isinstance(i, str)),
                          key=self.order_key)
        strings = [i for i in out if isinstance(i, str)]
        return [*elements, *strings]

    # ------------------------------------------------------------------
    def eval(self, expr: PathExpr, node: Item) -> list[Item]:
        if isinstance(expr, EmptyPath):
            return [node]
        if isinstance(node, str):
            # Strings have no further structure.
            return []
        if isinstance(expr, Label):
            return list(node.children_tagged(expr.name))
        if isinstance(expr, TextStep):
            return [c.value for c in node.children
                    if isinstance(c, TextNode)]
        if isinstance(expr, Seq):
            out: list[Item] = []
            for item in self.eval(expr.left, node):
                out.extend(self.eval(expr.right, item))
            return self._dedup(out)
        if isinstance(expr, Union):
            return self._dedup(self.eval(expr.left, node)
                               + self.eval(expr.right, node))
        if isinstance(expr, Star):
            return self._closure(expr.inner, node)
        if isinstance(expr, DescOrSelf):
            return list(node.iter_elements())
        if isinstance(expr, Qualified):
            items = self._dedup(self.eval(expr.inner, node))
            size = len(items)
            kept = [item for position, item in enumerate(items, start=1)
                    if self.holds(expr.qual, item, position, size)]
            return kept
        raise TypeError(f"cannot evaluate {expr!r}")

    def _closure(self, inner: PathExpr, node: Item) -> list[Item]:
        """``p*`` — reflexive-transitive closure of ``p`` from ``node``."""
        result: list[Item] = [node]
        seen_ids = {node.node_id} if not isinstance(node, str) else set()
        seen_strings = {node} if isinstance(node, str) else set()
        frontier: list[Item] = [node]
        while frontier:
            current = frontier.pop()
            if isinstance(current, str):
                continue
            for item in self.eval(inner, current):
                if isinstance(item, str):
                    if item not in seen_strings:
                        seen_strings.add(item)
                        result.append(item)
                elif item.node_id not in seen_ids:
                    seen_ids.add(item.node_id)
                    result.append(item)
                    frontier.append(item)
        return self._dedup(result)

    # ------------------------------------------------------------------
    def holds(self, qual: Qualifier, item: Item, position: int,
              size: int) -> bool:
        if isinstance(qual, QTrue):
            return True
        if isinstance(qual, QPos):
            return position == qual.k
        if isinstance(qual, QPath):
            return bool(self.eval(qual.path, item))
        if isinstance(qual, QText):
            return any(isinstance(result, str) and result == qual.value
                       for result in self.eval(qual.path, item))
        if isinstance(qual, QNot):
            return not self.holds(qual.inner, item, position, size)
        if isinstance(qual, QAnd):
            return (self.holds(qual.left, item, position, size)
                    and self.holds(qual.right, item, position, size))
        if isinstance(qual, QOr):
            return (self.holds(qual.left, item, position, size)
                    or self.holds(qual.right, item, position, size))
        raise TypeError(f"cannot evaluate qualifier {qual!r}")


def evaluate(expr: PathExpr, context: ElementNode) -> list[Item]:
    """Evaluate ``expr`` at ``context``; document-ordered item list.

    >>> from repro.xtree.nodes import elem
    >>> from repro.xpath.parser import parse_xr
    >>> t = elem("r", elem("a", "x"), elem("a", "y"))
    >>> evaluate(parse_xr("a[position()=2]/text()"), t)
    ['y']
    """
    root = context.root()
    assert isinstance(root, ElementNode)
    return _Evaluator(root).eval(expr, context)


def evaluate_set(expr: PathExpr, context: ElementNode) -> ResultSet:
    """``v[[p]]`` as a :class:`ResultSet` (ids + strings)."""
    return ResultSet.of(evaluate(expr, context))


def holds_at(qual: Qualifier, node: ElementNode,
             position: int = 1, size: int = 1) -> bool:
    """Evaluate a qualifier at a node (used by XSLT match patterns)."""
    root = node.root()
    assert isinstance(root, ElementNode)
    return _Evaluator(root).holds(qual, node, position, size)
