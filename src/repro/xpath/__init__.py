"""Regular XPath ``XR`` and the XPath fragment ``X`` (paper Section 2.2).

Grammar (Marx 2004, as quoted in the paper)::

    p ::= ε | A | p/text() | p/p | p ∪ p | p* | p[q]
    q ::= p | p/text() = 'c' | position() = k | ¬q | q ∧ q | q ∨ q

The fragment ``X`` replaces ``p*`` with ``p//p`` (descendant-or-self).
Concrete syntax accepted by :func:`parse_xr`: ``/`` child steps, ``//``
descendant-or-self, ``|`` or ``∪`` union, postfix ``*`` Kleene star,
``[…]`` qualifiers with ``not/and/or``, ``position()=k``,
``p/text()='c'`` and ``.`` for the empty path.

Evaluation follows Section 2.2: the result of ``p`` at a context node is
the set of node ids reachable via ``p`` plus the string values produced
by ``…/text()`` sub-queries.
"""

from repro.xpath.ast import (
    DescOrSelf,
    EmptyPath,
    Label,
    PathExpr,
    QAnd,
    QNot,
    QOr,
    QPath,
    QPos,
    QText,
    QTrue,
    Qualified,
    Qualifier,
    Seq,
    Star,
    TextStep,
    Union,
    contains_descendant,
    contains_star,
    lower_descendants,
    query_size,
    seq_of,
    union_of,
)
from repro.xpath.parser import XPathParseError, parse_qualifier, parse_xr
from repro.xpath.evaluator import ResultSet, evaluate, evaluate_set
from repro.xpath.paths import PathStep, XRPath

__all__ = [
    "DescOrSelf",
    "EmptyPath",
    "Label",
    "PathExpr",
    "PathStep",
    "QAnd",
    "QNot",
    "QOr",
    "QPath",
    "QPos",
    "QText",
    "QTrue",
    "Qualified",
    "Qualifier",
    "ResultSet",
    "Seq",
    "Star",
    "TextStep",
    "Union",
    "XPathParseError",
    "XRPath",
    "contains_descendant",
    "contains_star",
    "evaluate",
    "evaluate_set",
    "lower_descendants",
    "parse_qualifier",
    "parse_xr",
    "query_size",
    "seq_of",
    "union_of",
]
