"""Parser for the concrete ``XR`` syntax (paper Section 2.2).

Examples from the paper all parse::

    courses/current/course[basic/cno/text()='CS331']/
        (category/mandatory/regular/required/prereq/course)*
    //B
    (A/(B | C))*
    A[position()=2]
"""

from __future__ import annotations

import re
from typing import Optional

from repro.xpath.ast import (
    DescOrSelf,
    EmptyPath,
    Label,
    PathExpr,
    QAnd,
    QNot,
    QOr,
    QPath,
    QPos,
    QText,
    QTrue,
    Qualified,
    Qualifier,
    Seq,
    Star,
    TextStep,
    Union,
)


class XPathParseError(ValueError):
    """Raised on malformed XR syntax."""


_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<dslash>//)
  | (?P<slash>/)
  | (?P<union>\||∪)
  | (?P<star>\*)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<lbr>\[)
  | (?P<rbr>\])
  | (?P<eq>=)
  | (?P<bang>!|¬)
  | (?P<dot>\.)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>\d+)
  | (?P<name>[A-Za-z_][\w.\-]*)
""", re.VERBOSE)

_KEYWORDS = {"and", "or", "not", "text", "position", "true", "union"}


class _Tokens:
    def __init__(self, source: str) -> None:
        self.source = source
        self.items: list[tuple[str, str]] = []
        pos = 0
        while pos < len(source):
            match = _TOKEN_RE.match(source, pos)
            if not match:
                raise XPathParseError(
                    f"unexpected character {source[pos]!r} at {pos} "
                    f"in {source!r}")
            pos = match.end()
            kind = match.lastgroup
            if kind == "ws":
                continue
            assert kind is not None
            self.items.append((kind, match.group()))
        self.index = 0

    def peek(self, offset: int = 0) -> tuple[str, str]:
        position = self.index + offset
        if position < len(self.items):
            return self.items[position]
        return ("eof", "")

    def next(self) -> tuple[str, str]:
        token = self.peek()
        self.index += 1
        return token

    def take(self, kind: str, value: Optional[str] = None) -> bool:
        actual_kind, actual_value = self.peek()
        if actual_kind == kind and (value is None or actual_value == value):
            self.index += 1
            return True
        return False

    def expect(self, kind: str) -> str:
        actual_kind, actual_value = self.next()
        if actual_kind != kind:
            raise XPathParseError(
                f"expected {kind}, found {actual_value!r} in {self.source!r}")
        return actual_value


def parse_xr(source: str) -> PathExpr:
    """Parse an ``XR`` (or ``X``) query string.

    >>> print(parse_xr("A/B[position()=2] | //C"))
    A/B[position()=2] | descendant-or-self()/C
    """
    tokens = _Tokens(source)
    expr = _parse_union(tokens)
    if tokens.peek()[0] != "eof":
        raise XPathParseError(
            f"trailing tokens at {tokens.peek()[1]!r} in {source!r}")
    return expr


def parse_qualifier(source: str) -> Qualifier:
    """Parse a qualifier string (the ``q`` grammar)."""
    tokens = _Tokens(source)
    qual = _parse_qual_or(tokens)
    if tokens.peek()[0] != "eof":
        raise XPathParseError(
            f"trailing tokens at {tokens.peek()[1]!r} in {source!r}")
    return qual


# -- path grammar ---------------------------------------------------------

def _parse_union(tokens: _Tokens) -> PathExpr:
    expr = _parse_seq(tokens)
    while tokens.take("union") or tokens.take("name", "union"):
        expr = Union(expr, _parse_seq(tokens))
    return expr


def _parse_seq(tokens: _Tokens) -> PathExpr:
    # A leading // means descendant-or-self from the context node.
    if tokens.take("dslash"):
        expr: PathExpr = Seq(DescOrSelf(), _parse_postfix(tokens))
    else:
        expr = _parse_postfix(tokens)
    while True:
        if tokens.take("slash"):
            expr = Seq(expr, _parse_postfix(tokens))
        elif tokens.take("dslash"):
            expr = Seq(expr, Seq(DescOrSelf(), _parse_postfix(tokens)))
        else:
            return expr


def _parse_postfix(tokens: _Tokens) -> PathExpr:
    expr = _parse_atom(tokens)
    while True:
        if tokens.take("star"):
            expr = Star(expr)
        elif tokens.take("lbr"):
            qual = _parse_qual_or(tokens)
            tokens.expect("rbr")
            expr = Qualified(expr, qual)
        else:
            return expr


def _parse_atom(tokens: _Tokens) -> PathExpr:
    kind, value = tokens.peek()
    if kind == "lpar":
        tokens.next()
        expr = _parse_union(tokens)
        tokens.expect("rpar")
        return expr
    if kind == "dot":
        tokens.next()
        return EmptyPath()
    if kind == "name":
        if value == "text" and tokens.peek(1) == ("lpar", "("):
            tokens.next()
            tokens.next()
            tokens.expect("rpar")
            return TextStep()
        tokens.next()
        return Label(value)
    raise XPathParseError(
        f"expected a step, found {value!r} in {tokens.source!r}")


# -- qualifier grammar ------------------------------------------------------

def _parse_qual_or(tokens: _Tokens) -> Qualifier:
    qual = _parse_qual_and(tokens)
    while tokens.peek() == ("name", "or"):
        tokens.next()
        qual = QOr(qual, _parse_qual_and(tokens))
    return qual


def _parse_qual_and(tokens: _Tokens) -> Qualifier:
    qual = _parse_qual_not(tokens)
    while tokens.peek() == ("name", "and"):
        tokens.next()
        qual = QAnd(qual, _parse_qual_not(tokens))
    return qual


def _parse_qual_not(tokens: _Tokens) -> Qualifier:
    if tokens.take("bang"):
        return QNot(_parse_qual_not(tokens))
    if tokens.peek() == ("name", "not") and tokens.peek(1) == ("lpar", "("):
        tokens.next()
        tokens.next()
        qual = _parse_qual_or(tokens)
        tokens.expect("rpar")
        return QNot(qual)
    return _parse_qual_atom(tokens)


def _parse_qual_atom(tokens: _Tokens) -> Qualifier:
    kind, value = tokens.peek()
    if kind == "name" and value == "true" and tokens.peek(1) == ("lpar", "("):
        tokens.next()
        tokens.next()
        tokens.expect("rpar")
        return QTrue()
    if (kind == "name" and value == "position"
            and tokens.peek(1) == ("lpar", "(")):
        tokens.next()
        tokens.next()
        tokens.expect("rpar")
        tokens.expect("eq")
        number = tokens.expect("number")
        return QPos(int(number))
    if kind == "lpar":
        # Could be a parenthesised boolean or a parenthesised path;
        # try boolean first by scanning for and/or/not at depth 1.
        if _looks_boolean(tokens):
            tokens.next()
            qual = _parse_qual_or(tokens)
            tokens.expect("rpar")
            return qual
    # Otherwise: a path, optionally compared to a string.
    path = _parse_union(tokens)
    if tokens.take("eq"):
        literal = tokens.expect("string")
        return QText(path, literal[1:-1])
    return QPath(path)


def _looks_boolean(tokens: _Tokens) -> bool:
    """Peek inside ``(...)`` for top-level and/or/not — cheap disambiguation."""
    depth = 0
    for offset in range(len(tokens.items) - tokens.index):
        kind, value = tokens.peek(offset)
        if kind == "lpar":
            depth += 1
        elif kind == "rpar":
            depth -= 1
            if depth == 0:
                return False
        elif depth == 1 and kind == "name" and value in ("and", "or", "not"):
            return True
        elif kind == "eof":
            return False
    return False
