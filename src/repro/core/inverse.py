"""The inverse mapping ``σd⁻¹`` (Theorems 3.3 and 4.3).

Given ``σd(T1)`` produced by InstMap, the source document ``T1`` is
reconstructed *without* access to ``idM``: the embedding's paths are
deterministic on genuine images (AND paths pin every star step; OR
paths diverge on OR edges, refinement R1), so the inverse simply walks
``path(A, B)`` below each image node:

* concatenation: each occurrence edge's path leads to the image of the
  corresponding child;
* disjunction: exactly one alternative's path exists (the others are
  absent because the OR divergence node holds the chosen alternative);
* star: the multiplicity carrier's children enumerate the source
  children in order; the path suffix leads to each image;
* str: the text path's endpoint carries the original PCDATA.

The reconstruction runs in ``O(|σd(T)| · |σ|)`` — within the quadratic
bound of Theorem 4.3(a).  A second, query-driven implementation that
follows the proof of Theorem 3.3 literally lives in
:mod:`repro.core.inverse_queries`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.embedding import STR_KEY, SchemaEmbedding
from repro.core.errors import InverseError
from repro.dtd.model import Concat, Disjunction, Empty, Star, Str
from repro.xpath.paths import PathStep
from repro.xtree.nodes import ElementNode, TextNode


def _walk(node: ElementNode, steps: tuple[PathStep, ...],
          ) -> Optional[ElementNode]:
    """Deterministic path walk: ``step.pos``-th same-labelled child
    (default first).  Returns ``None`` when the path is absent."""
    current = node
    for step in steps:
        matches = current.children_tagged(step.label)
        index = (step.pos if step.pos is not None else 1) - 1
        if index >= len(matches):
            return None
        current = matches[index]
    return current


class _Inverter:
    def __init__(self, embedding: SchemaEmbedding, strict: bool) -> None:
        self.embedding = embedding
        self.source = embedding.source
        self.strict = strict

    def rebuild(self, image: ElementNode, source_type: str) -> ElementNode:
        """Iterative preorder rebuild (explicit stack): children attach
        to their parent in production order when visited, so deep
        documents never recurse."""
        root = ElementNode(source_type)
        stack: list[tuple[ElementNode, str, ElementNode]] = [
            (image, source_type, root)]
        while stack:
            image, source_type, node = stack.pop()
            pending = self._rebuild_one(image, source_type, node)
            if pending:
                stack.extend(reversed(pending))
        return root

    def _rebuild_one(self, image: ElementNode, source_type: str,
                     node: ElementNode,
                     ) -> list[tuple[ElementNode, str, ElementNode]]:
        """Rebuild one node; append (created, not yet filled) children
        and return their work items."""
        production = self.source.production(source_type)
        pending: list[tuple[ElementNode, str, ElementNode]] = []

        if isinstance(production, Str):
            info = self.embedding.info((source_type, STR_KEY, 1))
            holder = _walk(image, info.path.steps)
            if holder is None:
                raise InverseError(
                    f"text path {info.path} missing below <{image.tag}> "
                    f"(image of {source_type})")
            # An endpoint with no (or an empty) text node is the empty
            # string, whose canonical tree form is an empty element: XML
            # cannot represent an explicit empty text run, so
            # "<a></a>" must survive σd / σd⁻¹ (and a serialise +
            # re-parse of the mapped document) unchanged.  Element
            # content at the endpoint is still a malformed image.
            value = holder.child_text()
            if value is None and holder.children:
                raise InverseError(
                    f"text path {info.path} endpoint <{holder.tag}> holds "
                    f"element content (image of {source_type})")
            if value:
                node.append(TextNode(value))
        elif isinstance(production, Empty):
            pass
        elif isinstance(production, Concat):
            seen: dict[str, int] = {}
            for child_type in production.children:
                seen[child_type] = seen.get(child_type, 0) + 1
                info = self.embedding.info(
                    (source_type, child_type, seen[child_type]))
                target = _walk(image, info.path.steps)
                if target is None:
                    raise InverseError(
                        f"AND path {info.path} missing below <{image.tag}> "
                        f"(image of {source_type})")
                child = ElementNode(child_type)
                node.append(child)
                pending.append((target, child_type, child))
        elif isinstance(production, Disjunction):
            matches: list[tuple[str, ElementNode]] = []
            for child_type in production.children:
                info = self.embedding.info((source_type, child_type, 1))
                target = _walk(image, info.path.steps)
                if target is not None:
                    matches.append((child_type, target))
                    if not self.strict:
                        break
            if len(matches) > 1:
                raise InverseError(
                    f"ambiguous disjunction at image of {source_type}: "
                    f"{[m[0] for m in matches]} all present")
            if not matches:
                if not production.optional:
                    raise InverseError(
                        f"no alternative of {source_type} present below "
                        f"<{image.tag}>")
            else:
                child_type, target = matches[0]
                child = ElementNode(child_type)
                node.append(child)
                pending.append((target, child_type, child))
        elif isinstance(production, Star):
            info = self.embedding.info((source_type, production.child, 1))
            carrier = info.carrier_index
            parent = _walk(image, info.path.steps[:carrier])
            if parent is None:
                raise InverseError(
                    f"STAR path prefix {info.path.prefix(carrier)} missing "
                    f"below <{image.tag}> (image of {source_type})")
            label = info.path.steps[carrier].label
            suffix = info.path.steps[carrier + 1:]
            for instance in parent.children_tagged(label):
                target = _walk(instance, suffix)
                if target is None:
                    raise InverseError(
                        f"STAR path suffix missing under <{label}> instance "
                        f"(image of {source_type})")
                child = ElementNode(production.child)
                node.append(child)
                pending.append((target, production.child, child))
        return pending


def run_invert(embedding: SchemaEmbedding, target_root: ElementNode,
               strict: bool = True) -> ElementNode:
    """The uncached inverse walk (used by the engine's compiled path)."""
    if target_root.tag != embedding.target.root:
        raise InverseError(
            f"document root <{target_root.tag}> is not the target root "
            f"<{embedding.target.root}>")
    return _Inverter(embedding, strict).rebuild(target_root,
                                                embedding.source.root)


def invert(embedding: SchemaEmbedding, target_root: ElementNode,
           strict: bool = True) -> ElementNode:
    """Reconstruct ``T1`` from ``σd(T1)``, served by the default
    compilation engine (path classifications are compiled once per
    embedding fingerprint and shared with mapping/translation).

    ``strict=True`` additionally verifies disjunction unambiguity
    (useful for fault injection tests); valid embeddings can never
    trigger it (Theorem 4.1 + R1).

    >>> # σd⁻¹(σd(T)) = T  — exercised throughout the test suite.
    """
    # Convenience wrapper delegating to the default engine; the
    # engine package imports this module.
    # lint: allow-lazy-import
    from repro.engine.session import default_engine

    return default_engine().invert(embedding, target_root, strict=strict)
