"""Exception hierarchy and validity-violation records for the core."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EmbeddingError(ValueError):
    """A schema embedding is ill-formed or violates validity conditions."""


class InverseError(ValueError):
    """The inverse mapping could not reconstruct the source document."""


class TranslationError(ValueError):
    """Query translation failed (e.g. the query is not over the source)."""


class ViolationCode(enum.Enum):
    """Why a path mapping fails the Section 4.1 validity conditions."""

    BAD_ROOT = "root must map to root"
    LAMBDA_MISSING = "type mapping is not total"
    LAMBDA_INVALID = "att(A, lambda(A)) must be positive"
    MISSING_PATH = "no path for a schema edge"
    NOT_LABEL_PATH = "path does not denote a label path in the target"
    WRONG_ENDPOINT = "path does not end at lambda(B)"
    EMPTY_PATH = "XR paths must be nonempty"
    NOT_AND_PATH = "concatenation edge requires an AND path"
    NOT_OR_PATH = "disjunction edge requires an OR path"
    NOT_STAR_PATH = "star edge requires a STAR path"
    NOT_TEXT_PATH = "str production requires an AND path ending in text()"
    PREFIX_CONFLICT = "sibling paths must be prefix-free"
    OR_DIVERGENCE = "disjunction paths must diverge on OR edges (R1)"
    OPTIONAL_SIGNAL = "optional alternative indistinguishable from default (R2)"


@dataclass(frozen=True)
class ValidityViolation:
    """One violated condition, attributed to a source type/edge."""

    code: ViolationCode
    source_type: str
    detail: str = ""

    def __str__(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        return f"[{self.code.name}] at {self.source_type!r}{suffix}"
