"""The separating mappings of Theorem 3.1 (and Example 2.1 / Fig. 2).

Theorem 3.1 splits invertibility from query preservation:

1. the **chain mapping** of Fig. 2 is invertible but not query
   preserving w.r.t. the XPath fragment ``X``: the source query ``//B``
   needs the target query ``A^{3k+2}`` — expressible in ``XR`` as
   ``A/A/(A/A/A)*`` but not in ``X`` (no Kleene star);
2. the **sorting mapping** (reordering ``A`` children by string value)
   is query preserving w.r.t. ``X`` without ``position()`` but not
   invertible (the original order is lost).

Both mappings are *not* schema embeddings (the chain mapping maps AND
edges onto OR paths; the sorting mapping is not injective) — they exist
precisely to show what the embedding framework rules out.
"""

from __future__ import annotations

from repro.dtd.model import DTD
from repro.schema import load_schema
from repro.xpath.ast import PathExpr
from repro.xpath.parser import parse_xr
from repro.xtree.nodes import ElementNode, TextNode


# -- Theorem 3.1(1): the Fig. 2 chain mapping ---------------------------------

def fig2_source_dtd() -> DTD:
    """``S1``: r → A;  A → B, C;  B → A + ε;  C → ε."""
    return load_schema("""
        r -> A
        A -> B, C
        B -> A + eps
        C -> eps
    """, name="fig2-source")


def fig2_target_dtd() -> DTD:
    """``S2``: r → A;  A → A + ε."""
    return load_schema("""
        r -> A
        A -> A + eps
    """, name="fig2-target")


def fig2_map(source_root: ElementNode) -> tuple[ElementNode, dict[int, int]]:
    """The mapping σd of Example 2.1: every source node becomes one
    link of a single ``A`` chain.

    ``path(r,A) = A``, ``path(A,B) = A``, ``path(A,C) = A/A``,
    ``path(B,A) = A/A`` — source ``A``/``B``/``C`` nodes land at chain
    depths ``3k+1`` / ``3k+2`` / ``3k+3``.  Returns the target tree and
    ``idM`` (target id → source id).
    """
    target_root = ElementNode("r")
    id_map = {target_root.node_id: source_root.node_id}
    chain_tip = target_root

    def extend(count: int) -> ElementNode:
        nonlocal chain_tip
        for _ in range(count):
            nxt = ElementNode("A")
            chain_tip.append(nxt)
            chain_tip = nxt
        return chain_tip

    node = source_root.element_children()[0] if source_root.element_children() else None
    # Walk the source spine r/A/B/A/B/… building the chain.
    current = node
    while current is not None:
        assert current.tag == "A"
        a_image = extend(1)                    # A at depth 3k+1
        id_map[a_image.node_id] = current.node_id
        b_child = current.children_tagged("B")[0]
        c_child = current.children_tagged("C")[0]
        b_image = extend(1)                    # B at depth 3k+2
        id_map[b_image.node_id] = b_child.node_id
        c_image = extend(1)                    # C at depth 3k+3
        id_map[c_image.node_id] = c_child.node_id
        descend = b_child.children_tagged("A")
        current = descend[0] if descend else None
    return target_root, id_map


def fig2_unmap(target_root: ElementNode) -> ElementNode:
    """The inverse of :func:`fig2_map` — σd is invertible."""
    source_root = ElementNode("r")
    chain: list[ElementNode] = []
    node = target_root
    while node.element_children():
        node = node.element_children()[0]
        chain.append(node)
    if len(chain) % 3 != 0:
        raise ValueError("chain length must be a multiple of 3")
    parent = source_root
    for index in range(0, len(chain), 3):
        a_node = ElementNode("A")
        parent.append(a_node)
        b_node = ElementNode("B")
        c_node = ElementNode("C")
        a_node.append(b_node)
        a_node.append(c_node)
        parent = b_node
    return source_root


def fig2_translated_descendant_b() -> PathExpr:
    """The target XR query equivalent to the source ``//B``:
    ``A^{3k+2}``, i.e. ``A/A/(A/A/A)*`` — expressible in XR but not in
    the fragment ``X`` (the separation of Theorem 3.1(1))."""
    return parse_xr("A/A/(A/A/A)*")


def fig2_source_descendant_b() -> PathExpr:
    return parse_xr("//B")


# -- Theorem 3.1(2): the sorting mapping -----------------------------------------

def sorting_dtd() -> DTD:
    """``S1 = S2``: r → A*;  A → str."""
    return load_schema("""
        r -> A*
        A -> str
    """, name="sorting")


def sorting_map(source_root: ElementNode) -> ElementNode:
    """Reorder the ``A`` children by their string values.

    A bijection on nodes, but the original child order is lost, so the
    mapping is **not invertible**; yet every ``X`` query without
    ``position()`` (forms ``ε``, ``A``, ``A[q]`` with text-equality
    qualifiers) is preserved by the identity translation.
    """
    target_root = ElementNode("r")
    children = sorted(source_root.element_children(),
                      key=lambda a: a.child_text() or "")
    for child in children:
        copy = ElementNode("A")
        copy.append(TextNode(child.child_text() or ""))
        target_root.append(copy)
    return target_root


def sorting_translate(query: PathExpr) -> PathExpr:
    """The identity translation — sufficient for position-free ``X``."""
    return query
