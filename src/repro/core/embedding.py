"""Schema embeddings ``σ = (λ, path)`` and their validity (Section 4.1).

A *path mapping* from ``S1`` to ``S2`` is a pair of a type mapping
``λ : E1 → E2`` (with ``λ(r1) = r2``) and a function ``path`` assigning
to each schema-graph edge ``(A, B)`` an XR path from ``λ(A)`` to
``λ(B)`` in ``S2``.  The mapping is *valid for A* when, based on
``P1(A)``:

* concatenation — each ``path(A, Bi)`` is an AND path, and is not a
  prefix of any sibling ``path(A, Bj)``;
* disjunction — each path is an OR path, prefix-free among siblings,
  and (refinement R1) the first divergence of any two sibling paths is
  on OR edges of the same target disjunction node; for an optional type
  (footnote 1) the path must not occur in the default completion of
  ``λ(A)`` (refinement R2);
* star — the path is a STAR path;
* str — the path is an AND path ending with ``text()``.

A *schema embedding* w.r.t. a similarity matrix ``att`` is a path
mapping valid for every ``A`` whose λ is valid w.r.t. ``att``.

Edges are keyed ``(A, B, occ)`` — ``occ`` distinguishes repeated
concatenation children (Fig. 3(c)); a ``str`` production's pseudo-edge
is keyed ``(A, STR_KEY, 1)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Union

from repro.core.errors import (
    EmbeddingError,
    ValidityViolation,
    ViolationCode,
)
from repro.core.similarity import SimilarityMatrix
from repro.dtd.mindef import MinDef
from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    EdgeKind,
    Star,
    Str,
)
from repro.xpath.evaluator import evaluate
from repro.xpath.paths import (
    PathClassError,
    PathInfo,
    XRPath,
    classify_path,
    first_divergence,
)

#: Pseudo-child used to key the path of a ``str`` production.
STR_KEY = "#str"

EdgeKey = tuple[str, str, int]


@dataclass
class SchemaEmbedding:
    """A schema embedding from ``source`` to ``target`` (Section 4.1)."""

    source: DTD
    target: DTD
    lam: dict[str, str]
    paths: dict[EdgeKey, XRPath]
    _infos: dict[EdgeKey, PathInfo] = field(
        default_factory=dict, repr=False, compare=False)
    _mindef: Optional[MinDef] = field(
        default=None, repr=False, compare=False)
    _fp: Optional[str] = field(default=None, init=False, repr=False,
                               compare=False)

    # -- accessors --------------------------------------------------------
    def path_for(self, source_type: str, child: str, occ: int = 1) -> XRPath:
        """``path(A, B)`` for the occ-th occurrence edge."""
        try:
            return self.paths[(source_type, child, occ)]
        except KeyError:
            raise EmbeddingError(
                f"no path for edge ({source_type}, {child}, {occ})") from None

    def str_path(self, source_type: str) -> XRPath:
        """``path(A, str)`` for a ``str`` production."""
        return self.path_for(source_type, STR_KEY)

    def target_mindef(self) -> MinDef:
        if self._mindef is None:
            self._mindef = MinDef(self.target)
        return self._mindef

    def edge_keys(self) -> Iterator[tuple[EdgeKey, str]]:
        """All required edge keys with the expected endpoint type.

        Yields ``((A, B, occ), end_type)`` where ``end_type`` is λ(B)
        for element edges and the ``str``-producing type for text paths
        (checked structurally rather than via λ).
        """
        for source_type, production in self.source.elements.items():
            if isinstance(production, Concat):
                seen: dict[str, int] = {}
                for child in production.children:
                    seen[child] = seen.get(child, 0) + 1
                    yield ((source_type, child, seen[child]), child)
            elif isinstance(production, Disjunction):
                for child in production.children:
                    yield ((source_type, child, 1), child)
            elif isinstance(production, Star):
                yield ((source_type, production.child, 1), production.child)
            elif isinstance(production, Str):
                yield ((source_type, STR_KEY, 1), STR_KEY)

    def info(self, key: EdgeKey) -> PathInfo:
        """Cached schema-graph classification of ``paths[key]``."""
        cached = self._infos.get(key)
        if cached is not None:
            return cached
        source_type = key[0]
        info = classify_path(self.paths[key], self.target,
                             self.lam[source_type])
        self._infos[key] = info
        return info

    def size(self) -> int:
        """``|σ|``: total length of all paths (complexity bounds §4.5)."""
        return sum(len(path) for path in self.paths.values()) + len(self.lam)

    # -- identity ----------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content fingerprint over ``(S1, S2, λ, path)``.

        Computed once and cached — embeddings are immutable by contract
        after construction (the classification memo behind
        :meth:`info` already depends on that); build a new embedding to
        change λ or a path.  Equal-content embeddings rebuilt from JSON
        share a fingerprint.
        """
        if self._fp is not None:
            return self._fp
        digest = hashlib.sha256()
        digest.update(self.source.fingerprint().encode("ascii"))
        digest.update(self.target.fingerprint().encode("ascii"))
        for source_type, target_type in sorted(self.lam.items()):
            digest.update(f"\x01{source_type}\x00{target_type}".encode("utf-8"))
        for (a, b, occ), path in sorted(self.paths.items()):
            digest.update(f"\x02{a}\x00{b}\x00{occ}\x00{path}".encode("utf-8"))
        self._fp = digest.hexdigest()
        return self._fp

    def __hash__(self) -> int:
        # Consistent with the dataclass __eq__ (dict comparisons are
        # insertion-order insensitive, so the hash must be too).
        return hash((hash(self.source), hash(self.target),
                     frozenset(self.lam.items()),
                     frozenset(self.paths.items())))

    def quality(self, att: SimilarityMatrix) -> float:
        """``qual(σ, att)`` (Section 4.1)."""
        return att.quality(self.lam)

    # -- validity ----------------------------------------------------------
    def violations(self, att: Optional[SimilarityMatrix] = None,
                   ) -> list[ValidityViolation]:
        """All violated validity conditions (empty list = valid)."""
        out: list[ValidityViolation] = []
        self._check_lambda(att, out)
        if out:
            # With a broken λ the path conditions are not well-posed.
            return out
        for source_type, production in self.source.elements.items():
            if isinstance(production, Concat):
                self._check_concat(source_type, production, out)
            elif isinstance(production, Disjunction):
                self._check_disjunction(source_type, production, out)
            elif isinstance(production, Star):
                self._check_star(source_type, production, out)
            elif isinstance(production, Str):
                self._check_str(source_type, out)
        return out

    def is_valid(self, att: Optional[SimilarityMatrix] = None) -> bool:
        return not self.violations(att)

    def check(self, att: Optional[SimilarityMatrix] = None) -> "SchemaEmbedding":
        """Raise :class:`EmbeddingError` listing all violations."""
        found = self.violations(att)
        if found:
            rendered = "\n  ".join(str(v) for v in found)
            raise EmbeddingError(
                f"invalid schema embedding ({len(found)} violations):\n"
                f"  {rendered}")
        return self

    # -- individual conditions ---------------------------------------------
    def _check_lambda(self, att: Optional[SimilarityMatrix],
                      out: list[ValidityViolation]) -> None:
        for source_type in self.source.types:
            if source_type not in self.lam:
                out.append(ValidityViolation(
                    ViolationCode.LAMBDA_MISSING, source_type))
            elif self.lam[source_type] not in self.target.elements:
                out.append(ValidityViolation(
                    ViolationCode.LAMBDA_MISSING, source_type,
                    f"λ({source_type}) = {self.lam[source_type]!r} "
                    "is not a target type"))
        if self.lam.get(self.source.root) != self.target.root:
            out.append(ValidityViolation(
                ViolationCode.BAD_ROOT, self.source.root,
                f"λ({self.source.root}) must be {self.target.root}"))
        if att is not None:
            for source_type, target_type in self.lam.items():
                if att.get(source_type, target_type) <= 0.0:
                    out.append(ValidityViolation(
                        ViolationCode.LAMBDA_INVALID, source_type,
                        f"att({source_type}, {target_type}) = 0"))

    def _classified(self, key: EdgeKey, expected_child: str,
                    out: list[ValidityViolation]) -> Optional[PathInfo]:
        """Fetch + classify a path; record structural violations."""
        source_type = key[0]
        path = self.paths.get(key)
        if path is None:
            out.append(ValidityViolation(
                ViolationCode.MISSING_PATH, source_type,
                f"edge ({key[0]}, {key[1]}, occ {key[2]})"))
            return None
        if path.is_empty():
            out.append(ValidityViolation(
                ViolationCode.EMPTY_PATH, source_type, str(key)))
            return None
        try:
            info = self.info(key)
        except PathClassError as exc:
            out.append(ValidityViolation(
                ViolationCode.NOT_LABEL_PATH, source_type, str(exc)))
            return None
        if expected_child != STR_KEY:
            expected_end = self.lam[expected_child]
            if info.end_type != expected_end:
                out.append(ValidityViolation(
                    ViolationCode.WRONG_ENDPOINT, source_type,
                    f"path {path} ends at {info.end_type!r}, "
                    f"expected λ({expected_child}) = {expected_end!r}"))
                return None
        return info

    def _check_concat(self, source_type: str, production: Concat,
                      out: list[ValidityViolation]) -> None:
        infos: list[tuple[EdgeKey, PathInfo]] = []
        seen: dict[str, int] = {}
        for child in production.children:
            seen[child] = seen.get(child, 0) + 1
            key = (source_type, child, seen[child])
            info = self._classified(key, child, out)
            if info is None:
                continue
            if not info.is_and_path():
                out.append(ValidityViolation(
                    ViolationCode.NOT_AND_PATH, source_type,
                    f"path({source_type},{child}#{seen[child]}) = "
                    f"{info.path} (OR edge or unpinned star)"))
                continue
            infos.append((key, info))
        self._check_prefix_free(source_type, infos, out)

    def _check_disjunction(self, source_type: str, production: Disjunction,
                           out: list[ValidityViolation]) -> None:
        infos: list[tuple[EdgeKey, PathInfo]] = []
        for child in production.children:
            key = (source_type, child, 1)
            info = self._classified(key, child, out)
            if info is None:
                continue
            if not info.is_or_path():
                out.append(ValidityViolation(
                    ViolationCode.NOT_OR_PATH, source_type,
                    f"path({source_type},{child}) = {info.path}"))
                continue
            infos.append((key, info))
        self._check_prefix_free(source_type, infos, out)
        # R1: pairwise first divergence on OR edges.
        for i, (key1, info1) in enumerate(infos):
            for key2, info2 in infos[i + 1:]:
                div = first_divergence(info1.path, info2.path)
                if div is None:
                    continue  # prefix conflict already recorded
                if (info1.edges[div].kind is not EdgeKind.OR
                        or info2.edges[div].kind is not EdgeKind.OR):
                    out.append(ValidityViolation(
                        ViolationCode.OR_DIVERGENCE, source_type,
                        f"{info1.path} vs {info2.path} diverge on "
                        f"{info1.edges[div].kind}/{info2.edges[div].kind} "
                        "edges"))
        # R2: optional alternatives must be absent from the default
        # completion of λ(A).
        if production.optional:
            default = self.target_mindef().instance(self.lam[source_type])
            for _key, info in infos:
                if evaluate(info.path.to_expr(), default):
                    out.append(ValidityViolation(
                        ViolationCode.OPTIONAL_SIGNAL, source_type,
                        f"{info.path} matches mindef({self.lam[source_type]})"))

    def _check_star(self, source_type: str, production: Star,
                    out: list[ValidityViolation]) -> None:
        key = (source_type, production.child, 1)
        info = self._classified(key, production.child, out)
        if info is not None and not info.is_star_path():
            out.append(ValidityViolation(
                ViolationCode.NOT_STAR_PATH, source_type,
                f"path({source_type},{production.child}) = {info.path}"))

    def _check_str(self, source_type: str,
                   out: list[ValidityViolation]) -> None:
        key = (source_type, STR_KEY, 1)
        path = self.paths.get(key)
        if path is None:
            out.append(ValidityViolation(
                ViolationCode.MISSING_PATH, source_type,
                f"path({source_type}, str)"))
            return
        if not path.text:
            out.append(ValidityViolation(
                ViolationCode.NOT_TEXT_PATH, source_type,
                f"{path} does not end with text()"))
            return
        try:
            info = self.info(key)
        except PathClassError as exc:
            out.append(ValidityViolation(
                ViolationCode.NOT_LABEL_PATH, source_type, str(exc)))
            return
        if info.has_or or info.unpinned_star_indices:
            out.append(ValidityViolation(
                ViolationCode.NOT_TEXT_PATH, source_type,
                f"{path} must be an AND path ending in text()"))

    def _check_prefix_free(self, source_type: str,
                           infos: list[tuple[EdgeKey, PathInfo]],
                           out: list[ValidityViolation]) -> None:
        for i, (_key1, info1) in enumerate(infos):
            for _key2, info2 in infos[i + 1:]:
                if info1.path.is_prefix_of(info2.path):
                    out.append(ValidityViolation(
                        ViolationCode.PREFIX_CONFLICT, source_type,
                        f"{info1.path} is a prefix of {info2.path}"))
                elif info2.path.is_prefix_of(info1.path):
                    out.append(ValidityViolation(
                        ViolationCode.PREFIX_CONFLICT, source_type,
                        f"{info2.path} is a prefix of {info1.path}"))


PathLike = Union[str, XRPath]


def build_embedding(source: DTD, target: DTD, lam: Mapping[str, str],
                    paths: Mapping[Union[tuple[str, str], EdgeKey], PathLike],
                    ) -> SchemaEmbedding:
    """Convenience constructor: parse path strings, default occ to 1.

    ``paths`` keys may be ``(A, B)`` or ``(A, B, occ)``; ``"str"`` or
    ``STR_KEY`` both key a text path.  See Example 4.2 reproduced in
    ``repro.workloads.library``.
    """
    parsed: dict[EdgeKey, XRPath] = {}
    for key, value in paths.items():
        if len(key) == 2:
            source_type, child = key  # type: ignore[misc]
            occ = 1
        else:
            source_type, child, occ = key  # type: ignore[misc]
        if child == "str":
            child = STR_KEY
        path = XRPath.parse(value) if isinstance(value, str) else value
        parsed[(source_type, child, occ)] = path
    return SchemaEmbedding(source, target, dict(lam), parsed)
