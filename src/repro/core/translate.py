"""Schema-directed translation ``Tr`` of XR queries (Section 4.4).

``Tr`` maps an XR query over the source schema ``S1`` to an ANFA over
the target such that ``Q(T) = Tr(Q)(σd(T))`` modulo ``idM`` for every
instance ``T`` (Theorem 4.2).  The translation is *schema-directed*:
each subquery is translated relative to every source element type it
may be evaluated at — the local translation ``Trl(Q1, A)`` — and final
states carry ``lab(f, M, A)``, the source type reached, which selects
the continuation context (this is what the naive edge-substitution of
Fig. 7 gets wrong; see :mod:`repro.core.naive`).

Cases (mirroring the paper):

(a) ``ε``        — single final state labelled ``A``;
(b) a label ``B`` — the automaton coding ``path(A, B)`` (a union over
    occurrence edges when ``B`` repeats in ``P1(A)``; the unpinned
    multiplicity carrier when ``P1(A) = B*``), or ``Fail`` if ``B`` is
    not a child of ``A``;
(b') ``text()``  — the automaton coding ``path(A, str)``;
(c) union        — automaton union, labs preserved;
(d) concatenation — finals labelled ``B`` are ε-wired into one embedded
    copy of ``Trl(p2, B)``;
(e) qualifiers   — θ annotations per final lab; when the qualifier
    contains ``position()`` it becomes a *call transition* whose filter
    sees the result-list index (refinement R6);
(f)–(j) qualifier translation into boolean trees over sub-ANFAs;
(k) Kleene star  — the worklist construction over source types with
    ``visited`` flags, ε-wiring same-lab finals back to the per-type
    entry states (at most ``|S1|`` iterations).

The ANFA size is bounded by ``O(|Q| · |σ| · |S1|)`` (Theorem 4.3),
measured in ``benchmarks/bench_query_translation.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.anfa.compose import (
    left_spine,
    translated_concat,
    translated_union,
)
from repro.anfa.model import (
    ANFA,
    CallSpec,
    QualAtomExists,
    QualAtomPos,
    QualAtomText,
    QualExpr,
    QualFalse,
    QualTrue,
    STR_LAB,
    fail_anfa,
    qual_and,
    qual_has_position,
    qual_not,
    qual_or,
)
from repro.core.embedding import SchemaEmbedding
from repro.core.errors import TranslationError
from repro.dtd.model import Concat, Disjunction, Star as StarProd, Str
from repro.xpath.ast import (
    EmptyPath,
    Label,
    PathExpr,
    QAnd,
    QNot,
    QOr,
    QPath,
    QPos,
    QText,
    QTrue,
    Qualified,
    Qualifier,
    Seq,
    Star,
    TextStep,
    Union,
    contains_descendant,
    lower_descendants,
)
from repro.xpath.paths import XRPath


def _prewarm_spine(query: PathExpr) -> None:
    """Populate the per-node structural-hash and ``//`` caches
    bottom-up along the left spine, so the memo probes and the
    ``contains_descendant`` gate each descend one level instead of the
    whole chain — a depth-512 spine would otherwise exhaust the
    recursion limit before composition even starts."""
    spine: list[PathExpr] = []
    node = query
    while isinstance(node, (Seq, Union)):
        spine.append(node)
        node = node.left
    for node in reversed(spine):
        hash(node)
        contains_descendant(node)


class Translator:
    """Compiled translator for one embedding (memoises ``Trl``).

    The memo is keyed structurally on ``(subquery, context)`` — the XR
    AST nodes are immutable with structural equality — so a long-lived
    Translator (e.g. inside a
    :class:`repro.engine.compiled.CompiledEmbedding`) reuses work
    across *different* queries sharing subexpressions, not just within
    one translation.  ``prime_edges`` precompiles the per-edge automata
    every translation bottoms out in.  The memo is bounded: past
    ``memo_limit`` entries it is flushed wholesale (entries rebuild on
    demand), so a long-running server with high query diversity cannot
    grow it without bound.
    """

    #: Flush threshold for the structural memo.
    memo_limit = 4096

    def __init__(self, embedding: SchemaEmbedding,
                 prime: bool = True) -> None:
        self.embedding = embedding
        self.source = embedding.source
        self._memo: dict[tuple[PathExpr, str], ANFA] = {}
        self._qual_memo: dict[tuple[Qualifier, Optional[str]], QualExpr] = {}
        self._translate_memo: dict[tuple[PathExpr, str], ANFA] = {}
        if prime:
            # Compile the per-edge table up front: every translation
            # bottoms out in these automata, and a Translator is a
            # compile-once artifact (CompiledEmbedding re-priming after
            # construction is a no-op thanks to the memo).
            self.prime_edges()

    def prime_edges(self) -> int:
        """Precompile ``Trl(B, A)`` / ``Trl(text(), A)`` for every
        schema-graph edge of the source — the per-edge ANFA translation
        table.  Returns the number of table entries.

        Edges whose paths fail to translate are skipped; the same error
        surfaces later iff a query actually touches them (keeping
        behaviour identical to the lazy path for broken embeddings).
        """
        entries = 0
        for source_type, production in self.source.elements.items():
            queries: list[PathExpr] = []
            if isinstance(production, Str):
                queries.append(TextStep())
            else:
                # Order-preserving dedup: set() here would hand the
                # trim-certificate plane a hash-order edge sequence.
                queries.extend(Label(child) for child
                               in dict.fromkeys(production.child_types()))
            for query in queries:
                try:
                    self.trl(query, source_type)
                    entries += 1
                except Exception:
                    continue
        return entries

    # -- public -------------------------------------------------------------
    def translate(self, query: PathExpr,
                  context_type: Optional[str] = None) -> ANFA:
        """``Tr(Q) = Trl(Q, r1)`` (or at an explicit context type).

        Whole-query results are memoised (bounded like ``Trl``'s memo):
        repeated queries return the shared, already-trimmed automaton —
        treat it as immutable (``ANFA.copy`` for a private copy), the
        same contract as the engine's translation LRU one level up.
        """
        context = context_type or self.source.root
        if context not in self.source.elements:
            raise TranslationError(f"unknown source type {context!r}")
        _prewarm_spine(query)
        key = (query, context)
        cached = self._translate_memo.get(key)
        if cached is not None:
            return cached
        if contains_descendant(query):
            query = lower_descendants(query, self.source.types)
        result = self.trl(query, context).trim()
        if len(self._translate_memo) >= self.memo_limit:
            self._translate_memo.clear()
        self._translate_memo[key] = result
        return result

    # -- Trl ------------------------------------------------------------------
    def trl(self, query: PathExpr, context: str) -> ANFA:
        key = (query, context)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if len(self._memo) >= self.memo_limit:
            self._memo.clear()
        built = self._trl(query, context)
        self._memo[key] = built
        return built

    def _trl(self, query: PathExpr, context: str) -> ANFA:
        handler = _TRL_DISPATCH.get(type(query))
        if handler is None:
            raise TranslationError(f"cannot translate {query!r}")
        return handler(self, query, context)

    def _trl_empty(self, query: EmptyPath, context: str) -> ANFA:
        anfa = ANFA()
        anfa.set_final(anfa.start, context)
        anfa._is_trim = True
        return anfa

    # -- case (b): labels ------------------------------------------------------
    def _path_anfa(self, path: XRPath, lab: Optional[str]) -> ANFA:
        """A linear automaton coding one XR path (with local positions)."""
        anfa = ANFA()
        state = anfa.start
        for step in path.steps:
            nxt = anfa.new_state()
            anfa.add_label(state, step.label, nxt, step.pos)
            state = nxt
        if path.text:
            nxt = anfa.new_state()
            anfa.add_str(state, nxt)
            state = nxt
            lab = STR_LAB
        anfa.set_final(state, lab)
        anfa._is_trim = True  # a chain ending in its only final
        return anfa

    def _trl_label(self, label: str, context: str) -> ANFA:
        production = self.source.production(context)
        segments: list[XRPath] = []
        if isinstance(production, Concat):
            count = production.occurrence_count(label)
            segments = [self.embedding.path_for(context, label, occ)
                        for occ in range(1, count + 1)]
        elif isinstance(production, Disjunction):
            if label in production.children:
                segments = [self.embedding.path_for(context, label)]
        elif isinstance(production, StarProd):
            if label == production.child:
                segments = [self.embedding.path_for(context, label)]
        if not segments:
            return fail_anfa()
        if len(segments) == 1:
            return self._path_anfa(segments[0], label)
        anfa = ANFA()
        for segment in segments:
            piece = self._path_anfa(segment, label)
            mapping = anfa.embed(piece)
            anfa.add_eps(anfa.start, mapping.base + piece.start)
        anfa._is_trim = True  # a union of trim chains, all finals kept
        return anfa

    def _trl_text(self, context: str) -> ANFA:
        production = self.source.production(context)
        if not isinstance(production, Str):
            return fail_anfa()
        return self._path_anfa(self.embedding.str_path(context), STR_LAB)

    # -- cases (c)/(d) -----------------------------------------------------------
    # Both are left-associative, so a chain query would otherwise
    # rebuild (re-embed) its whole accumulated prefix at every level —
    # quadratic state copying.  The whole left spine is collected
    # iteratively and composed append-only instead; state numbering is
    # byte-identical to the old per-level build (see anfa.compose).
    def _trl_union(self, query: Union, context: str) -> ANFA:
        return translated_union(
            [self.trl(part, context)
             for part in left_spine(query, Union)])

    def _trl_seq(self, query: Seq, context: str) -> ANFA:
        parts = left_spine(query, Seq)
        return translated_concat(self.trl(parts[0], context), parts[1:],
                                 self.trl)

    # -- case (e): qualifiers -------------------------------------------------------
    def _trl_qualified(self, query: Qualified, context: str) -> ANFA:
        inner = self.trl(query.inner, context)
        if inner.is_fail():
            return fail_anfa()
        labs = sorted(inner.final_labs(), key=lambda lab: lab or "")
        quals = {lab: self.trl_qual(query.qual, lab) for lab in labs}

        if not any(qual_has_position(q) for q in quals.values()):
            # θ-annotation route (the paper's case (e)).  The qualifier
            # goes on a *fresh* accept-only state reached by ε from the
            # old final: θ kills runs entering its state, and a final
            # state of a Kleene-star automaton also has pass-through
            # transitions that the qualifier must not affect.
            anfa = ANFA()
            mapping = anfa.embed(inner)
            base = mapping.base
            anfa.add_eps(anfa.start, base + inner.start)
            for state, lab in inner.finals.items():
                anfa.clear_final(base + state)
                accept = anfa.new_state()
                anfa.add_eps(base + state, accept)
                anfa.set_final(accept, lab)
                anfa.annotate(accept, quals[lab])
            # Every old final gained an ε to a fresh accept state, so
            # liveness is inherited (θ does not affect trimming).
            anfa._is_trim = inner._is_trim
            return anfa

        # Positional qualifier: call transition with list-index filter.
        anfa = ANFA()
        dst_by_lab = []
        for lab in labs:
            dst = anfa.new_state()
            anfa.set_final(dst, lab)
            dst_by_lab.append((lab, dst))
        anfa.add_call(anfa.start, CallSpec(
            sub=inner,
            quals=tuple((lab, quals[lab]) for lab in labs),
            dst_by_lab=tuple(dst_by_lab)))
        anfa._is_trim = True  # start -> call -> per-lab finals
        return anfa

    # -- cases (f)-(j): qualifier translation ------------------------------------------
    def trl_qual(self, qual: Qualifier, lab: Optional[str]) -> QualExpr:
        key = (qual, lab)
        cached = self._qual_memo.get(key)
        if cached is not None:
            return cached
        if len(self._qual_memo) >= self.memo_limit:
            self._qual_memo.clear()
        built = self._trl_qual(qual, lab)
        self._qual_memo[key] = built
        return built

    def _trl_qual(self, qual: Qualifier, lab: Optional[str]) -> QualExpr:
        if isinstance(qual, QTrue):
            return QualTrue()
        if isinstance(qual, QPos):
            return QualAtomPos(qual.k)
        if lab is None or lab == STR_LAB:
            # Path qualifiers never hold on string values.
            if isinstance(qual, (QPath, QText)):
                return QualFalse()
        if isinstance(qual, QPath):
            sub = self.trl(qual.path, lab)  # type: ignore[arg-type]
            if sub.is_fail():
                return QualFalse()
            return QualAtomExists(sub.trim())
        if isinstance(qual, QText):
            sub = self.trl(qual.path, lab)  # type: ignore[arg-type]
            if sub.is_fail():
                return QualFalse()
            return QualAtomText(sub.trim(), qual.value)
        if isinstance(qual, QNot):
            return qual_not(self.trl_qual(qual.inner, lab))
        if isinstance(qual, QAnd):
            return qual_and(self.trl_qual(qual.left, lab),
                            self.trl_qual(qual.right, lab))
        if isinstance(qual, QOr):
            return qual_or(self.trl_qual(qual.left, lab),
                           self.trl_qual(qual.right, lab))
        raise TranslationError(f"cannot translate qualifier {qual!r}")

    # -- case (k): Kleene star ------------------------------------------------------
    def _trl_star(self, query: Star, context: str) -> ANFA:
        anfa = ANFA()
        anfa.set_final(anfa.start, context)  # p^0

        entries: dict[str, Optional[int]] = {}
        copies: list[tuple[int, ANFA]] = []
        pending = [context]
        bodies_trim = True
        while pending:
            source_type = pending.pop()
            if source_type in entries:
                continue
            body = self.trl(query.inner, source_type)
            if body.is_fail():
                entries[source_type] = None
                continue
            mapping = anfa.embed(body)
            entries[source_type] = mapping.base + body.start
            copies.append((mapping.base, body))
            if not body._is_trim:
                bodies_trim = False
            for lab in body.final_labs():
                if lab is not None and lab != STR_LAB and lab not in entries:
                    pending.append(lab)

        start_entry = entries.get(context)
        if start_entry is not None:
            anfa.add_eps(anfa.start, start_entry)
        for base, body in copies:
            for state, lab in body.finals.items():
                if lab is None or lab == STR_LAB:
                    continue
                entry = entries.get(lab)
                if entry is not None:
                    anfa.add_eps(base + state, entry)
        # Every embedded body keeps its finals (each p^k prefix is a
        # result) and is entered from a reachable final of its
        # discovering body, so trimness is inherited from the bodies.
        anfa._is_trim = bodies_trim
        return anfa


#: Type-keyed dispatch for ``Trl`` (one dict probe instead of an
#: isinstance chain on the hottest recursion).
_TRL_DISPATCH = {
    EmptyPath: Translator._trl_empty,
    Label: lambda self, query, context: self._trl_label(query.name, context),
    TextStep: lambda self, query, context: self._trl_text(context),
    Union: Translator._trl_union,
    Seq: Translator._trl_seq,
    Qualified: Translator._trl_qualified,
    Star: Translator._trl_star,
}


def translate_query(embedding: SchemaEmbedding, query: PathExpr,
                    context_type: Optional[str] = None) -> ANFA:
    """``Tr(Q)`` over ``embedding`` (Theorem 4.2), served by the
    default compilation engine.

    Repeated translations against one embedding reuse its compiled
    per-edge ANFA table and an LRU of whole-query results.  The result
    is an ANFA over target documents; evaluate it with
    :func:`repro.anfa.evaluate.evaluate_anfa` and map ids back through
    ``idM`` to recover ``Q(T)``.
    """
    # Convenience wrapper delegating to the default engine; the
    # engine package imports this module.
    # lint: allow-lazy-import
    from repro.engine.session import default_engine

    return default_engine().translate_query(embedding, query, context_type)
