"""The naive edge-substitution translation (Fig. 7) — a broken baseline.

Section 4.4 motivates schema-directed translation by showing that the
"appealing idea" of replacing each step ``child::B`` with ``path(·, B)``
textually is incorrect:

1. a tag may have several parents with different paths
   (``path(B, A) ≠ path(C, A)`` when translating ``(B ∪ C)/A``);
2. required target nodes added by InstMap (mindef padding) are matched
   by the substituted query even though no source node maps to them —
   the Fig. 7 example: ``r/(A ∪ B ∪ C)*`` returns the padded ``C``
   child of ``B`` on the target although ``B`` has no ``C`` child in
   the source.

``naive_translate`` implements that strategy faithfully (substituting
the union of all edge paths for each label) so tests and the ablation
benchmark can demonstrate the failure and quantify how often it bites.
"""

from __future__ import annotations

from repro.core.embedding import STR_KEY, SchemaEmbedding
from repro.xpath.ast import (
    DescOrSelf,
    EmptyPath,
    Label,
    PathExpr,
    QAnd,
    QNot,
    QOr,
    QPath,
    QText,
    Qualified,
    Qualifier,
    Seq,
    Star,
    TextStep,
    Union,
    lower_descendants,
    union_of,
)


def naive_translate(embedding: SchemaEmbedding, query: PathExpr) -> PathExpr:
    """Textually substitute ``path(A, B)`` for each label step ``B``.

    When ``B`` has several incoming source edges the substitution is
    the union of their paths (the best the strategy can do).  The
    result is an XR query over the *target* — generally **not**
    equivalent to ``Q`` (Fig. 7); see ``tests/test_fig7_naive.py``.
    """
    if query.__class__ is DescOrSelf or _has_descendant(query):
        query = lower_descendants(query, embedding.source.types)
    return _rewrite(embedding, query)


def _has_descendant(query) -> bool:
    from repro.xpath.ast import contains_descendant

    return contains_descendant(query)


def _paths_into(embedding: SchemaEmbedding, label: str) -> list[PathExpr]:
    out: list[PathExpr] = []
    seen: set[str] = set()
    for (source_type, child, _occ), path in sorted(
            embedding.paths.items(), key=lambda kv: kv[0]):
        if child != label:
            continue
        rendered = str(path)
        if rendered in seen:
            continue
        seen.add(rendered)
        out.append(path.to_expr())
    return out


def _rewrite(embedding: SchemaEmbedding, node: PathExpr) -> PathExpr:
    if isinstance(node, Label):
        pieces = _paths_into(embedding, node.name)
        if not pieces:
            return node  # dangling label: keep as-is (matches nothing)
        return union_of(pieces)
    if isinstance(node, TextStep):
        pieces = []
        for (source_type, child, _occ), path in embedding.paths.items():
            if child == STR_KEY:
                pieces.append(path.to_expr())
        unique = []
        seen: set[str] = set()
        for piece in pieces:
            if str(piece) not in seen:
                seen.add(str(piece))
                unique.append(piece)
        return union_of(unique) if unique else node
    if isinstance(node, EmptyPath):
        return node
    if isinstance(node, Seq):
        return Seq(_rewrite(embedding, node.left),
                   _rewrite(embedding, node.right))
    if isinstance(node, Union):
        return Union(_rewrite(embedding, node.left),
                     _rewrite(embedding, node.right))
    if isinstance(node, Star):
        return Star(_rewrite(embedding, node.inner))
    if isinstance(node, Qualified):
        return Qualified(_rewrite(embedding, node.inner),
                         _rewrite_qual(embedding, node.qual))
    raise TypeError(f"cannot rewrite {node!r}")


def _rewrite_qual(embedding: SchemaEmbedding, qual: Qualifier) -> Qualifier:
    if isinstance(qual, QPath):
        return QPath(_rewrite(embedding, qual.path))
    if isinstance(qual, QText):
        return QText(_rewrite(embedding, qual.path), qual.value)
    if isinstance(qual, QNot):
        return QNot(_rewrite_qual(embedding, qual.inner))
    if isinstance(qual, QAnd):
        return QAnd(_rewrite_qual(embedding, qual.left),
                    _rewrite_qual(embedding, qual.right))
    if isinstance(qual, QOr):
        return QOr(_rewrite_qual(embedding, qual.left),
                   _rewrite_qual(embedding, qual.right))
    return qual
