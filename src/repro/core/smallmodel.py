"""The small-model property of embeddings (Theorem 4.10).

If a valid embedding exists, one exists whose paths obey::

    |path(A, B)| ≤ k·|E2|        A a concatenation type (k = |P1(A)|)
    |path(A, B)| ≤ (k+1)·|E2|    A a disjunction type
    |path(A, B)| ≤ 2·|E2|        A a Kleene closure
    |path(A, B)| ≤ |E2|          B = str

The proof removes redundant cycles from the paths; this module makes
that constructive: :func:`simplify_embedding` greedily splices out
schema-graph cycles from every path as long as the embedding stays
valid, and :func:`theorem_bound` exposes the bounds (used to cap the
search space in :mod:`repro.matching` and checked by
``tests/test_small_model.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.embedding import EdgeKey, SchemaEmbedding
from repro.dtd.model import Concat, Disjunction, Production, Star, Str
from repro.xpath.paths import XRPath


def theorem_bound(production: Production, target_type_count: int) -> int:
    """The Theorem 4.10 length bound for paths of one production."""
    if isinstance(production, Concat):
        return max(1, production.size()) * target_type_count
    if isinstance(production, Disjunction):
        return (production.size() + 1) * target_type_count
    if isinstance(production, Star):
        return 2 * target_type_count
    if isinstance(production, Str):
        return target_type_count
    return target_type_count


def _type_sequence(embedding: SchemaEmbedding, key: EdgeKey,
                   path: XRPath) -> list[str]:
    """Element types visited: λ(A), then each step's label."""
    sequence = [embedding.lam[key[0]]]
    sequence.extend(step.label for step in path.steps)
    return sequence


def _try_splice(embedding: SchemaEmbedding, key: EdgeKey) -> Optional[XRPath]:
    """Find one cycle whose removal keeps the embedding valid."""
    path = embedding.paths[key]
    types = _type_sequence(embedding, key, path)
    length = len(path.steps)
    # Prefer removing the longest cycle first.
    for span in range(length, 0, -1):
        for start in range(0, length - span + 1):
            if types[start] != types[start + span]:
                continue
            candidate = XRPath(path.steps[:start] + path.steps[start + span:],
                               path.text)
            if candidate.is_empty():
                continue
            trial = SchemaEmbedding(
                embedding.source, embedding.target, embedding.lam,
                {**embedding.paths, key: candidate})
            if trial.is_valid():
                return candidate
    return None


def simplify_embedding(embedding: SchemaEmbedding) -> SchemaEmbedding:
    """Remove redundant cycles from every path (Theorem 4.10 proof).

    Returns a new valid embedding with the same λ whose paths are at
    most as long as the originals; repeated until no single cycle can
    be removed.
    """
    current = SchemaEmbedding(embedding.source, embedding.target,
                              dict(embedding.lam), dict(embedding.paths))
    changed = True
    while changed:
        changed = False
        for key in list(current.paths):
            shorter = _try_splice(current, key)
            if shorter is not None:
                current = SchemaEmbedding(
                    current.source, current.target, current.lam,
                    {**current.paths, key: shorter})
                changed = True
    return current


def check_bounds(embedding: SchemaEmbedding) -> list[str]:
    """Paths exceeding their Theorem 4.10 bound (empty = all within)."""
    violations: list[str] = []
    target_types = embedding.target.node_count()
    for (source_type, child, occ), path in embedding.paths.items():
        production = embedding.source.production(source_type)
        bound = theorem_bound(production, target_types)
        if len(path) > bound:
            violations.append(
                f"path({source_type},{child}#{occ}) has length "
                f"{len(path)} > bound {bound}")
    return violations
