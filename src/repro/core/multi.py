"""Multiple sources into one target (Section 4.5, Example 4.9).

The paper integrates documents of several source DTDs ``S1 … Sn`` into
a single target instance by embedding each ``Si`` independently
(``σi : Si → S``) — Example 4.9 merges a class document (σ1 of Example
4.2) and a student document (σ2) into one ``school`` instance.

Two mechanisms are provided:

* :func:`merge_dtds` — the schema-level construction sketched in the
  paper: a fresh root whose production concatenates the source roots
  (sources with clashing type names are prefixed apart first).  Finding
  one embedding ``σ' : S' → S`` then yields all the ``σi`` at once.
* :func:`integrate` — the instance-level overlay: run InstMap per
  source and merge the target trees.  Merging requires the embeddings
  to be *non-interfering*: at any node where two sources both map real
  data, concatenation/disjunction children must agree structurally and
  star instance lists may come from at most one source.  The school
  example satisfies this (courses vs. students subtrees).

After :func:`integrate`, each source document is recovered by the
ordinary inverse ``σi⁻¹`` — tested in ``tests/test_multi_source.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.embedding import SchemaEmbedding
from repro.core.errors import EmbeddingError
from repro.core.instmap import InstMap, MappingResult
from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    Production,
    Star,
    Str,
)
from repro.xtree.nodes import ElementNode, Node, TextNode


class IntegrationConflict(EmbeddingError):
    """Two sources map real data onto conflicting target structure."""


# -- schema-level merge -------------------------------------------------------

def merge_dtds(sources: list[DTD], root_name: str = "merged",
               name: str = "merged") -> tuple[DTD, list[dict[str, str]]]:
    """Merge source DTDs into one ``S'`` with a fresh concatenation root.

    Returns the merged DTD and, per source, the renaming applied to its
    types (identity when names were already disjoint).  This realises
    the paper's ``r' → P1(r1), …, Pn(rn)`` construction in normal form:
    the fresh root concatenates the (renamed) source roots, each keeping
    its own production.
    """
    renamings: list[dict[str, str]] = []
    used: set[str] = {root_name}
    merged: dict[str, Production] = {}
    renamed_roots: list[str] = []

    for index, source in enumerate(sources):
        renaming: dict[str, str] = {}
        for element_type in source.types:
            if element_type in used:
                renaming[element_type] = f"s{index}.{element_type}"
        renamed = source.renamed(renaming) if renaming else source
        renamings.append(renaming)
        used.update(renamed.types)
        merged.update(renamed.elements)
        renamed_roots.append(renamed.root)

    merged[root_name] = Concat(tuple(renamed_roots))
    return DTD(merged, root_name, name), renamings


# -- instance-level overlay ------------------------------------------------------

@dataclass
class IntegrationResult:
    """The merged target tree plus each source's ``idM``."""

    tree: ElementNode
    results: list[MappingResult]

    def idM(self, index: int) -> dict[int, int]:
        return self.results[index].idM


def _live_ids(result: MappingResult) -> set[int]:
    """Target nodes that carry (or dominate) real source data."""
    live: set[int] = set()
    root = result.tree

    def visit(node: Node) -> bool:
        found = node.node_id in result.idM
        if isinstance(node, ElementNode):
            for child in node.children:
                if visit(child):
                    found = True
        if found:
            live.add(node.node_id)
        return found

    visit(root)
    return live


class _Merger:
    def __init__(self, target: DTD, live1: set[int], live2: set[int]) -> None:
        self.target = target
        self.live1 = live1
        self.live2 = live2

    def merge(self, node1: ElementNode, node2: ElementNode,
              path: str) -> ElementNode:
        if node1.tag != node2.tag:
            raise IntegrationConflict(
                f"tag clash at {path}: <{node1.tag}> vs <{node2.tag}>")
        alive1 = node1.node_id in self.live1
        alive2 = node2.node_id in self.live2
        if not alive2:
            return node1
        if not alive1:
            return node2

        production = self.target.production(node1.tag)
        here = f"{path}/{node1.tag}"
        if isinstance(production, Str):
            value1, value2 = node1.child_text(), node2.child_text()
            if value1 != value2:
                raise IntegrationConflict(
                    f"text clash at {here}: {value1!r} vs {value2!r}")
            return node1
        if isinstance(production, Empty):
            return node1
        if isinstance(production, Concat):
            merged = ElementNode(node1.tag, node_id=node1.node_id)
            for child1, child2 in zip(node1.element_children(),
                                      node2.element_children()):
                merged.append(self.merge(child1, child2, here))
            return merged
        if isinstance(production, Disjunction):
            kids1 = node1.element_children()
            kids2 = node2.element_children()
            if kids1 and kids2:
                if kids1[0].tag != kids2[0].tag:
                    raise IntegrationConflict(
                        f"disjunction clash at {here}: {kids1[0].tag} vs "
                        f"{kids2[0].tag}")
                merged = ElementNode(node1.tag, node_id=node1.node_id)
                merged.append(self.merge(kids1[0], kids2[0], here))
                return merged
            return node1 if kids1 else node2
        assert isinstance(production, Star)
        kids1 = [k for k in node1.element_children()
                 if k.node_id in self.live1]
        kids2 = [k for k in node2.element_children()
                 if k.node_id in self.live2]
        if kids1 and kids2:
            raise IntegrationConflict(
                f"both sources contribute star instances at {here}; "
                "embeddings must be non-interfering")
        return node1 if kids1 or not kids2 else node2


def integrate(embeddings: list[SchemaEmbedding],
              instances: list[ElementNode]) -> IntegrationResult:
    """Map each instance with its embedding and overlay the results.

    All embeddings must share the same target DTD.  Raises
    :class:`IntegrationConflict` when the embeddings interfere.
    """
    if len(embeddings) != len(instances):
        raise EmbeddingError("one instance per embedding required")
    if not embeddings:
        raise EmbeddingError("nothing to integrate")
    target = embeddings[0].target
    for embedding in embeddings[1:]:
        if embedding.target is not target and \
                embedding.target.elements != target.elements:
            raise EmbeddingError("embeddings must share the target DTD")

    results = [InstMap(embedding).apply(instance)
               for embedding, instance in zip(embeddings, instances)]
    merged_tree = results[0].tree
    live = _live_ids(results[0])
    for result in results[1:]:
        other_live = _live_ids(result)
        merger = _Merger(target, live, other_live)
        merged_tree = merger.merge(merged_tree, result.tree, "")
        live |= other_live
    return IntegrationResult(merged_tree, results)
