"""The path mapping δ (proof of Theorem 4.1).

δ maps XR paths over the source schema to XR paths over the target by
substituting ``path(A_i, A_{i+1})`` for each step.  Source ``position``
qualifiers are resolved structurally:

* on a concatenation step, ``B[position()=k]`` selects the k-th
  occurrence edge — the corresponding occurrence path is substituted;
* on a star step, ``B[position()=k]`` pins the multiplicity carrier of
  the STAR path to instance ``k`` (Theorem 3.3's
  ``Tr(ρ/B[position()=k])``); without a qualifier the carrier stays
  unpinned, denoting all instances in order;
* on a disjunction step no qualifier is allowed (alternatives are
  distinct).

Theorem 4.1(1): δ is injective on XR paths from the root — reproduced
as a property test in ``tests/test_delta.py``.
"""

from __future__ import annotations

from repro.core.embedding import SchemaEmbedding
from repro.core.errors import TranslationError
from repro.dtd.model import Concat, Disjunction, Star, Str
from repro.xpath.paths import XRPath


def delta_path(embedding: SchemaEmbedding, source_path: XRPath,
               start_type: str | None = None) -> XRPath:
    """δ(ρ): translate a source XR path into the target schema.

    ``start_type`` defaults to the source root; the returned path is
    relative to the image of ``start_type``.
    """
    source = embedding.source
    current = start_type if start_type is not None else source.root
    if current not in source.elements:
        raise TranslationError(f"unknown source type {current!r}")
    result = XRPath(())

    for step in source_path.steps:
        production = source.production(current)
        if isinstance(production, Concat):
            count = production.occurrence_count(step.label)
            if count == 0:
                raise TranslationError(
                    f"{step.label!r} is not a child of {current!r}")
            occ = step.pos if step.pos is not None else 1
            if not 1 <= occ <= count:
                raise TranslationError(
                    f"occurrence {occ} of {step.label!r} out of range "
                    f"under {current!r}")
            segment = embedding.path_for(current, step.label, occ)
        elif isinstance(production, Disjunction):
            if step.label not in production.children:
                raise TranslationError(
                    f"{step.label!r} is not an alternative of {current!r}")
            if step.pos not in (None, 1):
                raise TranslationError(
                    f"position {step.pos} invalid on disjunction child "
                    f"{step.label!r}")
            segment = embedding.path_for(current, step.label)
        elif isinstance(production, Star):
            if step.label != production.child:
                raise TranslationError(
                    f"{step.label!r} is not the star child of {current!r}")
            segment = embedding.path_for(current, step.label)
            if step.pos is not None:
                info = embedding.info((current, step.label, 1))
                segment = segment.with_pinned_carrier(step.pos,
                                                      info.carrier_index)
        else:
            raise TranslationError(
                f"{current!r} has no element children (P({current}) = "
                f"{production})")
        result = result.concat(segment)
        current = step.label

    if source_path.text:
        production = source.production(current)
        if not isinstance(production, Str):
            raise TranslationError(
                f"text() step requires P({current!r}) = str")
        result = result.concat(embedding.str_path(current))
    return result
