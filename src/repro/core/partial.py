"""Partial information preservation (paper Section 7, future work).

"one often wants to select part of the source data and require this
part of data to be transformed to a target document without loss of
information, instead of insisting on lossless mapping of the entire
source data."

This module implements the natural schema-level reading: the user names
source element types to **forget**; the source DTD is *projected* by
removing those types (and everything only reachable through them), and
documents are projected accordingly.  A schema embedding of the
projected DTD then gives mappings that are information preserving
*w.r.t. the kept part*:

* ``σd(project(T))`` is type safe;
* the inverse recovers ``project(T)`` exactly;
* every XR query that only mentions kept types is preserved.

Projection rules per production (keeping the DTD in normal form):

* concatenation — dropped children are removed; an emptied
  concatenation becomes ε;
* disjunction — dropped alternatives are removed; if any alternative
  was dropped the disjunction becomes optional (an instance whose
  chosen child was forgotten projects to an empty element);
* star — a dropped child empties the star;
* ``str`` / ε — unchanged (``str`` cannot be partially dropped).

The root cannot be forgotten.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    Production,
    SchemaError,
    Star,
    Str,
)
from repro.xtree.nodes import ElementNode, Node, TextNode


@dataclass
class Projection:
    """A projected schema plus its instance-level projection."""

    original: DTD
    projected: DTD
    dropped: frozenset[str]

    def project_instance(self, tree: ElementNode) -> ElementNode:
        """Project a conforming instance: forget dropped subtrees."""
        projected = _project_node(tree, self.dropped)
        assert projected is not None, "the root cannot be dropped"
        return projected


def _closure_of_drop(dtd: DTD, drop: set[str]) -> set[str]:
    """Types reachable only through dropped types are dropped too."""
    kept_reachable = {dtd.root}
    frontier = [dtd.root]
    while frontier:
        current = frontier.pop()
        for edge in dtd.edges_from(current):
            child = edge.child
            if child in drop or child in kept_reachable:
                continue
            kept_reachable.add(child)
            frontier.append(child)
    return set(dtd.types) - kept_reachable


def project_dtd(dtd: DTD, drop: Iterable[str]) -> Projection:
    """Project a DTD by forgetting the given element types.

    >>> from repro.schema import load_schema
    >>> d = load_schema("a -> b, c\\nb -> str\\nc -> str")
    >>> project_dtd(d, ["c"]).projected.production("a")
    Concat(children=('b',))
    """
    requested = set(drop)
    unknown = requested - set(dtd.types)
    if unknown:
        raise SchemaError(f"cannot drop unknown types {sorted(unknown)}")
    if dtd.root in requested:
        raise SchemaError("the root type cannot be dropped")
    dropped = _closure_of_drop(dtd, requested)

    elements: dict[str, Production] = {}
    for element_type in dtd.types:
        if element_type in dropped:
            continue
        elements[element_type] = _project_production(
            dtd.production(element_type), dropped)
    projected = DTD(elements, dtd.root, name=f"{dtd.name}-projected")
    return Projection(dtd, projected, frozenset(dropped))


def _project_production(production: Production,
                        dropped: set[str]) -> Production:
    if isinstance(production, (Str, Empty)):
        return production
    if isinstance(production, Concat):
        kept = tuple(c for c in production.children if c not in dropped)
        return Concat(kept) if kept else Empty()
    if isinstance(production, Disjunction):
        kept = tuple(c for c in production.children if c not in dropped)
        lost_some = len(kept) < len(production.children)
        if not kept:
            return Empty()
        return Disjunction(kept,
                           optional=production.optional or lost_some)
    assert isinstance(production, Star)
    if production.child in dropped:
        return Empty()
    return production


def _project_node(node: Node, dropped: frozenset[str]):
    if isinstance(node, TextNode):
        return TextNode(node.value)
    assert isinstance(node, ElementNode)
    if node.tag in dropped:
        return None
    projected = ElementNode(node.tag)
    for child in node.children:
        projected_child = _project_node(child, dropped)
        if projected_child is not None:
            projected.append(projected_child)
    return projected
