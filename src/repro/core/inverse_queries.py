"""The query-driven inverse from the proof of Theorem 3.3.

The theorem shows that query preservation w.r.t. XR *implies*
invertibility by exhibiting an inverse that only uses the query
translation function ``Tr``: the source tree is regrown top-down, and
the children of each node are discovered by translating XR paths
``ρ/A[position()=k]`` and evaluating them on the target document.

This is asymptotically slower than the structural inverse in
:mod:`repro.core.inverse` (each node costs a query evaluation) but it
exercises exactly the argument of the proof; the test suite checks both
agree, and ``benchmarks/bench_inverse.py`` compares their cost.

The proof cases, by the production ``A → α`` of the node being grown:

1. ``α = A1, …, An`` — evaluate ``Tr(ρ/Ai[position()=k])`` for each
   occurrence; each returns a singleton;
2. ``α = A1 + … + An`` — evaluate ``Tr(ρ/Ai)``; exactly one alternative
   answers non-empty;
3. ``α = B*`` — evaluate ``Tr(ρ/B[position()=k])`` for k = 1, 2, …
   until the first empty answer;
4. ``α = str`` — evaluate ``Tr(ρ/text())``;
5. ``α = ε`` — nothing to do.
"""

from __future__ import annotations

from repro.anfa.evaluate import evaluate_anfa
from repro.core.delta import delta_path
from repro.core.embedding import SchemaEmbedding
from repro.core.errors import InverseError
from repro.dtd.model import Concat, Disjunction, Empty, Star, Str
from repro.xpath.paths import PathStep, XRPath
from repro.xtree.nodes import ElementNode, TextNode


class _QueryInverter:
    def __init__(self, embedding: SchemaEmbedding,
                 target_root: ElementNode) -> None:
        self.embedding = embedding
        self.source = embedding.source
        self.target_root = target_root

    def _answer(self, rho: XRPath) -> list:
        """Evaluate ``Tr(ρ)`` on the target document.

        ``ρ`` is an XR path over the source; δ composed with the path
        automaton plays the role of ``Tr`` restricted to XR paths (the
        only queries the proof needs)."""
        translated = delta_path(self.embedding, rho)
        from repro.xpath.evaluator import evaluate

        return evaluate(translated.to_expr(), self.target_root)

    def grow(self, rho: XRPath, source_type: str) -> ElementNode:
        """Grow the subtree of the (unique) node identified by ρ."""
        node = ElementNode(source_type)
        production = self.source.production(source_type)

        if isinstance(production, Str):
            strings = [item for item in self._answer(
                XRPath(rho.steps, text=True)) if isinstance(item, str)]
            if len(strings) != 1:
                raise InverseError(
                    f"Tr({rho}/text()) returned {len(strings)} strings")
            node.append(TextNode(strings[0]))
        elif isinstance(production, Empty):
            pass
        elif isinstance(production, Concat):
            seen: dict[str, int] = {}
            for child_type in production.children:
                seen[child_type] = seen.get(child_type, 0) + 1
                step = PathStep(child_type,
                                seen[child_type]
                                if production.occurrence_count(child_type) > 1
                                else None)
                child_rho = XRPath(rho.steps + (step,))
                answer = self._answer(child_rho)
                if len(answer) != 1:
                    raise InverseError(
                        f"Tr({child_rho}) returned {len(answer)} nodes, "
                        "expected a singleton")
                node.append(self.grow(child_rho, child_type))
        elif isinstance(production, Disjunction):
            matches = []
            for child_type in production.children:
                child_rho = XRPath(rho.steps + (PathStep(child_type),))
                if self._answer(child_rho):
                    matches.append((child_type, child_rho))
            if len(matches) > 1:
                raise InverseError(
                    f"alternatives {[m[0] for m in matches]} all answered "
                    f"below {rho}")
            if not matches and not production.optional:
                raise InverseError(f"no alternative answered below {rho}")
            if matches:
                child_type, child_rho = matches[0]
                node.append(self.grow(child_rho, child_type))
        elif isinstance(production, Star):
            k = 1
            while True:
                child_rho = XRPath(
                    rho.steps + (PathStep(production.child, k),))
                if not self._answer(child_rho):
                    break
                node.append(self.grow(child_rho, production.child))
                k += 1
        return node


def invert_via_queries(embedding: SchemaEmbedding,
                       target_root: ElementNode) -> ElementNode:
    """Reconstruct ``T1`` from ``σd(T1)`` via translated XR paths
    (the algorithm in the proof of Theorem 3.3)."""
    if target_root.tag != embedding.target.root:
        raise InverseError(
            f"document root <{target_root.tag}> is not the target root "
            f"<{embedding.target.root}>")
    inverter = _QueryInverter(embedding, target_root)
    return inverter.grow(XRPath(()), embedding.source.root)
