"""The paper's primary contribution (Sections 4.1–4.5).

* :mod:`repro.core.similarity` — similarity matrices ``att``;
* :mod:`repro.core.embedding` — schema embeddings ``σ = (λ, path)`` and
  their validity conditions;
* :mod:`repro.core.instmap` — the derived instance mapping ``σd``
  (algorithm InstMap, Fig. 5) with the ``idM`` node-id mapping;
* :mod:`repro.core.inverse` — ``σd⁻¹`` (native structural algorithm);
* :mod:`repro.core.inverse_queries` — the query-driven inverse from the
  proof of Theorem 3.3;
* :mod:`repro.core.delta` — the path mapping δ of Theorem 4.1;
* :mod:`repro.core.translate` — schema-directed query translation ``Tr``
  producing ANFAs (Section 4.4);
* :mod:`repro.core.naive` — the broken edge-substitution translation of
  Fig. 7, kept as a baseline;
* :mod:`repro.core.preservation` — executable checks of invertibility
  and query preservation (Section 2.3);
* :mod:`repro.core.multi` — multi-source integration (Section 4.5);
* :mod:`repro.core.smallmodel` — path simplification per Theorem 4.10;
* :mod:`repro.core.separation` — the separating mappings of Theorem 3.1;
* :mod:`repro.core.partial` — partial information preservation
  (the Section 7 future-work direction, implemented).
"""

from repro.core.errors import (
    EmbeddingError,
    InverseError,
    TranslationError,
    ValidityViolation,
)
from repro.core.similarity import SimilarityMatrix, name_similarity
from repro.core.embedding import SchemaEmbedding, build_embedding
from repro.core.instmap import InstMap, MappingResult, apply_embedding
from repro.core.inverse import invert
from repro.core.delta import delta_path
from repro.core.partial import Projection, project_dtd
from repro.core.translate import translate_query
from repro.core.preservation import (
    check_invertible,
    check_query_preserving,
    check_type_safe,
)

__all__ = [
    "EmbeddingError",
    "InstMap",
    "InverseError",
    "MappingResult",
    "Projection",
    "SchemaEmbedding",
    "SimilarityMatrix",
    "TranslationError",
    "ValidityViolation",
    "apply_embedding",
    "build_embedding",
    "check_invertible",
    "check_query_preserving",
    "check_type_safe",
    "delta_path",
    "invert",
    "name_similarity",
    "project_dtd",
    "translate_query",
]
