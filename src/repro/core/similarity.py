"""Similarity matrices ``att`` (paper Section 4.1).

``att`` is an ``|E1| × |E2|`` matrix over ``[0, 1]``; ``att(A, B)``
scores the suitability of mapping source type ``A`` to target type
``B``, as produced by domain experts or a schema-matching tool (the
paper cites LSD, Cupid, SemInt as producers).  A type mapping λ is
*valid* w.r.t. ``att`` when ``att(A, λ(A)) > 0`` for every ``A``
(threshold θ = 0, as in the paper).

Besides the matrix container this module provides simple name-based
matchers (exact, edit-distance, trigram) that stand in for the external
matching tools when experiments need a machine-generated ``att``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from repro.dtd.model import DTD


def _levenshtein(a: str, b: str) -> int:
    """Classic DP edit distance (small strings: tag names)."""
    if a == b:
        return 0
    if not a or not b:
        return max(len(a), len(b))
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1,
                               current[j - 1] + 1,
                               previous[j - 1] + cost))
        previous = current
    return previous[-1]


def _trigrams(name: str) -> set[str]:
    padded = f"##{name.lower()}##"
    return {padded[i:i + 3] for i in range(len(padded) - 2)}


def name_similarity(a: str, b: str) -> float:
    """A blended [0,1] name similarity: exact > edit distance > trigram.

    >>> name_similarity("course", "course")
    1.0
    >>> 0.0 < name_similarity("cno", "course_no") < 1.0
    True
    """
    a_norm = a.lower().replace("-", "_")
    b_norm = b.lower().replace("-", "_")
    if a_norm == b_norm:
        return 1.0
    edit = 1.0 - _levenshtein(a_norm, b_norm) / max(len(a_norm), len(b_norm))
    ta, tb = _trigrams(a_norm), _trigrams(b_norm)
    tri = len(ta & tb) / len(ta | tb) if ta | tb else 0.0
    score = max(0.0, 0.5 * edit + 0.5 * tri)
    return round(score, 6)


@dataclass
class SimilarityMatrix:
    """The matrix ``att``, stored sparsely with a default score.

    Mutate through :meth:`set` only — it range-checks the score,
    respects frozen shared instances, and invalidates the cached
    content fingerprint.  Writing to ``entries`` directly bypasses all
    three and can leave fingerprint-keyed caches stale.
    """

    entries: dict[tuple[str, str], float] = field(default_factory=dict)
    default: float = 0.0
    #: Shared instances (``permissive()`` memo) are frozen: mutating
    #: them would silently affect every other holder.
    _frozen: bool = field(default=False, repr=False, compare=False)
    _fp: Optional[str] = field(default=None, init=False, repr=False,
                               compare=False)

    def get(self, source_type: str, target_type: str) -> float:
        return self.entries.get((source_type, target_type), self.default)

    def set(self, source_type: str, target_type: str, value: float) -> None:
        if self._frozen:
            raise ValueError(
                "this SimilarityMatrix is a shared frozen instance "
                "(e.g. from permissive()); use .copy() before mutating")
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"att values live in [0,1], got {value}")
        self.entries[(source_type, target_type)] = value
        self._fp = None  # content changed: invalidate the fingerprint

    def fingerprint(self) -> str:
        """Stable content fingerprint (hex digest) for cache keys.

        Cached until the next :meth:`set` (the only supported mutation
        route — see the class docstring).
        """
        if self._fp is None:
            rows = [f"default={self.default!r}"]
            rows.extend(f"{a}\x00{b}\x00{score!r}"
                        for (a, b), score in sorted(self.entries.items()))
            self._fp = hashlib.sha256(
                "\x01".join(rows).encode("utf-8")).hexdigest()
        return self._fp

    def candidates(self, source_type: str, target_types: Iterable[str],
                   threshold: float = 0.0) -> list[tuple[str, float]]:
        """Target types admissible for ``source_type``, best first.

        The paper fixes θ = 0: a candidate needs ``att > θ``.
        """
        scored = [(t, self.get(source_type, t)) for t in target_types]
        admissible = [(t, s) for t, s in scored if s > threshold]
        admissible.sort(key=lambda pair: (-pair[1], pair[0]))
        return admissible

    def quality(self, lam: Mapping[str, str]) -> float:
        """``qual(σ, att) = Σ_A att(A, λ(A))`` (Section 4.1)."""
        return sum(self.get(a, b) for a, b in lam.items())

    def is_valid_lambda(self, lam: Mapping[str, str]) -> bool:
        return all(self.get(a, b) > 0.0 for a, b in lam.items())

    # -- constructors ----------------------------------------------------
    @staticmethod
    def permissive(score: float = 1.0) -> "SimilarityMatrix":
        """No restrictions: every pair scores ``score`` (Example 4.2).

        Returns a shared frozen instance per ``score`` so that repeated
        ``find_embedding`` calls key the same cache entries instead of
        rebuilding an equal-but-distinct matrix each time.  Call
        ``.copy()`` to obtain a mutable variant.
        """
        cached = _PERMISSIVE_MEMO.get(score)
        if cached is None:
            cached = SimilarityMatrix(default=score, _frozen=True)
            _PERMISSIVE_MEMO[score] = cached
        return cached

    @staticmethod
    def exact_names(source: DTD, target: DTD,
                    extra: Optional[Mapping[tuple[str, str], float]] = None,
                    ) -> "SimilarityMatrix":
        """1.0 for identical names, plus explicit extra correspondences."""
        matrix = SimilarityMatrix()
        target_types = set(target.types)
        for source_type in source.types:
            if source_type in target_types:
                matrix.set(source_type, source_type, 1.0)
        for (a, b), value in (extra or {}).items():
            matrix.set(a, b, value)
        return matrix

    @staticmethod
    def from_names(source: DTD, target: DTD,
                   matcher: Callable[[str, str], float] = name_similarity,
                   threshold: float = 0.25) -> "SimilarityMatrix":
        """Machine-generated matrix via a name matcher (stands in for
        the LSD/Cupid-style tools the paper's experiments assume)."""
        matrix = SimilarityMatrix()
        for source_type in source.types:
            for target_type in target.types:
                score = matcher(source_type, target_type)
                if score >= threshold:
                    matrix.set(source_type, target_type, score)
        return matrix

    @staticmethod
    def from_mapping(lam: Mapping[str, str]) -> "SimilarityMatrix":
        """The unambiguous matrix induced by a known ground-truth λ."""
        matrix = SimilarityMatrix()
        for source_type, target_type in lam.items():
            matrix.set(source_type, target_type, 1.0)
        return matrix

    def copy(self) -> "SimilarityMatrix":
        """An independent, mutable copy (never frozen)."""
        return SimilarityMatrix(dict(self.entries), self.default)


#: ``permissive()`` memo: score -> shared frozen matrix.
_PERMISSIVE_MEMO: dict[float, SimilarityMatrix] = {}
