"""The instance-level mapping ``σd`` — algorithm InstMap (Section 4.2).

Given a valid embedding ``σ = (λ, path) : S1 → S2`` and an instance
``T1`` of ``S1``, InstMap builds ``T2 = σd(T1)`` top-down by repeatedly
replacing a *hot* node with the *production fragment* of its source
node (Fig. 5):

1. the root of ``T2`` is a copy of the root of ``T1`` relabelled
   ``λ(r1)``, and is hot;
2. the production fragment ``pfrag_A(v)`` of a source node ``v`` of
   type ``A`` adds, for each child ``v'`` of ``v``, the target path
   ``path(A, B)`` below the image of ``v`` — sharing the longest prefix
   already present — and marks the path's endpoint hot with
   ``src = v'``;
3. required target positions not on any path are padded with minimum
   default instances (``mindef``), and children are sorted into
   production/position order;
4. the node-id mapping ``idM`` records, for every hot node (and every
   text node copied for a ``str`` production), the source node it was
   mapped from.

The algorithm runs in time linear in ``|T1| + |T2|`` (each source node
enters the hot set exactly once).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.core.embedding import STR_KEY, EdgeKey, SchemaEmbedding
from repro.core.errors import EmbeddingError
from repro.dtd.mindef import DEFAULT_STRING, MinDef
from repro.dtd.model import (
    Concat,
    Disjunction,
    EdgeKind,
    Empty,
    Star,
    Str,
)
from repro.xpath.paths import PathInfo
from repro.xtree.nodes import ElementNode, TextNode

_SlotKey = Hashable


@dataclass
class MappingResult:
    """``σd(T1)`` together with the id mapping of Section 2.3."""

    tree: ElementNode
    #: ``idM``: target node id -> source node id (partial; defined on
    #: images of source nodes, undefined on padding).
    idM: dict[int, int]
    #: the inverse view, source id -> target id (σd is injective,
    #: Theorem 4.1, so this is well defined).
    source_to_target: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.source_to_target:
            self.source_to_target = {s: t for t, s in self.idM.items()}


class InstMap:
    """A compiled instance mapping for one (validated) embedding.

    Construction pre-classifies every edge path, then compiles the
    per-source-type **mapping programs** of
    :mod:`repro.engine.plan` — flat instruction sequences with slot
    keys, path-step templates and mindef padding resolved at compile
    time.  :meth:`apply` interprets the programs iteratively; the
    reference builder (:class:`_FragmentBuilder`) is kept both as the
    per-fragment fallback for documents whose shape the static program
    does not cover and as the oracle for the fast-path equivalence
    suite (:meth:`apply_reference`).  Embeddings the compiler rejects
    (possible only with ``validate=False``) run entirely on the
    reference path, preserving their error behaviour exactly.
    """

    def __init__(self, embedding: SchemaEmbedding, validate: bool = True,
                 mindef: Optional[MinDef] = None) -> None:
        if validate:
            embedding.check()
        self.embedding = embedding
        self.source = embedding.source
        self.target = embedding.target
        # A precompiled target mindef (from a CompiledSchema) can be
        # shared across every InstMap over the same target.
        self.mindef = mindef if mindef is not None else MinDef(self.target)
        # Pre-classify every edge path once.
        self._infos: dict[EdgeKey, PathInfo] = {
            key: embedding.info(key) for key, _ in embedding.edge_keys()}
        # Compile the document-plane fast path (lazy import: the engine
        # package imports this module).
        # lint: allow-lazy-import — breaks the instmap<->plan cycle
        from repro.engine.plan import MappingProgram, PlanError

        try:
            self._program = MappingProgram(embedding, self.mindef,
                                           self._infos, self)
        except PlanError:
            # The compiler's own "shape is not static" signal: serve
            # from the reference path with identical behaviour.
            self._program = None
        except Exception:
            if validate:
                # A *validated* embedding must compile — anything else
                # is a compiler bug, and silently degrading to the
                # reference path would hide a 4x perf loss with zero
                # signal.  Surface it.
                raise
            # Unvalidated embeddings may be arbitrarily broken; the
            # reference path keeps the seed's exact lazy error
            # behaviour (errors surface at apply, not construction).
            self._program = None

    # ------------------------------------------------------------------
    def __call__(self, source_root: ElementNode) -> MappingResult:
        return self.apply(source_root)

    def apply(self, source_root: ElementNode) -> MappingResult:
        """Run InstMap on ``T1`` (Fig. 5) through the compiled programs."""
        if self._program is not None:
            return self._program.apply(source_root)
        return self.apply_reference(source_root)

    def apply_reference(self, source_root: ElementNode) -> MappingResult:
        """The reference builder — byte-identical oracle for the fast
        path (``tests/test_fastpath_equivalence.py``)."""
        if source_root.tag != self.source.root:
            raise EmbeddingError(
                f"instance root <{source_root.tag}> is not the source root "
                f"<{self.source.root}>")
        target_root = ElementNode(self.embedding.lam[source_root.tag])
        id_map: dict[int, int] = {target_root.node_id: source_root.node_id}
        hot: deque[tuple[ElementNode, ElementNode]] = deque(
            [(target_root, source_root)])
        while hot:
            image, source_node = hot.popleft()
            fragment = _FragmentBuilder(self, image)
            hot.extend(fragment.build(source_node, id_map))
        return MappingResult(target_root, id_map)

    def build_fragment(self, image: ElementNode, source_node: ElementNode,
                       id_map: dict[int, int],
                       ) -> list[tuple[ElementNode, ElementNode]]:
        """One reference production fragment (the fast path's fallback
        for fragments with a non-static shape)."""
        return _FragmentBuilder(self, image).build(source_node, id_map)

    def fragment_pairs(self, image: ElementNode, source_node: ElementNode,
                       id_map: dict[int, int],
                       ) -> list[tuple[ElementNode, ElementNode]]:
        """One production fragment through the compiled plane where
        possible: static and sparse-concat shapes run at compiled
        speed, everything else (including malformed documents, for
        their exact error bytes) through the reference builder."""
        if self._program is not None:
            pairs = self._program.sparse_fragment(image, source_node, id_map)
            if pairs is not None:
                return pairs
        return self.build_fragment(image, source_node, id_map)

    def info(self, key: EdgeKey) -> PathInfo:
        try:
            return self._infos[key]
        except KeyError:
            # Reached when an instance presents a child edge the schema
            # (and hence the embedding) does not declare — a malformed
            # document, not an internal error.
            raise EmbeddingError(
                f"instance edge ({key[0]}, {key[1]}, occ {key[2]}) is not "
                "covered by the embedding (document does not conform to "
                "the source schema)") from None


class _FragmentBuilder:
    """Builds one production fragment ``pfrag_A(v)`` in place.

    ``slots`` tracks, per created node, which production positions /
    star instances / OR choice its children occupy — the paper's
    ``pos()`` bookkeeping.  Completion then pads missing required
    positions with mindef copies and sorts children into slot order.
    """

    def __init__(self, instmap: InstMap, root: ElementNode) -> None:
        self.instmap = instmap
        self.root = root
        self.slots: dict[int, dict[_SlotKey, ElementNode]] = {
            root.node_id: {}}
        self.hot_ids: set[int] = set()

    # -- path walking -----------------------------------------------------
    def _slot_key(self, parent: ElementNode, step, edge,
                  carrier_instance: Optional[int]) -> _SlotKey:
        production = self.instmap.target.production(parent.tag)
        if edge.kind is EdgeKind.AND:
            assert isinstance(production, Concat)
            occ = step.pos if step.pos is not None else 1
            return ("c", production.index_of_occurrence(step.label, occ))
        if edge.kind is EdgeKind.OR:
            return ("o",)
        assert edge.kind is EdgeKind.STAR
        if step.pos is not None:
            return ("s", step.pos)
        if carrier_instance is None:
            raise EmbeddingError(
                f"unpinned star step {step} outside a STAR path walk")
        return ("s", carrier_instance)

    def _walk(self, info: PathInfo,
              carrier_instance: Optional[int] = None) -> ElementNode:
        """Add ``info.path`` below the fragment root, sharing the longest
        existing prefix; return the endpoint (the hot leaf)."""
        node = self.root
        for step, edge in zip(info.path.steps, info.edges):
            slot_map = self.slots[node.node_id]
            key = self._slot_key(node, step, edge, carrier_instance)
            existing = slot_map.get(key)
            if existing is not None:
                if existing.tag != step.label:
                    raise EmbeddingError(
                        f"conflicting OR choices under <{node.tag}>: "
                        f"{existing.tag} vs {step.label}")
                node = existing
                continue
            child = ElementNode(step.label)
            node.append(child)
            slot_map[key] = child
            self.slots[child.node_id] = {}
            node = child
        if self.slots[node.node_id]:
            raise EmbeddingError(
                f"path endpoint <{node.tag}> is interior to a sibling path "
                "(prefix-free condition violated)")
        return node

    # -- fragment construction ---------------------------------------------
    def build(self, source_node: ElementNode, id_map: dict[int, int],
              ) -> list[tuple[ElementNode, ElementNode]]:
        instmap = self.instmap
        source_type = source_node.tag
        expected = instmap.embedding.lam.get(source_type)
        if expected is None:
            # An element type the embedding's λ never covers: malformed
            # corpus input, not an internal error.
            raise EmbeddingError(
                f"instance element <{source_type}> is not a source type "
                "of the embedding (document does not conform to the "
                "source schema)")
        if self.root.tag != expected:
            raise EmbeddingError(
                f"image of <{source_type}> has tag <{self.root.tag}>, "
                f"expected λ({source_type}) = {expected}")
        production = instmap.source.production(source_type)
        new_hot: list[tuple[ElementNode, ElementNode]] = []

        if isinstance(production, Str):
            info = instmap.info((source_type, STR_KEY, 1))
            holder = self._walk(info)
            # An empty <A></A> is the empty string value; anything other
            # than a single text child is a malformed instance and must
            # surface as EmbeddingError, never IndexError.
            if not source_node.children:
                holder.append(TextNode(""))
            elif (len(source_node.children) == 1
                    and isinstance(source_node.children[0], TextNode)):
                source_text = source_node.children[0]
                text = TextNode(source_text.value)
                holder.append(text)
                id_map[text.node_id] = source_text.node_id
            else:
                raise EmbeddingError(
                    f"<{source_type}> has P({source_type}) = str but does "
                    "not contain a single text value")
        elif isinstance(production, (Empty,)):
            pass
        elif isinstance(production, Concat):
            seen: dict[str, int] = {}
            for child in source_node.element_children():
                seen[child.tag] = seen.get(child.tag, 0) + 1
                info = instmap.info((source_type, child.tag, seen[child.tag]))
                leaf = self._walk(info)
                self.hot_ids.add(leaf.node_id)
                id_map[leaf.node_id] = child.node_id
                new_hot.append((leaf, child))
        elif isinstance(production, Disjunction):
            chosen = source_node.element_children()
            if chosen:
                child = chosen[0]
                info = instmap.info((source_type, child.tag, 1))
                leaf = self._walk(info)
                self.hot_ids.add(leaf.node_id)
                id_map[leaf.node_id] = child.node_id
                new_hot.append((leaf, child))
        elif isinstance(production, Star):
            info = instmap.info((source_type, production.child, 1))
            for instance, child in enumerate(
                    source_node.element_children(), start=1):
                leaf = self._walk(info, carrier_instance=instance)
                self.hot_ids.add(leaf.node_id)
                id_map[leaf.node_id] = child.node_id
                new_hot.append((leaf, child))

        self._complete(self.root)
        return new_hot

    # -- completion ----------------------------------------------------------
    def _complete(self, root: ElementNode) -> None:
        """Pad required positions with mindef and sort children by slot.

        Iterative (explicit work stack): deep documents build fragments
        along arbitrarily long paths and must never hit the Python
        recursion limit.
        """
        target = self.instmap.target
        mindef = self.instmap.mindef
        hot_ids = self.hot_ids
        slots = self.slots
        stack: list[ElementNode] = [root]
        while stack:
            node = stack.pop()
            if node.node_id in hot_ids:
                continue  # will become the root of its own fragment
            slot_map = slots.get(node.node_id)
            if slot_map is None:
                continue  # mindef filler: already complete
            production = target.production(node.tag)

            if isinstance(production, Str):
                if node.child_text() is None:
                    node.append(TextNode(DEFAULT_STRING))
                continue
            if isinstance(production, Empty):
                continue

            # Sort into slot order, pad, and queue in one pass.
            ordered: list[ElementNode] = []
            if isinstance(production, Concat):
                for index, child_type in enumerate(production.children):
                    child = slot_map.get(("c", index))
                    if child is None:
                        child = mindef.instance(child_type)
                        slot_map[("c", index)] = child
                    ordered.append(child)
            elif isinstance(production, Disjunction):
                child = slot_map.get(("o",))
                if child is None:
                    choice = mindef.default_choice[node.tag]
                    if choice is not None:
                        child = mindef.instance(choice)
                if child is not None:
                    ordered.append(child)
            elif isinstance(production, Star):
                if slot_map:
                    top = max(key[1] for key in slot_map)  # type: ignore[index]
                    for position in range(1, top + 1):
                        child = slot_map.get(("s", position))
                        if child is None:
                            child = mindef.instance(production.child)
                            slot_map[("s", position)] = child
                        ordered.append(child)

            node.children = []
            for child in ordered:
                child.parent = node
            node.children.extend(ordered)
            stack.extend(ordered)


def apply_embedding(embedding: SchemaEmbedding, source_root: ElementNode,
                    validate: bool = True) -> MappingResult:
    """``σd(T1)``, served by the default compilation engine.

    The embedding is compiled (validated, pfrag templates prebuilt)
    once per content fingerprint and reused for every later document —
    see :class:`repro.engine.session.Engine` for an explicit session.
    """
    # Convenience wrapper delegating to the default engine; the
    # engine package imports this module.
    # lint: allow-lazy-import
    from repro.engine.session import default_engine

    return default_engine().apply_embedding(embedding, source_root,
                                            validate=validate)
