"""Executable information-preservation checks (Sections 2.3 and 4.5).

These are the paper's definitions turned into test oracles:

* **type safety** — ``σd(T)`` conforms to the target DTD (Theorem 4.1);
* **invertibility** — ``σd⁻¹(σd(T)) = T`` under the paper's tree
  equality (Theorem 4.3(a));
* **query preservation w.r.t. XR** — ``Q(T) = idM(Tr(Q)(σd(T)))``
  for given queries (Theorem 4.3(b)): ids returned on the target side
  are mapped back through ``idM`` and compared, and string values are
  compared directly (the Section 2.3 semantics).

Each check returns a :class:`PreservationReport` carrying the failures
(empty = the property held on the sample), so the same functions serve
the property-based tests and the fault-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.embedding import SchemaEmbedding
from repro.core.instmap import InstMap, MappingResult
from repro.core.inverse import invert
from repro.core.translate import Translator
from repro.dtd.validate import ConformanceError, validate
from repro.xpath.ast import PathExpr
from repro.xpath.evaluator import evaluate_set
from repro.xtree.nodes import ElementNode, tree_equal
from repro.xtree.serialize import to_string


@dataclass
class PreservationReport:
    """Outcome of a preservation check over a sample of instances."""

    property_name: str
    checked: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} failures"
        return f"{self.property_name}: {self.checked} checked, {status}"


def check_type_safe(embedding: SchemaEmbedding,
                    instances: Iterable[ElementNode],
                    ) -> PreservationReport:
    """σd is type safe: every image conforms to the target schema."""
    report = PreservationReport("type safety")
    instmap = InstMap(embedding)
    for instance in instances:
        report.checked += 1
        result = instmap.apply(instance)
        try:
            validate(result.tree, embedding.target)
        except ConformanceError as exc:
            report.failures.append(
                f"instance #{report.checked}: {exc}")
    return report


def check_invertible(embedding: SchemaEmbedding,
                     instances: Iterable[ElementNode],
                     ) -> PreservationReport:
    """σd is invertible: the inverse reconstructs the source exactly."""
    report = PreservationReport("invertibility")
    instmap = InstMap(embedding)
    for instance in instances:
        report.checked += 1
        result = instmap.apply(instance)
        recovered = invert(embedding, result.tree)
        if not tree_equal(recovered, instance):
            report.failures.append(
                f"instance #{report.checked}: reconstruction differs\n"
                f"  source:    {to_string(instance, indent=None)}\n"
                f"  recovered: {to_string(recovered, indent=None)}")
    return report


def check_query_preserving(embedding: SchemaEmbedding,
                           queries: Sequence[PathExpr],
                           instances: Iterable[ElementNode],
                           mapped: Optional[Sequence[MappingResult]] = None,
                           ) -> PreservationReport:
    """σd preserves the given XR queries: ``Q(T) = idM(Tr(Q)(σd(T)))``."""
    report = PreservationReport("query preservation")
    instmap = InstMap(embedding)
    translator = Translator(embedding)
    materialised = list(instances)
    images = (list(mapped) if mapped is not None
              else [instmap.apply(t) for t in materialised])
    translated = [translator.translate(q) for q in queries]

    for instance, image in zip(materialised, images):
        for query, anfa in zip(queries, translated):
            report.checked += 1
            source_result = evaluate_set(query, instance)
            target_result = evaluate_anfa_set(anfa, image.tree)
            missing = [i for i in target_result.ids if i not in image.idM]
            if missing:
                report.failures.append(
                    f"query {query}: target result contains non-image "
                    f"nodes {missing}")
                continue
            mapped_back = target_result.map_ids(image.idM)
            if (mapped_back.ids != source_result.ids
                    or mapped_back.strings != source_result.strings):
                report.failures.append(
                    f"query {query}: source {sorted(source_result.ids)} / "
                    f"{sorted(source_result.strings)} vs mapped-back "
                    f"{sorted(mapped_back.ids)} / "
                    f"{sorted(mapped_back.strings)}")
    return report


def check_information_preserving(embedding: SchemaEmbedding,
                                 queries: Sequence[PathExpr],
                                 instances: Sequence[ElementNode],
                                 ) -> list[PreservationReport]:
    """All three checks (the paper's "information preserving" = both
    invertible and query preserving; type safety per Theorem 4.1)."""
    return [
        check_type_safe(embedding, instances),
        check_invertible(embedding, instances),
        check_query_preserving(embedding, queries, instances),
    ]
