"""Request metrics for the serve daemon — counters and latency tails.

One :class:`MetricsRegistry` per server, shared by every handler
thread.  Latencies keep a bounded window of recent samples per endpoint
(newest-wins ring), so percentiles track current behaviour and memory
stays flat on a server that runs forever.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Optional

#: Latency samples kept per endpoint; percentiles are computed over
#: this sliding window.
DEFAULT_WINDOW = 2048

#: Distinct endpoint labels tracked before new ones collapse into
#: ``(other)`` — unknown request paths must not grow a long-lived
#: server's registry without bound.
MAX_ENDPOINTS = 64

OVERFLOW_ENDPOINT = "(other)"

PERCENTILES = (50.0, 90.0, 99.0)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (not assumed sorted)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class _EndpointMetrics:
    __slots__ = ("requests", "errors", "total_seconds", "samples")

    def __init__(self, window: int) -> None:
        self.requests = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.samples: deque[float] = deque(maxlen=window)

    def snapshot(self) -> dict:
        samples = list(self.samples)
        row = {
            "requests": self.requests,
            "errors": self.errors,
            "total_seconds": round(self.total_seconds, 6),
        }
        latency = {f"p{q:g}": round(1e3 * percentile(samples, q), 3)
                   for q in PERCENTILES}
        latency["max"] = round(1e3 * max(samples), 3) if samples else 0.0
        row["latency_ms"] = latency
        return row


class MetricsRegistry:
    """Thread-safe per-endpoint request counters + latency windows."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._window = window
        self._endpoints: dict[str, _EndpointMetrics] = {}

    def observe(self, endpoint: str, seconds: float, ok: bool) -> None:
        with self._lock:
            row = self._endpoints.get(endpoint)
            if row is None:
                if len(self._endpoints) >= MAX_ENDPOINTS:
                    # Cardinality cap: unknown paths (scanners, typos)
                    # collapse into one bucket instead of growing the
                    # registry forever.
                    endpoint = OVERFLOW_ENDPOINT
                    row = self._endpoints.get(endpoint)
            if row is None:
                row = self._endpoints[endpoint] = _EndpointMetrics(
                    self._window)
            row.requests += 1
            if not ok:
                row.errors += 1
            row.total_seconds += seconds
            row.samples.append(seconds)

    def requests(self, endpoint: Optional[str] = None) -> int:
        with self._lock:
            if endpoint is not None:
                row = self._endpoints.get(endpoint)
                return row.requests if row else 0
            return sum(row.requests for row in self._endpoints.values())

    def snapshot(self) -> dict:
        with self._lock:
            return {endpoint: row.snapshot()
                    for endpoint, row in sorted(self._endpoints.items())}


# -- fleet aggregation --------------------------------------------------------
#
# Worker snapshots are merged by *summing* counters; latency
# percentiles are not mergeable from snapshots (the raw windows stay in
# the workers), so the aggregate keeps the worst per-percentile value
# across workers — a conservative fleet tail, with exact per-worker
# tails available next to it.

def merge_request_snapshots(snapshots: list[dict]) -> dict:
    """Sum per-endpoint request counters across worker snapshots."""
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for endpoint, row in snapshot.items():
            bucket = merged.setdefault(endpoint, {
                "requests": 0, "errors": 0, "total_seconds": 0.0,
                "latency_ms": {}})
            bucket["requests"] += row.get("requests", 0)
            bucket["errors"] += row.get("errors", 0)
            bucket["total_seconds"] += row.get("total_seconds", 0.0)
            for label, value in row.get("latency_ms", {}).items():
                bucket["latency_ms"][label] = max(
                    bucket["latency_ms"].get(label, 0.0), value)
    for bucket in merged.values():
        bucket["total_seconds"] = round(bucket["total_seconds"], 6)
    return dict(sorted(merged.items()))


def merge_engine_stats(stats_list: list[dict]) -> dict:
    """Sum per-cache hit/miss/eviction counters across workers."""
    merged: dict[str, dict[str, int]] = {}
    for stats in stats_list:
        for cache, counters in stats.items():
            bucket = merged.setdefault(cache, {})
            for counter, value in counters.items():
                bucket[counter] = bucket.get(counter, 0) + value
    return merged
