"""The serving layer: a long-lived, warm-started HTTP daemon over the
engine — the paper's "compute the embedding once, answer forever"
workload as an actual service.

* :mod:`repro.serve.protocol` — JSON request/response shapes, batch
  normalisation, structured errors;
* :mod:`repro.serve.handlers` — :class:`ServiceState` (warm engine +
  artifacts) and the pure endpoint logic;
* :mod:`repro.serve.metrics`  — per-endpoint counters and latency
  percentiles backing ``/metrics``;
* :mod:`repro.serve.server`   — :class:`ReproServer`, the threaded
  stdlib HTTP transport (``repro serve`` in the CLI);
* :mod:`repro.serve.fleet`    — :class:`FleetServer`, the pre-fork
  multi-process worker fleet over one packed store (``repro serve
  --workers N``), with crash supervision and hot reload;
* :mod:`repro.serve.ring`     — :class:`HashRing`, consistent-hash
  routing of embedding fingerprints onto fleet workers;
* :mod:`repro.serve.client`   — :class:`ServeClient` (keep-alive JSON
  client) and :class:`FleetClient` (ring-routing client), used by
  tests, benchmarks and examples; endpoint methods return the frozen
  :class:`ServeResult`/:class:`EvolveResult` views (attribute access
  plus the exact wire payload on ``.raw``).

Everything is stdlib-only and a pure transport over
:class:`~repro.engine.session.Engine`: response payload strings are
byte-identical to the equivalent direct engine calls — single process
or fleet.
"""

from repro.serve.client import (
    EvolveResult,
    FleetClient,
    ServeClient,
    ServeError,
    ServeResult,
)
from repro.serve.fleet import DEFAULT_RELOAD_INTERVAL, FleetServer
from repro.serve.handlers import FleetInfo, ServiceState, dispatch
from repro.serve.metrics import MetricsRegistry
from repro.serve.protocol import ProtocolError
from repro.serve.ring import HashRing
from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT, ReproServer

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_RELOAD_INTERVAL",
    "EvolveResult",
    "FleetClient",
    "FleetInfo",
    "FleetServer",
    "HashRing",
    "MetricsRegistry",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServeResult",
    "ServiceState",
    "dispatch",
]
