"""Endpoint logic for the serve daemon — a pure layer over the Engine.

:class:`ServiceState` owns one warm :class:`~repro.engine.session.Engine`
plus the embeddings/schemas it serves (usually loaded from an
:class:`~repro.engine.store.ArtifactStore`); :func:`dispatch` routes one
(method, path, body) triple to a handler and returns ``(status,
payload)``.  No HTTP object ever reaches this layer, so tests and the
transport drive exactly the same code.

The serving contract: the service is a *transport*, not a semantic
layer.  Every ``output``/``anfa`` string in a response is byte-identical
to what the same :class:`Engine` call produces in-process
(``to_string(engine.apply_embedding(…).tree)``,
``engine.translate_query(…).canonical_describe()``, …) — tested in
``tests/test_serve.py`` and asserted under load in
``benchmarks/bench_serve_load.py``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.core.embedding import EmbeddingError, SchemaEmbedding
from repro.dtd.model import DTD
from repro.engine.session import Engine, EngineConfig
from repro.engine.store import ArtifactStore, embedding_to_payload
from repro.schema import (
    SchemaFormatError,
    available_formats,
    detect_format,
    load_schema,
)
from repro.serve.metrics import (
    OVERFLOW_ENDPOINT,
    MetricsRegistry,
    merge_engine_stats,
    merge_request_snapshots,
)
from repro.serve.protocol import (
    ENDPOINT_FIELDS,
    ProtocolError,
    decode_body,
    documents_from,
    parse_fields,
    queries_from,
)
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string

#: Most dynamically-registered artifacts (successful ``/v1/find``
#: results and their schemas) kept before the oldest is evicted.
#: Store-loaded artifacts are never evicted — a long-lived daemon's
#: state must stay bounded no matter what clients post.
MAX_DYNAMIC_EMBEDDINGS = 128
MAX_DYNAMIC_SCHEMAS = 256


@dataclass
class FleetInfo:
    """One worker's knowledge of its fleet: who it is, who its peers
    are (direct per-worker ports for routed traffic and peer metrics),
    and the supervisor's shared restart counter."""

    worker_id: int
    host: str
    shared_port: int
    #: ``[{"id": …, "port": …}, …]`` — every worker incl. this one.
    workers: list = field(default_factory=list)
    #: a ``multiprocessing.Value``-like object (``.value``) the
    #: supervisor increments on every crashed-worker restart.
    restarts: Optional[object] = None

    def restart_count(self) -> int:
        restarts = self.restarts
        return int(restarts.value) if restarts is not None else 0


class ServiceState:
    """One daemon's state: a warm engine + the artifacts it serves.

    Build from a store (``ServiceState.from_store(path)``) for the
    warm-start deployment path, or directly from model objects for
    tests and embedded use.  Thread-safe to the same degree as the
    Engine: compiled artifacts are immutable, cache bookkeeping is
    locked.
    """

    def __init__(self, engine: Optional[Engine] = None,
                 embeddings: Optional[dict[str, SchemaEmbedding]] = None,
                 schemas: Optional[dict[str, DTD]] = None,
                 store_path: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 default_format: str = "auto") -> None:
        self.engine = engine or Engine()
        self.embeddings = dict(embeddings or {})
        self.schemas = dict(schemas or {})
        self.store_path = store_path
        self.metrics = metrics or MetricsRegistry()
        # Applied to inline schema text when a request carries no
        # 'format' field (the CLI's `repro serve --format`).
        self.default_format = default_format
        self.started_at = time.time()
        #: The packed store view this state was warm-started from
        #: (None on the JSON / in-memory paths) and its generation.
        self.view = None
        self.generation: Optional[int] = None
        #: JSON artifact parses paid during warm start (0 on the packed
        #: path — the assertable zero-reparse counter; None when no
        #: store was involved).
        self.store_json_parses: Optional[int] = None
        #: Fleet membership (set by the fleet worker bootstrap).
        self.fleet: Optional[FleetInfo] = None
        #: Completed hot reloads (store-generation bumps picked up).
        self.reloads = 0
        #: Artifacts the latest pack only carries forward (no longer in
        #: the source store) and how many requests resolved one — the
        #: `/metrics` signal that clients still depend on removed
        #: artifacts (blocking a `store pack --compact`).
        self.stale: frozenset = frozenset()
        self.stale_serves = 0
        # Guards the embeddings/schemas dicts against concurrent
        # handler threads (registration during resolution); the
        # OrderedDicts remember insertion order of *dynamic* artifacts
        # for bounded eviction.
        self._lock = threading.Lock()
        self._dynamic_embeddings: "OrderedDict[str, None]" = OrderedDict()
        self._dynamic_schemas: "OrderedDict[str, None]" = OrderedDict()

    @classmethod
    def from_store(cls, path, config: Optional[EngineConfig] = None,
                   default_format: str = "auto") -> "ServiceState":
        """Warm-start: every stored artifact compiled before the first
        request, so serving begins with zero compile misses."""
        store = ArtifactStore(path, create=False)
        # warm_start shares the open store, so each artifact body is
        # read and parsed exactly once between the two of them.
        engine = Engine.warm_start(store, config=config)
        embeddings = {fingerprint: store.get_embedding(fingerprint)
                      for fingerprint in store.embedding_fingerprints()}
        schemas = {fingerprint: store.get_schema(fingerprint)
                   for fingerprint in store.schema_fingerprints()}
        state = cls(engine, embeddings, schemas, store_path=str(path),
                    default_format=default_format)
        state.store_json_parses = store.parses
        return state

    @classmethod
    def from_view(cls, view, store_path: Optional[str] = None,
                  config: Optional[EngineConfig] = None,
                  default_format: str = "auto") -> "ServiceState":
        """Warm-start from a packed store view
        (:class:`~repro.engine.storepack.StoreView`) — the pre-fork
        fleet's worker path: open is O(index), artifact bytes are
        mmap-shared across workers, and **zero** JSON artifact parses
        happen (``state.store_json_parses == 0``, asserted in tests and
        the fleet benchmark)."""
        engine = Engine.warm_start(view, config=config)
        embeddings = {fingerprint: view.get_embedding(fingerprint)
                      for fingerprint in view.embedding_fingerprints()}
        schemas = {fingerprint: view.get_schema(fingerprint)
                   for fingerprint in view.schema_fingerprints()}
        state = cls(engine, embeddings, schemas,
                    store_path=store_path or str(view.path),
                    default_format=default_format)
        state.view = view
        state.generation = view.generation
        state.store_json_parses = view.json_parses
        state.stale = view.stale_fingerprints()
        return state

    def reload_from(self, view) -> int:
        """Adopt a newer pack generation without dropping a request.

        New artifacts are compiled *before* the serving dicts flip, so
        every request — including ones in flight on the old artifacts —
        always resolves against a fully-compiled set; artifacts already
        compiled are fingerprint-cache hits and cost nothing.  The
        reload is additive (packs grow; an artifact removed from the
        store keeps serving until restart).  Returns the number of new
        artifacts adopted.
        """
        self.engine.ensure_capacity(
            schemas=len(view.schema_fingerprints()),
            embeddings=len(view.embedding_fingerprints()))
        new_schemas: dict[str, DTD] = {}
        new_embeddings: dict[str, SchemaEmbedding] = {}
        for fingerprint in view.schema_fingerprints():
            if fingerprint not in self.schemas:
                schema = view.get_schema(fingerprint)
                self.engine.compile_schema(schema)
                new_schemas[fingerprint] = schema
        for fingerprint in view.embedding_fingerprints():
            if fingerprint not in self.embeddings:
                embedding = view.get_embedding(fingerprint)
                compiled = self.engine.compile_embedding(embedding)
                if view.embedding_validated(fingerprint):
                    compiled.mark_validated()
                    compiled.instmap
                if fingerprint in view.codec_fingerprints():
                    compiled.attach_codec(view.get_codec_source(fingerprint))
                new_embeddings[fingerprint] = embedding
        with self._lock:
            self.schemas.update(new_schemas)
            self.embeddings.update(new_embeddings)
            old_view, self.view = self.view, view
            self.generation = view.generation
            self.stale = view.stale_fingerprints()
            self.reloads += 1
        if old_view is not None and old_view is not view:
            # In-flight requests hold plain artifact objects, never the
            # view; the old mmap can drop immediately.
            old_view.close()
        return len(new_schemas) + len(new_embeddings)

    @classmethod
    def from_embedding(cls, embedding: SchemaEmbedding,
                       validate: bool = True) -> "ServiceState":
        """An in-memory service around one embedding (tests, examples)."""
        engine = Engine()
        engine.compile_embedding(embedding, ensure_valid=validate)
        state = cls(engine,
                    {embedding.fingerprint(): embedding},
                    {embedding.source.fingerprint(): embedding.source,
                     embedding.target.fingerprint(): embedding.target})
        engine.reset_stats()
        return state

    # -- resolution --------------------------------------------------------
    def _count_stale(self, fingerprint: str) -> None:
        """One request resolved an artifact the source store dropped
        (served from a carry-forward blob) — surfaced in `/metrics`."""
        if fingerprint in self.stale:
            self.stale_serves += 1

    def resolve_embedding(self, ref: Optional[str],
                          ) -> tuple[str, SchemaEmbedding]:
        """The embedding a request names (by fingerprint or unique
        prefix); with no ``ref`` the store's sole embedding."""
        with self._lock:
            embeddings = dict(self.embeddings)
        if ref is None:
            if len(embeddings) == 1:
                only = next(iter(embeddings.items()))
                self._count_stale(only[0])
                return only
            if not embeddings:
                raise ProtocolError(404, "no-embeddings",
                                    "this server has no embeddings loaded")
            raise ProtocolError(
                400, "ambiguous-embedding",
                "several embeddings are loaded; name one via 'embedding': "
                + ", ".join(sorted(fp[:12] for fp in embeddings)))
        if not isinstance(ref, str):
            raise ProtocolError(400, "bad-request",
                                "'embedding' must be a fingerprint string")
        if ref in embeddings:
            self._count_stale(ref)
            return ref, embeddings[ref]
        matches = [fp for fp in embeddings if fp.startswith(ref)]
        if len(matches) == 1:
            self._count_stale(matches[0])
            return matches[0], embeddings[matches[0]]
        if len(matches) > 1:
            raise ProtocolError(400, "ambiguous-embedding",
                                f"fingerprint prefix {ref!r} matches "
                                f"{len(matches)} embeddings")
        raise ProtocolError(404, "unknown-embedding",
                            f"no embedding {ref!r} on this server")

    def resolve_schema(self, value, what: str,
                       format: Optional[str] = None) -> DTD:
        """A schema by stored fingerprint/prefix, or inline schema text
        in any frontend format.

        ``format`` is the request's ``format`` field: ``None`` (field
        absent) falls back to the state's ``default_format``; an
        explicit ``"auto"`` forces sniffing even when the server was
        started with a concrete ``--format``.  Only when the request
        names a concrete format is undetectable text parsed anyway —
        otherwise text no frontend recognises is treated as an unknown
        fingerprint (404), preserving the pre-frontend contract.
        """
        if not isinstance(value, str) or not value:
            raise ProtocolError(400, "bad-request",
                                f"'{what}' must be a schema fingerprint "
                                "or inline schema text")
        with self._lock:
            schemas = dict(self.schemas)
        if value in schemas:
            self._count_stale(value)
            return schemas[value]
        matches = [fp for fp in schemas if fp.startswith(value)]
        if len(matches) == 1:
            self._count_stale(matches[0])
            return schemas[matches[0]]
        if len(matches) > 1:
            raise ProtocolError(400, "ambiguous-schema",
                                f"'{what}' prefix matches "
                                f"{len(matches)} schemas")
        resolved = self.default_format if format is None else format
        if format is None or format == "auto":
            # No concrete request format: only text some frontend
            # recognises counts as inline — anything else is an
            # unknown fingerprint (404), whatever the server default
            # says; an 'auto' (requested or defaulted) then parses
            # with the detected frontend, a concrete default with that.
            try:
                detected = detect_format(value)
            except SchemaFormatError:
                raise ProtocolError(404, "unknown-schema",
                                    f"no schema {value!r} on this server"
                                    ) from None
            if resolved == "auto":
                resolved = detected
        try:
            return load_schema(value, format=resolved, name=what)
        except ValueError as exc:
            raise ProtocolError(400, "bad-schema",
                                f"'{what}' is not a parseable {resolved} "
                                f"schema: {exc}") from None

    def register_embedding(self, embedding: SchemaEmbedding) -> str:
        """Make a freshly found embedding addressable by later calls.

        Dynamic registrations are bounded: past
        ``MAX_DYNAMIC_EMBEDDINGS``/``MAX_DYNAMIC_SCHEMAS`` the oldest
        dynamically-added artifact is evicted (store-loaded artifacts
        never are)."""
        fingerprint = embedding.fingerprint()
        with self._lock:
            if fingerprint not in self.embeddings:
                self.embeddings[fingerprint] = embedding
                self._dynamic_embeddings[fingerprint] = None
                while len(self._dynamic_embeddings) > \
                        MAX_DYNAMIC_EMBEDDINGS:
                    oldest, _ = self._dynamic_embeddings.popitem(
                        last=False)
                    self.embeddings.pop(oldest, None)
            for schema in (embedding.source, embedding.target):
                schema_fp = schema.fingerprint()
                if schema_fp not in self.schemas:
                    self.schemas[schema_fp] = schema
                    self._dynamic_schemas[schema_fp] = None
                    while len(self._dynamic_schemas) > \
                            MAX_DYNAMIC_SCHEMAS:
                        oldest, _ = self._dynamic_schemas.popitem(
                            last=False)
                        self.schemas.pop(oldest, None)
        return fingerprint


# -- handlers -----------------------------------------------------------------

def _document_batch(state: ServiceState, payload: dict,
                    apply_one: Callable[[SchemaEmbedding, str], str],
                    embedding_ref: Optional[str]) -> dict:
    """The shared map/invert shape: resolve the embedding, run
    ``apply_one(embedding, xml) -> output`` per document with per-item
    failure isolation (CLI batch semantics), and assemble the
    single-vs-batch response.

    Item shape: ``{"name", "ok", "output"}`` on success,
    ``{"name", "ok", "error"}`` on failure — the error string is never
    placed where document content goes, matching ``/v1/translate``.
    """
    fingerprint, embedding = state.resolve_embedding(embedding_ref)
    items, single = documents_from(payload)
    results = []
    failures = 0
    for name, xml in items:
        try:
            results.append({"name": name, "ok": True,
                            "output": apply_one(embedding, xml)})
        except Exception as exc:  # one bad document must not sink the batch
            failures += 1
            results.append({"name": name, "ok": False,
                            "error": f"{type(exc).__name__}: {exc}"})
    response = {"embedding": fingerprint, "failures": failures}
    if single:
        response["result"] = results[0]
    else:
        response["results"] = results
    return response


def _handle_map(state: ServiceState, payload: dict) -> dict:
    options = parse_fields(payload, ENDPOINT_FIELDS["/v1/map"])

    def apply_one(embedding: SchemaEmbedding, xml: str) -> str:
        # Parse→map→serialize through the generated codec when the
        # embedding has one (byte-identical to serializing the
        # interpreted mapping, asserted by the equivalence tests).
        return state.engine.map_text(embedding, xml,
                                     validate=options["validate"])

    return _document_batch(state, payload, apply_one, options["embedding"])


def _handle_invert(state: ServiceState, payload: dict) -> dict:
    options = parse_fields(payload, ENDPOINT_FIELDS["/v1/invert"])

    def apply_one(embedding: SchemaEmbedding, xml: str) -> str:
        return to_string(state.engine.invert(embedding, parse_xml(xml),
                                             strict=options["strict"]))

    return _document_batch(state, payload, apply_one, options["embedding"])


def _handle_translate(state: ServiceState, payload: dict) -> dict:
    options = parse_fields(payload, ENDPOINT_FIELDS["/v1/translate"])
    fingerprint, embedding = state.resolve_embedding(options["embedding"])
    context_type = options["context_type"]
    queries, single = queries_from(payload)
    results = []
    failures = 0
    for query in queries:
        try:
            anfa = state.engine.translate_query(embedding, query,
                                                context_type)
            results.append({"query": query, "ok": True,
                            "anfa": anfa.canonical_describe(),
                            "empty": anfa.is_fail()})
        except Exception as exc:  # one bad query must not sink the batch
            failures += 1
            results.append({"query": query, "ok": False,
                            "error": f"{type(exc).__name__}: {exc}"})
    response = {"embedding": fingerprint, "failures": failures}
    if single:
        response["result"] = results[0]
    else:
        response["results"] = results
    return response


def _handle_find(state: ServiceState, payload: dict) -> dict:
    options = parse_fields(payload, ENDPOINT_FIELDS["/v1/find"],
                           available_formats())
    source = state.resolve_schema(payload.get("source"), "source",
                                  format=options["format"])
    target = state.resolve_schema(payload.get("target"), "target",
                                  format=options["format"])
    result = state.engine.find_embedding(
        source, target, method=options["method"] or "auto",
        seed=options["seed"], restarts=options["restarts"])
    response = {
        "found": result.found,
        "method": result.method,
        "quality": result.quality,
        "seconds": result.seconds,
        "embedding": None,
    }
    if result.embedding is not None:
        fingerprint = state.register_embedding(result.embedding)
        response["embedding"] = fingerprint
        response["payload"] = embedding_to_payload(result.embedding)
    return response


def _handle_evolve(state: ServiceState, payload: dict) -> dict:
    """``POST /v1/evolve`` — per-query compatibility verdicts across a
    schema version bump.

    The response is ``EvolutionReport.to_payload()`` verbatim, so the
    served verdicts are byte-identical to a direct ``Engine.evolve``
    call (the same contract every other endpoint honours).  A broken
    query in the batch yields a structured ``broken`` verdict, never an
    HTTP error.
    """
    options = parse_fields(payload, ENDPOINT_FIELDS["/v1/evolve"],
                           available_formats())
    old = state.resolve_schema(payload.get("old"), "old",
                               format=options["format"])
    new = state.resolve_schema(payload.get("new"), "new",
                               format=options["format"])
    queries, _ = queries_from(payload)
    # An absent 'embedding' means "search between the versions" — it is
    # NOT the translate/map shorthand for "the sole loaded embedding",
    # which would silently pair unrelated schemas.
    embedding: Optional[SchemaEmbedding] = None
    if options["embedding"] is not None:
        _, embedding = state.resolve_embedding(options["embedding"])
    try:
        report = state.engine.evolve(
            old, new, queries, embedding=embedding,
            validate=options["validate"],
            method=options["method"] or "auto",
            seed=options["seed"], restarts=options["restarts"],
            samples=options["samples"])
    except EmbeddingError as exc:
        raise ProtocolError(400, "invalid-embedding", str(exc)) from None
    if report.embedding_object is not None:
        state.register_embedding(report.embedding_object)
    return report.to_payload()


def _handle_healthz(state: ServiceState) -> dict:
    payload = {
        "ok": True,
        "uptime_seconds": round(time.time() - state.started_at, 3),
        "embeddings": len(state.embeddings),
        "schemas": len(state.schemas),
        "store": state.store_path,
        "generation": state.generation,
        "store_json_parses": state.store_json_parses,
    }
    if state.fleet is not None:
        payload["worker"] = state.fleet.worker_id
        payload["pid"] = os.getpid()
        payload["reloads"] = state.reloads
    return payload


def _handle_metrics(state: ServiceState) -> dict:
    payload = {
        "requests": state.metrics.snapshot(),
        "engine": state.engine.stats(),
        "generation": state.generation,
        "reloads": state.reloads,
        "stale_artifacts": len(state.stale),
        "stale_serves": state.stale_serves,
    }
    if state.fleet is not None:
        payload["worker"] = state.fleet.worker_id
    return payload


def _handle_fleet(state: ServiceState) -> dict:
    """The fleet topology — what a routing client needs: worker ids
    with their direct ports (the consistent-hash ring nodes), the
    shared port, and the active store generation."""
    fleet = state.fleet
    if fleet is None:
        return {"fleet": False, "workers": [],
                "generation": state.generation}
    return {
        "fleet": True,
        "worker": fleet.worker_id,
        "host": fleet.host,
        "shared_port": fleet.shared_port,
        "workers": [{"id": row["id"], "port": row["port"]}
                    for row in fleet.workers],
        "generation": state.generation,
        "reloads": state.reloads,
        "restarts": fleet.restart_count(),
    }


def _handle_fleet_metrics(state: ServiceState) -> dict:
    """The fleet-wide ``/metrics`` aggregate: this worker fans out to
    every peer's direct port, merges counters (sums; latency tails stay
    per-worker, the aggregate keeps the worst), and reports per-worker
    rows alongside.  A dead peer becomes an ``ok: false`` row — the
    aggregate then covers the workers that answered."""
    from repro.serve.client import ServeClient

    fleet = state.fleet
    local = {"worker": fleet.worker_id if fleet is not None else None,
             "ok": True,
             "requests": state.metrics.snapshot(),
             "engine": state.engine.stats(),
             "generation": state.generation,
             "reloads": state.reloads}
    rows = [local]
    if fleet is not None:
        for row in fleet.workers:
            if row["id"] == fleet.worker_id:
                continue
            try:
                peer = ServeClient(fleet.host, row["port"], timeout=5.0)
                payload = peer.metrics()
                rows.append({"worker": row["id"], "ok": True,
                             "requests": payload.get("requests", {}),
                             "engine": payload.get("engine", {}),
                             "generation": payload.get("generation"),
                             "reloads": payload.get("reloads", 0)})
            except Exception as exc:
                rows.append({"worker": row["id"], "ok": False,
                             "error": f"{type(exc).__name__}: {exc}"})
    answered = [row for row in rows if row["ok"]]
    rows.sort(key=lambda row: (row["worker"] is None, row["worker"]))
    return {
        "fleet": fleet is not None,
        "workers": rows,
        "aggregate": {
            "requests": merge_request_snapshots(
                [row["requests"] for row in answered]),
            "engine": merge_engine_stats(
                [row["engine"] for row in answered]),
        },
        "restarts": (fleet.restart_count() if fleet is not None else 0),
        "generation": state.generation,
    }


_POST_ROUTES: dict[str, Callable[[ServiceState, dict], dict]] = {
    "/v1/map": _handle_map,
    "/v1/invert": _handle_invert,
    "/v1/translate": _handle_translate,
    "/v1/find": _handle_find,
    "/v1/evolve": _handle_evolve,
}

_GET_ROUTES: dict[str, Callable[[ServiceState], dict]] = {
    "/healthz": _handle_healthz,
    "/metrics": _handle_metrics,
    "/metrics/fleet": _handle_fleet_metrics,
    "/fleet": _handle_fleet,
}


def dispatch(state: ServiceState, method: str, path: str,
             body: Union[bytes, dict, None] = None) -> tuple[int, dict]:
    """Route one request; always returns ``(status, payload)``.

    Request metrics (counts, errors, latency) are recorded here, so any
    transport — HTTP, tests, an embedded caller — feeds the same
    ``/metrics`` numbers.
    """
    started = time.perf_counter()
    status, payload = _dispatch(state, method, path, body)
    # Unknown paths share one overflow label so probing clients cannot
    # grow the per-endpoint registry (its own cap is the backstop).
    known = path in _POST_ROUTES or path in _GET_ROUTES
    state.metrics.observe(path if known else OVERFLOW_ENDPOINT,
                          time.perf_counter() - started,
                          ok=status < 400)
    return status, payload


def _dispatch(state: ServiceState, method: str, path: str,
              body: Union[bytes, dict, None]) -> tuple[int, dict]:
    try:
        if method == "GET":
            handler = _GET_ROUTES.get(path)
            if handler is None:
                if path in _POST_ROUTES:
                    raise ProtocolError(405, "method-not-allowed",
                                        f"{path} expects POST")
                raise ProtocolError(404, "not-found",
                                    f"no endpoint {path}")
            return 200, handler(state)
        if method == "POST":
            handler = _POST_ROUTES.get(path)
            if handler is None:
                if path in _GET_ROUTES:
                    raise ProtocolError(405, "method-not-allowed",
                                        f"{path} expects GET")
                raise ProtocolError(404, "not-found",
                                    f"no endpoint {path}")
            payload = (body if isinstance(body, dict)
                       else decode_body(body or b""))
            return 200, handler(state, payload)
        raise ProtocolError(405, "method-not-allowed",
                            f"unsupported method {method}")
    except ProtocolError as exc:
        return exc.status, exc.payload()
    except Exception as exc:  # a handler fault must not kill the thread
        return 500, ProtocolError(500, "internal-error",
                                  f"{type(exc).__name__}: {exc}").payload()
