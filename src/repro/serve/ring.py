"""Consistent-hash routing of fingerprints onto fleet workers.

Each worker owns a slice of fingerprint space, so a routing client
sends every request for one embedding to the same worker — that
worker's translation LRU and compiled artifacts stay hot on its slice
instead of every worker caching everything.  Consistent hashing keeps
the slices stable under fleet-size changes: adding or removing one
worker remaps only the fingerprints adjacent to its points, not the
whole space.

The ring is deterministic (SHA-256 over ``"node:replica"`` labels), so
every client of the same worker-id set computes the same ownership —
there is no coordination step.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Sequence, Union

Node = Union[int, str]

#: Virtual points per node; enough that 2–16 workers split fingerprint
#: space within a few percent of evenly.
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over a fixed node set."""

    def __init__(self, nodes: Sequence[Node],
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if not nodes:
            raise ValueError("a hash ring needs at least one node")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.nodes = list(dict.fromkeys(nodes))  # de-dup, order-stable
        points = []
        for node in self.nodes:
            for replica in range(replicas):
                points.append((_point(f"{node}:{replica}"), node))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def owner(self, key: str) -> Node:
        """The node owning ``key`` (clockwise-next point on the ring)."""
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def slices(self, keys: Sequence[str]) -> dict[Node, list[str]]:
        """Partition ``keys`` by owning node (diagnostics, tests)."""
        partition: dict[Node, list[str]] = {node: [] for node in self.nodes}
        for key in keys:
            partition[self.owner(key)].append(key)
        return partition

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"HashRing(nodes={self.nodes!r})"
