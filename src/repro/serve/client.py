"""A small stdlib client for the serve daemon — tests and benchmarks
drive the HTTP surface through this instead of hand-rolling requests.

One :class:`ServeClient` is safe to share across threads: each thread
keeps its own persistent keep-alive connection (the daemon speaks
HTTP/1.1), so repeated calls measure the engine rather than TCP
connection setup.  A broken or stale connection (server restart,
keep-alive timeout) is dropped and the request retried once on a fresh
socket — every endpoint is read-only/deterministic, so the retry is
safe.  Error responses raise :class:`ServeError` carrying the HTTP
status and the structured ``error.code``/``error.message`` body.

:class:`FleetClient` adds fleet awareness on top: it learns the
topology from ``GET /fleet`` and routes embedding-addressed calls to
the worker that owns the fingerprint on the consistent-hash ring
(:mod:`repro.serve.ring`), so each worker's caches stay hot on its
slice.  Calls without an embedding fingerprint go to the shared
kernel-balanced port.

Endpoint methods return typed result objects — :class:`ServeResult`
(and :class:`EvolveResult` for ``evolve``): frozen, attribute-access
views over the decoded response (``result.failures``,
``result.counts["broken"]``) that still behave like the mapping they
wrap (``result["failures"]``, ``==`` against a plain dict), with the
exact wire payload on ``result.raw``.  The wire format is unchanged —
the wrapper exists purely client-side.
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Optional, Sequence

from repro.serve.ring import HashRing


class ServeResult:
    """A frozen attribute-access view over one decoded response.

    ``result.failures`` and ``result["failures"]`` are the same value;
    ``result.raw`` is the decoded wire payload itself (the dict whose
    sorted-key JSON encoding is byte-identical to what the daemon
    sent).  Equality compares payloads, so existing ``response ==
    {...}`` assertions keep working verbatim.
    """

    __slots__ = ("_raw",)

    def __init__(self, raw: dict) -> None:
        object.__setattr__(self, "_raw", dict(raw))

    @property
    def raw(self) -> dict:
        """The decoded wire payload, exactly as the daemon sent it."""
        return self._raw

    def __getattr__(self, name: str):
        try:
            return self._raw[name]
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__} has no field {name!r}") from None

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __getitem__(self, key):
        return self._raw[key]

    def get(self, key, default=None):
        return self._raw.get(key, default)

    def __contains__(self, key) -> bool:
        return key in self._raw

    def __iter__(self):
        return iter(self._raw)

    def __len__(self) -> int:
        return len(self._raw)

    def keys(self):
        return self._raw.keys()

    def values(self):
        return self._raw.values()

    def items(self):
        return self._raw.items()

    def __eq__(self, other) -> bool:
        if isinstance(other, ServeResult):
            return self._raw == other._raw
        if isinstance(other, dict):
            return self._raw == other
        return NotImplemented

    __hash__ = None  # mutable-mapping semantics: unhashable, like dict

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._raw!r})"


class EvolveResult(ServeResult):
    """The ``/v1/evolve`` response: per-query compatibility verdicts.

    ``result.counts`` maps verdict → count, ``result.verdicts`` is the
    per-query list (each row a dict with ``query``/``verdict``/``ok``/
    ``reason``/``detail``/``translation``/``anfa``), and
    :meth:`broken` selects the rows that did not survive the bump.
    """

    @property
    def verdicts(self) -> list:
        return self._raw["verdicts"]

    @property
    def counts(self) -> dict:
        return self._raw["counts"]

    def broken(self) -> list:
        """The verdict rows whose query did not survive the bump."""
        return [row for row in self._raw["verdicts"] if not row["ok"]]


class ServeError(ValueError):
    """A non-2xx response from the daemon, with its structured error.

    A ``ValueError`` so client code sitting behind the package's
    exit-2 boundary (``except (OSError, ValueError)``) reports a
    daemon-side refusal as one clean error line, never a traceback."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status}] {code}: {message}")
        self.status = status
        self.code = code
        self.message = message


class ServeClient:
    """JSON-over-HTTP client for one serve daemon (keep-alive)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8421,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        # One persistent connection per thread: http.client connections
        # are not thread-safe, threads must not interleave on a socket.
        self._local = threading.local()
        #: Reconnects paid after the initial connection per thread —
        #: visible so benchmarks can assert connections are reused.
        self.reconnects = 0

    @classmethod
    def for_server(cls, server, timeout: float = 60.0) -> "ServeClient":
        """A client bound to a running :class:`ReproServer`."""
        return cls(server.host, server.port, timeout=timeout)

    # -- transport ---------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            if getattr(self._local, "connected_once", False):
                self.reconnects += 1
            self._local.connected_once = True
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            self._local.connection = None
            try:
                connection.close()
            except OSError:
                pass

    def close(self) -> None:
        """Close this thread's persistent connection (if any)."""
        self._drop_connection()

    def request(self, method: str, path: str,
                payload: Optional[dict] = None) -> dict:
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        headers = {"Content-Type": "application/json"} if body else {}
        last_error: Optional[Exception] = None
        raw = b""
        status = 0
        for attempt in range(2):
            connection = self._connection()
            try:
                connection.request(method, path, body=body,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
                status = response.status
                last_error = None
                break
            except (http.client.HTTPException, ConnectionError,
                    OSError) as exc:
                # Stale keep-alive socket (server closed it between
                # requests) or transient failure: reconnect and retry
                # once — every endpoint is safe to replay.
                last_error = exc
                self._drop_connection()
        if last_error is not None:
            raise last_error
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._drop_connection()
            raise ServeError(status, "bad-response",
                             f"undecodable response body: {exc}") from None
        if status >= 400:
            error = decoded.get("error", {}) if isinstance(decoded, dict) \
                else {}
            raise ServeError(status, error.get("code", "error"),
                             error.get("message", raw.decode("utf-8",
                                                             "replace")))
        return decoded

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> ServeResult:
        return ServeResult(self.request("GET", "/healthz"))

    def metrics(self) -> ServeResult:
        return ServeResult(self.request("GET", "/metrics"))

    def fleet(self) -> ServeResult:
        """The fleet topology (``GET /fleet``)."""
        return ServeResult(self.request("GET", "/fleet"))

    def fleet_metrics(self) -> ServeResult:
        """The fleet-wide metrics aggregate (``GET /metrics/fleet``)."""
        return ServeResult(self.request("GET", "/metrics/fleet"))

    def map(self, xml: Optional[str] = None,
            documents: Optional[Sequence[dict]] = None,
            embedding: Optional[str] = None, validate: bool = True,
            name: Optional[str] = None) -> ServeResult:
        payload: dict = {"validate": validate}
        if embedding is not None:
            payload["embedding"] = embedding
        if xml is not None:
            payload["xml"] = xml
            if name is not None:
                payload["name"] = name
        if documents is not None:
            payload["documents"] = list(documents)
        return ServeResult(self.request("POST", "/v1/map", payload))

    def invert(self, xml: Optional[str] = None,
               documents: Optional[Sequence[dict]] = None,
               embedding: Optional[str] = None, strict: bool = True,
               name: Optional[str] = None) -> ServeResult:
        payload: dict = {"strict": strict}
        if embedding is not None:
            payload["embedding"] = embedding
        if xml is not None:
            payload["xml"] = xml
            if name is not None:
                payload["name"] = name
        if documents is not None:
            payload["documents"] = list(documents)
        return ServeResult(self.request("POST", "/v1/invert", payload))

    def translate(self, query: Optional[str] = None,
                  queries: Optional[Sequence[str]] = None,
                  embedding: Optional[str] = None,
                  context_type: Optional[str] = None) -> ServeResult:
        payload: dict = {}
        if embedding is not None:
            payload["embedding"] = embedding
        if context_type is not None:
            payload["context_type"] = context_type
        if query is not None:
            payload["query"] = query
        if queries is not None:
            payload["queries"] = list(queries)
        return ServeResult(self.request("POST", "/v1/translate", payload))

    def find(self, source: str, target: str, method: str = "auto",
             seed: int = 0, restarts: int = 20,
             format: Optional[str] = None) -> ServeResult:
        """``source``/``target`` are stored fingerprints or inline
        schema text; ``format`` names the frontend for inline text
        (``dtd``/``compact``/``xsd``; default: server-side detection).
        """
        payload = {"source": source, "target": target, "method": method,
                   "seed": seed, "restarts": restarts}
        if format is not None:
            payload["format"] = format
        return ServeResult(self.request("POST", "/v1/find", payload))

    def evolve(self, old: str, new: str, query: Optional[str] = None,
               queries: Optional[Sequence[str]] = None,
               embedding: Optional[str] = None, validate: bool = True,
               method: str = "auto", seed: int = 0, restarts: int = 20,
               samples: Optional[int] = None,
               format: Optional[str] = None) -> EvolveResult:
        """Per-query compatibility verdicts across a version bump
        (``POST /v1/evolve``).

        ``old``/``new`` are stored fingerprints or inline schema text
        (``format`` as in :meth:`find`); ``embedding`` optionally names
        a stored embedding carrying the bump — absent, the server
        searches for one.  The result payload is byte-identical to a
        direct ``Engine.evolve(...).to_payload()``.
        """
        payload: dict = {"old": old, "new": new, "validate": validate,
                         "method": method, "seed": seed,
                         "restarts": restarts}
        if query is not None:
            payload["query"] = query
        if queries is not None:
            payload["queries"] = list(queries)
        if embedding is not None:
            payload["embedding"] = embedding
        if samples is not None:
            payload["samples"] = samples
        if format is not None:
            payload["format"] = format
        return EvolveResult(self.request("POST", "/v1/evolve", payload))


class FleetClient:
    """A fleet-aware client: consistent-hash routing per embedding.

    Built against the fleet's shared address; ``GET /fleet`` supplies
    the worker ring.  ``map``/``invert``/``translate`` calls that name
    an embedding fingerprint go to the owning worker's direct port
    (LRU-affine); calls without one — and ``find``/``healthz``/
    ``metrics`` — use the shared kernel-balanced port.  Against a
    non-fleet daemon every call degrades to the shared client.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8421,
                 timeout: float = 60.0) -> None:
        self.shared = ServeClient(host, port, timeout=timeout)
        self.host = host
        self.port = port
        self.timeout = timeout
        self._workers: dict = {}
        self._ring: Optional[HashRing] = None
        self.refresh()

    @classmethod
    def for_server(cls, server, timeout: float = 60.0) -> "FleetClient":
        """A client bound to a running fleet (or single) server."""
        return cls(server.host, server.port, timeout=timeout)

    def refresh(self) -> ServeResult:
        """Re-fetch the topology (e.g. after a fleet resize)."""
        topology = self.shared.fleet()
        workers = topology.get("workers") or []
        self._workers = {
            row["id"]: ServeClient(self.host, row["port"],
                                   timeout=self.timeout)
            for row in workers}
        self._ring = (HashRing(sorted(self._workers))
                      if self._workers else None)
        return topology

    @property
    def workers(self) -> dict:
        """Worker id → direct :class:`ServeClient` (empty: no fleet)."""
        return dict(self._workers)

    def route(self, embedding: Optional[str]) -> ServeClient:
        """The client a call for ``embedding`` should use."""
        if embedding is None or self._ring is None:
            return self.shared
        return self._workers[self._ring.owner(embedding)]

    def owner(self, embedding: str) -> Optional[int]:
        """The worker id owning a fingerprint (None: no fleet)."""
        return self._ring.owner(embedding) if self._ring else None

    def close(self) -> None:
        self.shared.close()
        for client in self._workers.values():
            client.close()

    # -- routed endpoints --------------------------------------------------
    def map(self, *args, embedding: Optional[str] = None,
            **kwargs) -> ServeResult:
        return self.route(embedding).map(*args, embedding=embedding,
                                         **kwargs)

    def invert(self, *args, embedding: Optional[str] = None,
               **kwargs) -> ServeResult:
        return self.route(embedding).invert(*args, embedding=embedding,
                                            **kwargs)

    def translate(self, *args, embedding: Optional[str] = None,
                  **kwargs) -> ServeResult:
        return self.route(embedding).translate(*args,
                                               embedding=embedding,
                                               **kwargs)

    def evolve(self, *args, embedding: Optional[str] = None,
               **kwargs) -> EvolveResult:
        """Routed like map/translate: a named embedding goes to its
        ring owner (whose compiled caches already hold it); a search
        request uses the shared port."""
        return self.route(embedding).evolve(*args, embedding=embedding,
                                            **kwargs)

    # -- shared-port endpoints ---------------------------------------------
    def find(self, *args, **kwargs) -> ServeResult:
        return self.shared.find(*args, **kwargs)

    def healthz(self) -> ServeResult:
        return self.shared.healthz()

    def metrics(self) -> ServeResult:
        return self.shared.metrics()

    def fleet_metrics(self) -> ServeResult:
        return self.shared.fleet_metrics()
