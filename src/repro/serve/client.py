"""A small stdlib client for the serve daemon — tests and benchmarks
drive the HTTP surface through this instead of hand-rolling requests.

One :class:`ServeClient` is safe to share across threads: each request
opens its own ``http.client`` connection (the daemon is threaded, so
concurrency comes from many in-flight requests, not connection reuse).
Error responses raise :class:`ServeError` carrying the HTTP status and
the structured ``error.code``/``error.message`` body.
"""

from __future__ import annotations

import http.client
import json
from typing import Optional, Sequence


class ServeError(Exception):
    """A non-2xx response from the daemon, with its structured error."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status}] {code}: {message}")
        self.status = status
        self.code = code
        self.message = message


class ServeClient:
    """JSON-over-HTTP client for one serve daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8421,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def for_server(cls, server, timeout: float = 60.0) -> "ServeClient":
        """A client bound to a running :class:`ReproServer`."""
        return cls(server.host, server.port, timeout=timeout)

    # -- transport ---------------------------------------------------------
    def request(self, method: str, path: str,
                payload: Optional[dict] = None) -> dict:
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            body = (json.dumps(payload).encode("utf-8")
                    if payload is not None else None)
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        finally:
            connection.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServeError(status, "bad-response",
                             f"undecodable response body: {exc}") from None
        if status >= 400:
            error = decoded.get("error", {}) if isinstance(decoded, dict) \
                else {}
            raise ServeError(status, error.get("code", "error"),
                             error.get("message", raw.decode("utf-8",
                                                             "replace")))
        return decoded

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def map(self, xml: Optional[str] = None,
            documents: Optional[Sequence[dict]] = None,
            embedding: Optional[str] = None, validate: bool = True,
            name: Optional[str] = None) -> dict:
        payload: dict = {"validate": validate}
        if embedding is not None:
            payload["embedding"] = embedding
        if xml is not None:
            payload["xml"] = xml
            if name is not None:
                payload["name"] = name
        if documents is not None:
            payload["documents"] = list(documents)
        return self.request("POST", "/v1/map", payload)

    def invert(self, xml: Optional[str] = None,
               documents: Optional[Sequence[dict]] = None,
               embedding: Optional[str] = None, strict: bool = True,
               name: Optional[str] = None) -> dict:
        payload: dict = {"strict": strict}
        if embedding is not None:
            payload["embedding"] = embedding
        if xml is not None:
            payload["xml"] = xml
            if name is not None:
                payload["name"] = name
        if documents is not None:
            payload["documents"] = list(documents)
        return self.request("POST", "/v1/invert", payload)

    def translate(self, query: Optional[str] = None,
                  queries: Optional[Sequence[str]] = None,
                  embedding: Optional[str] = None,
                  context_type: Optional[str] = None) -> dict:
        payload: dict = {}
        if embedding is not None:
            payload["embedding"] = embedding
        if context_type is not None:
            payload["context_type"] = context_type
        if query is not None:
            payload["query"] = query
        if queries is not None:
            payload["queries"] = list(queries)
        return self.request("POST", "/v1/translate", payload)

    def find(self, source: str, target: str, method: str = "auto",
             seed: int = 0, restarts: int = 20,
             format: Optional[str] = None) -> dict:
        """``source``/``target`` are stored fingerprints or inline
        schema text; ``format`` names the frontend for inline text
        (``dtd``/``compact``/``xsd``; default: server-side detection).
        """
        payload = {"source": source, "target": target, "method": method,
                   "seed": seed, "restarts": restarts}
        if format is not None:
            payload["format"] = format
        return self.request("POST", "/v1/find", payload)
