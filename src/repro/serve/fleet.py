"""The pre-fork worker fleet — many cores behind one serve surface.

:class:`FleetServer` is a supervisor: it binds every listening socket
up front, forks N workers, and from then on only watches.  Each worker
is a full :class:`~repro.serve.server.ReproServer` pair over one warm
engine, started from the packed artifact store
(:mod:`repro.engine.storepack`) — open is O(index), artifact pages are
mmap-shared across the fleet by the kernel, and warm start performs
zero JSON parses however many workers fork.

Socket topology (all bound by the parent, before any fork):

* the **shared port** — one per-worker ``SO_REUSEPORT`` socket on the
  same address where the platform has it (the kernel load-balances
  connections across workers), or a single inherited listener
  otherwise (the kernel wakes one accepting worker per connection);
* one **direct port** per worker (ephemeral) — the consistent-hash
  routing surface (:mod:`repro.serve.ring`): a fleet-aware client
  sends every request for one embedding fingerprint to its owning
  worker, keeping that worker's caches hot on its slice.  Peers also
  use direct ports for ``/metrics/fleet`` fan-out.

Because the parent owns every socket, the topology is known before the
first fork (no port-handshake with workers) and a crashed worker is
re-forked *onto the same sockets* — the listener is never dropped, and
connections arriving during the gap wait in the kernel backlog instead
of being refused.

Hot reload: workers poll the store's pack generation
(:func:`~repro.engine.storepack.current_generation`, one tiny file
read) and adopt a bump via
:meth:`~repro.serve.handlers.ServiceState.reload_from` — new artifacts
compile before the serving set flips, so no request is ever dropped or
served stale past one poll interval.

Shutdown: ``stop()`` (or SIGTERM/SIGINT to the parent) SIGTERMs the
workers, which drain in-flight requests before closing — the same
graceful path as the single-process daemon.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import socket
import threading
import time
import warnings
from pathlib import Path
from typing import Optional, Union

from repro.engine.session import EngineConfig
from repro.engine.storepack import (
    current_generation,
    current_pack_path,
    open_view,
    pack_store,
)
from repro.serve.handlers import FleetInfo, ServiceState
from repro.serve.server import (
    DEFAULT_DRAIN_SECONDS,
    DEFAULT_HOST,
    DEFAULT_PORT,
    ReproServer,
)

log = logging.getLogger("repro.serve.fleet")

#: How often a worker checks the store for a new pack generation.
DEFAULT_RELOAD_INTERVAL = 0.25

#: How often the supervisor's monitor thread checks worker liveness.
_MONITOR_INTERVAL = 0.2

#: Listen backlog — generous, because the backlog is what carries
#: connections across a worker crash/restart gap.
_BACKLOG = 128

SO_REUSEPORT_AVAILABLE = hasattr(socket, "SO_REUSEPORT")


def _listening_socket(host: str, port: int,
                      reuse_port: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(_BACKLOG)
    except OSError:
        sock.close()
        raise
    return sock


def _worker_main(worker_id: int, store_path: str,
                 shared_socket: socket.socket,
                 direct_socket: socket.socket,
                 other_sockets: list,
                 topology: list, host: str, shared_port: int,
                 restarts, config: Optional[EngineConfig],
                 default_format: str, reload_interval: float) -> None:
    """One worker process: warm-start from the pack view, serve on the
    inherited shared + direct listeners, watch for generation bumps,
    drain on SIGTERM."""
    # Fork copies every parent FD; drop the listeners that belong to
    # other workers so this process only ever accepts on its own two.
    for sock in other_sockets:
        try:
            sock.close()
        except OSError:
            pass

    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    # Ctrl-C goes to the whole foreground process group; the parent
    # orchestrates the graceful stop, workers must not race it.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    view = open_view(store_path)
    state = ServiceState.from_view(view, store_path=store_path,
                                   config=config,
                                   default_format=default_format)
    state.fleet = FleetInfo(worker_id=worker_id, host=host,
                            shared_port=shared_port,
                            workers=topology, restarts=restarts)

    shared_server = ReproServer(state=state,
                                listen_socket=shared_socket).start()
    direct_server = ReproServer(state=state,
                                listen_socket=direct_socket).start()

    def watch_reload() -> None:
        while not stop.wait(reload_interval):
            try:
                generation = current_generation(store_path)
                if generation is not None and \
                        generation != state.generation:
                    adopted = state.reload_from(open_view(store_path))
                    log.info("worker %d: reloaded to generation %s "
                             "(%d new artifacts)", worker_id,
                             generation, adopted)
            except Exception as exc:
                # A pack mid-publish or a transient read failure must
                # not kill the watcher; the next poll retries.
                log.warning("worker %d: reload check failed: %s",
                            worker_id, exc)

    watcher = threading.Thread(target=watch_reload,
                               name=f"repro-reload-{worker_id}",
                               daemon=True)
    watcher.start()

    stop.wait()
    shared_server.stop(drain_seconds=DEFAULT_DRAIN_SECONDS)
    direct_server.stop(drain_seconds=DEFAULT_DRAIN_SECONDS)


class FleetServer:
    """A pre-fork fleet of serve workers over one packed store.

    ``workers`` defaults to the CPU count.  ``port=0`` binds an
    ephemeral shared port (published as ``.port`` after ``start()``).
    The store is packed automatically on first use if it has no pack
    yet.  Requires a fork-capable platform (POSIX).
    """

    def __init__(self, store: Union[str, Path],
                 workers: Optional[int] = None,
                 host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 config: Optional[EngineConfig] = None,
                 default_format: str = "auto",
                 reload_interval: float = DEFAULT_RELOAD_INTERVAL) -> None:
        if not hasattr(os, "fork"):
            raise RuntimeError("the serve fleet needs a fork-capable "
                               "platform; use a single-process "
                               "ReproServer here")
        self.store_path = str(store)
        self.workers = workers or os.cpu_count() or 1
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self._requested = (host, port)
        self.config = config
        self.default_format = default_format
        self.reload_interval = reload_interval
        self._ctx = multiprocessing.get_context("fork")
        self.restarts = self._ctx.Value("Q", 0)
        self._shared_sockets: list[socket.socket] = []
        self._direct_sockets: list[socket.socket] = []
        self._processes: list = []
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # -- lifecycle ---------------------------------------------------------
    def _bind(self) -> None:
        host, port = self._requested
        if SO_REUSEPORT_AVAILABLE:
            # One REUSEPORT socket per worker on the same address; the
            # first bind resolves port 0, the rest join it.
            first = _listening_socket(host, port, reuse_port=True)
            bound_port = first.getsockname()[1]
            self._shared_sockets = [first] + [
                _listening_socket(host, bound_port, reuse_port=True)
                for _ in range(self.workers - 1)]
        else:
            # Single inherited listener: every worker accepts on dup'd
            # copies of one socket, the kernel wakes one per connection.
            listener = _listening_socket(host, port, reuse_port=False)
            self._shared_sockets = [listener] + [
                socket.socket(fileno=os.dup(listener.fileno()))
                for _ in range(self.workers - 1)]
        self._direct_sockets = [
            _listening_socket(host, 0, reuse_port=False)
            for _ in range(self.workers)]

    def _topology(self) -> list:
        return [{"id": worker_id,
                 "port": sock.getsockname()[1]}
                for worker_id, sock in enumerate(self._direct_sockets)]

    def _spawn(self, worker_id: int):
        own = {self._shared_sockets[worker_id],
               self._direct_sockets[worker_id]}
        others = [sock
                  for sock in (*self._shared_sockets,
                               *self._direct_sockets)
                  if sock not in own]
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self.store_path,
                  self._shared_sockets[worker_id],
                  self._direct_sockets[worker_id],
                  others, self._topology(),
                  self.host, self.port, self.restarts,
                  self.config, self.default_format,
                  self.reload_interval),
            name=f"repro-worker-{worker_id}", daemon=True)
        with warnings.catch_warnings():
            # Python 3.12 warns on fork-from-threaded-process; the
            # monitor thread re-forks crashed workers by design, and
            # the child execs no Python-thread-dependent state.
            warnings.simplefilter("ignore", DeprecationWarning)
            process.start()
        return process

    def _watch(self) -> None:
        """Reap crashed workers and re-fork them onto the same sockets
        (which the parent still holds — the kernel backlog carries
        connections across the gap, no listener is ever dropped)."""
        while not self._stopping.wait(_MONITOR_INTERVAL):
            for worker_id, process in enumerate(self._processes):
                if process.is_alive() or self._stopping.is_set():
                    continue
                process.join()
                log.warning("worker %d (pid %s) exited with code %s; "
                            "restarting", worker_id, process.pid,
                            process.exitcode)
                with self.restarts.get_lock():
                    self.restarts.value += 1
                self._processes[worker_id] = self._spawn(worker_id)

    def start(self) -> "FleetServer":
        if self._processes:
            raise RuntimeError("fleet is already running")
        if current_pack_path(self.store_path) is None:
            # First use of an unpacked store: build generation 1 so
            # workers have a view to open.
            pack_store(self.store_path)
        self._stopping.clear()
        self._bind()
        self._processes = [self._spawn(worker_id)
                           for worker_id in range(self.workers)]
        self._monitor = threading.Thread(target=self._watch,
                                         name="repro-fleet-monitor",
                                         daemon=True)
        self._monitor.start()
        return self

    def stop(self, drain_seconds: float = DEFAULT_DRAIN_SECONDS) -> None:
        """Graceful fleet shutdown: SIGTERM every worker (each drains
        its in-flight requests), reap them, release every port."""
        if not self._processes:
            return
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        for process in self._processes:
            if process.is_alive():
                process.terminate()  # SIGTERM → worker drains and exits
        deadline = time.monotonic() + drain_seconds + 5.0
        for process in self._processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for process in self._processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        self._processes = []
        for sock in (*self._shared_sockets, *self._direct_sockets):
            try:
                sock.close()
            except OSError:
                pass
        self._shared_sockets = []
        self._direct_sockets = []

    def serve_forever(self) -> None:
        """Blocking supervise loop for the CLI; Ctrl-C (or a SIGTERM
        the CLI converts to ``KeyboardInterrupt``) stops the fleet
        gracefully."""
        if not self._processes:
            self.start()
        try:
            while self._processes:
                time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- addressing / inspection -------------------------------------------
    @property
    def running(self) -> bool:
        return bool(self._processes)

    @property
    def host(self) -> str:
        return self._requested[0]

    @property
    def port(self) -> int:
        """The shared port (resolves ``port=0`` to the bound one)."""
        if self._shared_sockets:
            return self._shared_sockets[0].getsockname()[1]
        return self._requested[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def worker_ports(self) -> list[int]:
        """Each worker's direct (ring) port, by worker id."""
        return [sock.getsockname()[1] for sock in self._direct_sockets]

    @property
    def pids(self) -> list[Optional[int]]:
        return [process.pid for process in self._processes]

    @property
    def generation(self) -> Optional[int]:
        """The store's current pack generation."""
        return current_generation(self.store_path)

    def restart_count(self) -> int:
        return int(self.restarts.value)
