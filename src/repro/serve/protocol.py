"""The serve wire protocol — request parsing and error shapes.

Every request and response body is JSON.  The protocol layer is pure
(bytes/dicts in, dicts out, :class:`ProtocolError` on bad input) so the
HTTP transport stays a thin adapter and tests can exercise parsing
without a socket.

Batch semantics mirror the CLI batch surface: ``/v1/map`` and
``/v1/invert`` accept ``{"xml": …}`` for a single document or
``{"documents": [{"name", "xml"}, …]}`` for a batch; ``/v1/translate``
and ``/v1/evolve`` accept ``{"query": …}`` or ``{"queries": […]}``.
Batch items fail *individually* — one malformed document yields one
failed item, never an HTTP error for the whole batch.  Schema-bearing
payloads (``/v1/find``, ``/v1/evolve``) take an optional ``"format"``
naming the frontend for inline schema text
(``auto``/``dtd``/``compact``/``xsd``).

The scalar option fields of every endpoint live in one declarative
table, :data:`ENDPOINT_FIELDS` — a :class:`FieldSpec` row per field
(name, type, required, default) — parsed by :func:`parse_fields`, so
adding an endpoint means adding rows, not parser helpers.

Errors are structured: ``{"error": {"code": …, "message": …}}`` with
the HTTP status carrying the class (400 malformed request, 404 unknown
resource, 405 wrong method, 500 handler fault).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Sequence


class ProtocolError(ValueError):
    """A request the service refuses, with its HTTP status and code.

    A ``ValueError`` like every other bad-input error in the package,
    so the CLI/API boundary's ``except (OSError, ValueError)`` catches
    it wherever it might surface (the serve dispatch converts it to a
    structured 4xx long before that)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def payload(self) -> dict:
        return {"error": {"code": self.code, "message": self.message}}


def error_payload(status: int, code: str, message: str) -> dict:
    return ProtocolError(status, code, message).payload()


def decode_body(raw: bytes) -> dict:
    """The request body as a JSON object, or a 400 ProtocolError."""
    if not raw:
        raise ProtocolError(400, "empty-body",
                            "request body must be a JSON object")
    try:
        payload = json.loads(raw.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise ProtocolError(400, "bad-encoding",
                            f"request body is not UTF-8: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ProtocolError(400, "bad-json",
                            f"request body is not valid JSON: {exc}"
                            ) from None
    if not isinstance(payload, dict):
        raise ProtocolError(400, "bad-request",
                            "request body must be a JSON object, not "
                            f"{type(payload).__name__}")
    return payload


def encode(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _require_str(value, what: str) -> str:
    if not isinstance(value, str):
        raise ProtocolError(400, "bad-request",
                            f"{what} must be a string, not "
                            f"{type(value).__name__}")
    return value


def documents_from(payload: dict) -> tuple[list[tuple[str, str]], bool]:
    """Normalise a map/invert body to ``[(name, xml), …]``.

    Returns ``(items, single)`` — ``single`` marks the one-document
    shorthand, whose response carries ``result`` instead of
    ``results``.
    """
    if "xml" in payload and "documents" in payload:
        raise ProtocolError(400, "bad-request",
                            "give either 'xml' or 'documents', not both")
    if "xml" in payload:
        xml = _require_str(payload["xml"], "'xml'")
        name = _require_str(payload.get("name", "document"), "'name'")
        return [(name, xml)], True
    documents = payload.get("documents")
    if not isinstance(documents, list) or not documents:
        raise ProtocolError(400, "bad-request",
                            "expected 'xml' or a non-empty 'documents' "
                            "list")
    items: list[tuple[str, str]] = []
    for index, row in enumerate(documents):
        if not isinstance(row, dict) or "xml" not in row:
            raise ProtocolError(400, "bad-request",
                                f"documents[{index}] must be an object "
                                "with an 'xml' field")
        items.append((_require_str(row.get("name", f"document-{index}"),
                                   f"documents[{index}].name"),
                      _require_str(row["xml"], f"documents[{index}].xml")))
    return items, False


def queries_from(payload: dict) -> tuple[list[str], bool]:
    """Normalise a translate body to a query list (plus ``single``)."""
    if "query" in payload and "queries" in payload:
        raise ProtocolError(400, "bad-request",
                            "give either 'query' or 'queries', not both")
    if "query" in payload:
        return [_require_str(payload["query"], "'query'")], True
    queries = payload.get("queries")
    if not isinstance(queries, list) or not queries:
        raise ProtocolError(400, "bad-request",
                            "expected 'query' or a non-empty 'queries' "
                            "list")
    return [_require_str(query, f"queries[{index}]")
            for index, query in enumerate(queries)], False


# -- declarative field specs ---------------------------------------------------

@dataclass(frozen=True)
class FieldSpec:
    """One scalar request field, declaratively.

    ``type`` is one of ``"str"``, ``"bool"``, ``"int"`` or ``"format"``
    (a frontend-format name, validated against the registry list the
    caller passes — the protocol layer stays import-pure).  An absent
    field yields ``default`` (or a 400 when ``required``); a present
    field is type-checked with the endpoint-independent error shapes.
    JSON ``null`` counts as absent for ``"str"``/``"format"`` fields
    and as a type error for ``"bool"``/``"int"``.
    """

    name: str
    type: str
    required: bool = False
    default: object = None


#: Every endpoint's scalar option fields in one table.  Handlers call
#: ``parse_fields(payload, ENDPOINT_FIELDS[path], …)``; the non-scalar
#: shapes (documents/queries batches, inline schemas) keep their
#: dedicated normalisers below.
ENDPOINT_FIELDS: dict[str, tuple[FieldSpec, ...]] = {
    "/v1/map": (
        FieldSpec("embedding", "str"),
        FieldSpec("validate", "bool", default=True),
    ),
    "/v1/invert": (
        FieldSpec("embedding", "str"),
        FieldSpec("strict", "bool", default=True),
    ),
    "/v1/translate": (
        FieldSpec("embedding", "str"),
        FieldSpec("context_type", "str"),
    ),
    "/v1/find": (
        FieldSpec("method", "str"),
        FieldSpec("seed", "int", default=0),
        FieldSpec("restarts", "int", default=20),
        FieldSpec("format", "format"),
    ),
    "/v1/evolve": (
        FieldSpec("embedding", "str"),
        FieldSpec("validate", "bool", default=True),
        FieldSpec("method", "str"),
        FieldSpec("seed", "int", default=0),
        FieldSpec("restarts", "int", default=20),
        FieldSpec("samples", "int"),
        FieldSpec("format", "format"),
    ),
}


def parse_fields(payload: dict, specs: Sequence[FieldSpec],
                 known_formats: Sequence[str] = ()) -> dict:
    """Parse one endpoint's scalar fields per its spec table.

    Returns ``{field name: value}`` with defaults applied; raises the
    table-independent :class:`ProtocolError` shapes on bad input.
    """
    return {spec.name: _parse_field(payload, spec, known_formats)
            for spec in specs}


def _parse_field(payload: dict, spec: FieldSpec,
                 known_formats: Sequence[str]):
    if spec.name not in payload:
        if spec.required:
            raise ProtocolError(400, "bad-request",
                                f"'{spec.name}' is required")
        return spec.default
    value = payload[spec.name]
    if spec.type == "str":
        if value is None:
            return spec.default
        return _require_str(value, f"'{spec.name}'")
    if spec.type == "bool":
        if not isinstance(value, bool):
            raise ProtocolError(400, "bad-request",
                                f"'{spec.name}' must be a boolean")
        return value
    if spec.type == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(400, "bad-request",
                                f"'{spec.name}' must be an integer")
        return value
    if spec.type == "format":
        # An explicit "auto" always means "sniff the text", even on a
        # server started with a concrete --format.
        if value is None:
            return spec.default
        if not isinstance(value, str):
            raise ProtocolError(400, "bad-format",
                                f"'{spec.name}' must be a string")
        if value != "auto" and value not in known_formats:
            raise ProtocolError(
                400, "bad-format",
                f"unknown schema format {value!r} (expected auto, "
                + ", ".join(known_formats) + ")")
        return value
    raise ProtocolError(500, "internal-error",
                        f"unknown field type {spec.type!r}")
