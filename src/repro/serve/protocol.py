"""The serve wire protocol — request parsing and error shapes.

Every request and response body is JSON.  The protocol layer is pure
(bytes/dicts in, dicts out, :class:`ProtocolError` on bad input) so the
HTTP transport stays a thin adapter and tests can exercise parsing
without a socket.

Batch semantics mirror the CLI batch surface: ``/v1/map`` and
``/v1/invert`` accept ``{"xml": …}`` for a single document or
``{"documents": [{"name", "xml"}, …]}`` for a batch; ``/v1/translate``
accepts ``{"query": …}`` or ``{"queries": […]}``.  Batch items fail
*individually* — one malformed document yields one failed item, never
an HTTP error for the whole batch.  Schema-bearing payloads
(``/v1/find``) take an optional ``"format"`` naming the frontend for
inline schema text (``auto``/``dtd``/``compact``/``xsd``).

Errors are structured: ``{"error": {"code": …, "message": …}}`` with
the HTTP status carrying the class (400 malformed request, 404 unknown
resource, 405 wrong method, 500 handler fault).
"""

from __future__ import annotations

import json
from typing import Optional, Sequence


class ProtocolError(ValueError):
    """A request the service refuses, with its HTTP status and code.

    A ``ValueError`` like every other bad-input error in the package,
    so the CLI/API boundary's ``except (OSError, ValueError)`` catches
    it wherever it might surface (the serve dispatch converts it to a
    structured 4xx long before that)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def payload(self) -> dict:
        return {"error": {"code": self.code, "message": self.message}}


def error_payload(status: int, code: str, message: str) -> dict:
    return ProtocolError(status, code, message).payload()


def decode_body(raw: bytes) -> dict:
    """The request body as a JSON object, or a 400 ProtocolError."""
    if not raw:
        raise ProtocolError(400, "empty-body",
                            "request body must be a JSON object")
    try:
        payload = json.loads(raw.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise ProtocolError(400, "bad-encoding",
                            f"request body is not UTF-8: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ProtocolError(400, "bad-json",
                            f"request body is not valid JSON: {exc}"
                            ) from None
    if not isinstance(payload, dict):
        raise ProtocolError(400, "bad-request",
                            "request body must be a JSON object, not "
                            f"{type(payload).__name__}")
    return payload


def encode(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _require_str(value, what: str) -> str:
    if not isinstance(value, str):
        raise ProtocolError(400, "bad-request",
                            f"{what} must be a string, not "
                            f"{type(value).__name__}")
    return value


def documents_from(payload: dict) -> tuple[list[tuple[str, str]], bool]:
    """Normalise a map/invert body to ``[(name, xml), …]``.

    Returns ``(items, single)`` — ``single`` marks the one-document
    shorthand, whose response carries ``result`` instead of
    ``results``.
    """
    if "xml" in payload and "documents" in payload:
        raise ProtocolError(400, "bad-request",
                            "give either 'xml' or 'documents', not both")
    if "xml" in payload:
        xml = _require_str(payload["xml"], "'xml'")
        name = _require_str(payload.get("name", "document"), "'name'")
        return [(name, xml)], True
    documents = payload.get("documents")
    if not isinstance(documents, list) or not documents:
        raise ProtocolError(400, "bad-request",
                            "expected 'xml' or a non-empty 'documents' "
                            "list")
    items: list[tuple[str, str]] = []
    for index, row in enumerate(documents):
        if not isinstance(row, dict) or "xml" not in row:
            raise ProtocolError(400, "bad-request",
                                f"documents[{index}] must be an object "
                                "with an 'xml' field")
        items.append((_require_str(row.get("name", f"document-{index}"),
                                   f"documents[{index}].name"),
                      _require_str(row["xml"], f"documents[{index}].xml")))
    return items, False


def queries_from(payload: dict) -> tuple[list[str], bool]:
    """Normalise a translate body to a query list (plus ``single``)."""
    if "query" in payload and "queries" in payload:
        raise ProtocolError(400, "bad-request",
                            "give either 'query' or 'queries', not both")
    if "query" in payload:
        return [_require_str(payload["query"], "'query'")], True
    queries = payload.get("queries")
    if not isinstance(queries, list) or not queries:
        raise ProtocolError(400, "bad-request",
                            "expected 'query' or a non-empty 'queries' "
                            "list")
    return [_require_str(query, f"queries[{index}]")
            for index, query in enumerate(queries)], False


def optional_flag(payload: dict, name: str, default: bool) -> bool:
    value = payload.get(name, default)
    if not isinstance(value, bool):
        raise ProtocolError(400, "bad-request",
                            f"'{name}' must be a boolean")
    return value


def optional_str(payload: dict, name: str) -> Optional[str]:
    value = payload.get(name)
    if value is None:
        return None
    return _require_str(value, f"'{name}'")


def schema_format_from(payload: dict,
                       known: Sequence[str]) -> Optional[str]:
    """The optional ``format`` field of a schema-bearing payload.

    ``known`` is the frontend registry's format list (the protocol
    layer stays import-pure).  Returns ``None`` when the field is
    absent (→ the server's default applies); an explicit ``"auto"``
    always means "sniff the text", even on a server started with a
    concrete ``--format``.
    """
    value = payload.get("format")
    if value is None:
        return None
    if not isinstance(value, str):
        raise ProtocolError(400, "bad-format",
                            "'format' must be a string")
    if value != "auto" and value not in known:
        raise ProtocolError(
            400, "bad-format",
            f"unknown schema format {value!r} (expected auto, "
            + ", ".join(known) + ")")
    return value


def optional_int(payload: dict, name: str, default: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(400, "bad-request",
                            f"'{name}' must be an integer")
    return value
