"""The HTTP transport — a threaded stdlib server over the handlers.

:class:`ReproServer` wraps ``http.server.ThreadingHTTPServer`` (one
thread per connection, stdlib only) around a
:class:`~repro.serve.handlers.ServiceState`.  The transport does three
things and nothing else: read the body, call
:func:`~repro.serve.handlers.dispatch`, write the JSON — all semantics
(routing, batching, failure isolation, metrics) live in the pure
handler layer.

Lifecycle::

    with ReproServer(store="artifacts/", port=0) as server:
        print(server.url)          # port 0 picked a free port
        …                          # serve until the block exits

``stop()`` is graceful: the accept loop halts first, then in-flight
requests drain (bounded wait on an idle event the handler maintains),
then idle keep-alive connections are closed (their handler threads see
EOF instead of idling out a 60 s timeout) and the listening socket is
released, making the port immediately reusable (tested).  Connections are keep-alive (HTTP/1.1): a well-behaved client
reuses one socket across many requests instead of paying connection
setup per call.

For the pre-fork fleet (:mod:`repro.serve.fleet`) a server can be
built over an *already bound and listening* socket (``listen_socket=``)
— the supervisor binds (with ``SO_REUSEPORT`` when available) and the
forked workers serve on the inherited listeners.
"""

from __future__ import annotations

import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union

from repro.core.embedding import SchemaEmbedding
from repro.engine.session import EngineConfig
from repro.serve.handlers import ServiceState, dispatch
from repro.serve.protocol import encode, error_payload

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8421

#: Refuse request bodies beyond this size (64 MiB) — a transport
#: backstop so one request cannot exhaust server memory.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: How long ``stop()`` waits for in-flight requests to finish before
#: closing anyway.
DEFAULT_DRAIN_SECONDS = 10.0


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    #: Per-connection socket timeout: a client announcing more body
    #: bytes than it sends (or idling mid-request) must not pin a
    #: handler thread forever.
    timeout = 60

    def _write(self, status: int, payload: dict) -> None:
        body = encode(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _serve(self, method: str) -> None:
        server: _ReproHTTPServer = self.server  # type: ignore[assignment]
        server.request_started()
        try:
            self._serve_inner(method, server.state)
        finally:
            server.request_finished()

    def _serve_inner(self, method: str, state: ServiceState) -> None:
        body: Optional[bytes] = None
        if method == "POST":
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                self._write(400, error_payload(
                    400, "bad-content-length",
                    "Content-Length is not an integer"))
                return
            if length < 0 or length > MAX_BODY_BYTES:
                # Negative lengths would make rfile.read() block until
                # EOF and pin the handler thread; oversized ones would
                # exhaust memory.
                self._write(413, error_payload(
                    413, "body-too-large",
                    f"request body of {length} bytes is outside "
                    f"[0, {MAX_BODY_BYTES}]"))
                return
            body = self.rfile.read(length)
        status, payload = dispatch(state, method, self.path, body)
        self._write(status, payload)

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._serve("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._serve("POST")

    def log_message(self, format: str, *args) -> None:
        """Silence the default per-request stderr chatter; request
        accounting lives in /metrics instead."""


class _ReproHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer plus in-flight request accounting.

    ``request_started``/``request_finished`` bracket every dispatched
    request (not every *connection* — an idle keep-alive connection
    must never block a drain), and ``drain()`` waits until the last
    dispatched request has written its response.
    """

    daemon_threads = True

    def __init__(self, address, handler,
                 listen_socket: Optional[socket.socket] = None) -> None:
        if listen_socket is None:
            super().__init__(address, handler)
        else:
            # Serve on a pre-bound, already-listening socket (the
            # fleet's inherited listener): skip bind/activate and adopt
            # the given socket in place of the auto-created one.
            super().__init__(address, handler, bind_and_activate=False)
            self.socket.close()
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
        self._active = 0
        self._active_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        # Open connection sockets, so shutdown can unblock idle
        # keep-alive handler threads (they otherwise sit in readline
        # until the 60 s connection timeout).
        self._connections: set = set()
        self._conn_lock = threading.Lock()

    def get_request(self):
        request, address = super().get_request()
        with self._conn_lock:
            self._connections.add(request)
        return request, address

    def shutdown_request(self, request) -> None:
        with self._conn_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def close_connections(self) -> None:
        """Half-close every open connection: idle keep-alive handlers
        see EOF and exit; clients reconnect on their next request.
        Called after ``drain()``, so completed responses are not cut."""
        with self._conn_lock:
            pending = list(self._connections)
        for request in pending:
            try:
                # shutdown, not close: the handler thread owns the fd
                # and will close it via shutdown_request.
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def request_started(self) -> None:
        with self._active_lock:
            self._active += 1
            self._idle.clear()

    def request_finished(self) -> None:
        with self._active_lock:
            self._active -= 1
            if self._active <= 0:
                self._idle.set()

    @property
    def in_flight(self) -> int:
        with self._active_lock:
            return self._active

    def drain(self, timeout: float) -> bool:
        """Wait (bounded) for in-flight requests to finish; True when
        the server went idle within ``timeout``."""
        return self._idle.wait(timeout)


class ReproServer:
    """A long-lived serving daemon over one warm engine.

    Construct from an artifact store (the deployment path — every
    stored schema/embedding is compiled before the socket opens) or
    from an in-memory embedding (tests, examples).  ``port=0`` binds an
    ephemeral free port, published as ``.port`` after ``start()``.
    ``listen_socket=`` serves on an externally bound listener instead
    (the fleet's pre-fork path); the caller keeps ownership of binding,
    the server still closes its inherited copy on ``stop()``.
    """

    def __init__(self, store: Optional[Union[str, Path]] = None,
                 embedding: Optional[SchemaEmbedding] = None,
                 state: Optional[ServiceState] = None,
                 host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 config: Optional[EngineConfig] = None,
                 default_format: str = "auto",
                 listen_socket: Optional[socket.socket] = None) -> None:
        given = sum(x is not None for x in (store, embedding, state))
        if given != 1:
            raise ValueError("give exactly one of store=, embedding=, "
                             "state=")
        if state is not None:
            if default_format != "auto":
                raise ValueError("set default_format on the "
                                 "ServiceState when passing state=")
            self.state = state
        elif store is not None:
            self.state = ServiceState.from_store(
                store, config=config, default_format=default_format)
        else:
            assert embedding is not None
            self.state = ServiceState.from_embedding(embedding)
            self.state.default_format = default_format
        self._requested = (host, port)
        self._listen_socket = listen_socket
        self._httpd: Optional[_ReproHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ReproServer":
        if self._httpd is not None:
            raise RuntimeError("server is already running")
        httpd = _ReproHTTPServer(self._requested, _Handler,
                                 listen_socket=self._listen_socket)
        httpd.state = self.state  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(target=httpd.serve_forever,
                                        name="repro-serve",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, drain_seconds: float = DEFAULT_DRAIN_SECONDS) -> None:
        """Graceful shutdown: stop accepting, drain in-flight requests
        (bounded by ``drain_seconds``), close the listening socket,
        release the port."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.drain(drain_seconds)
        self._httpd.close_connections()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._httpd = None
        self._thread = None

    def serve_forever(self) -> None:
        """Blocking serve loop for the CLI; Ctrl-C (or a SIGTERM the
        CLI converts to ``KeyboardInterrupt``) stops cleanly."""
        if self._httpd is None:
            self.start()
        assert self._thread is not None
        try:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- addressing --------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def in_flight(self) -> int:
        """Requests currently being dispatched (0 when idle)."""
        return self._httpd.in_flight if self._httpd is not None else 0

    @property
    def host(self) -> str:
        if self._httpd is not None:
            return self._httpd.server_address[0]
        return self._requested[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        if self._listen_socket is not None:
            return self._listen_socket.getsockname()[1]
        return self._requested[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
