"""The typed schema-lineage layer over the artifact store.

One :class:`LineageEdge` records that a schema version (by
fingerprint) was succeeded by another, which embedding (if any)
carries instances and queries across the bump, and free-form
provenance — the search method, how many queries were examined, the
verdict counts.  Edges persist in the store's lazy ``lineage``
manifest section (:meth:`~repro.engine.store.ArtifactStore.put_lineage`):
a store written before the section existed gains its first edge in
place, without any existing artifact being rewritten.
"""
# lint: determinism-plane

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.embedding import SchemaEmbedding
from repro.dtd.model import DTD
from repro.engine.store import ArtifactStore, lineage_digest


@dataclass(frozen=True)
class LineageEdge:
    """One version bump: ``old`` fingerprint → ``new`` fingerprint."""

    old: str                       #: predecessor schema fingerprint
    new: str                       #: successor schema fingerprint
    #: embedding fingerprint carrying the bump (None: none was found)
    embedding: Optional[str] = None
    provenance: dict = field(default_factory=dict)

    @property
    def digest(self) -> str:
        """The content key the store files this edge under."""
        return lineage_digest(self.old, self.new, self.embedding)

    def to_payload(self) -> dict:
        return {"old": self.old, "new": self.new,
                "embedding": self.embedding,
                "provenance": dict(self.provenance)}

    @classmethod
    def from_payload(cls, payload: dict) -> "LineageEdge":
        return cls(old=payload["old"], new=payload["new"],
                   embedding=payload.get("embedding"),
                   provenance=dict(payload.get("provenance") or {}))


def record_lineage(store: ArtifactStore, old_schema: DTD,
                   new_schema: DTD,
                   embedding: Optional[SchemaEmbedding] = None,
                   provenance: Optional[dict] = None,
                   validated: bool = True,
                   old_format: Optional[str] = None,
                   old_source: Optional[str] = None,
                   new_format: Optional[str] = None,
                   new_source: Optional[str] = None) -> LineageEdge:
    """Persist one version bump: both schemas, the embedding (when one
    exists) and the lineage edge tying them together.

    ``old_format``/``old_source`` (and the ``new_`` pair) are the usual
    frontend provenance for the schemas; ``validated`` marks the
    embedding entry the same way ``/v1/find`` results are marked.
    """
    old_fp = store.put_schema(old_schema, format=old_format,
                              source_text=old_source)
    new_fp = store.put_schema(new_schema, format=new_format,
                              source_text=new_source)
    embedding_fp: Optional[str] = None
    if embedding is not None:
        embedding_fp = store.put_embedding(embedding, validated=validated)
    edge = LineageEdge(old=old_fp, new=new_fp, embedding=embedding_fp,
                       provenance=dict(provenance or {}))
    store.put_lineage(edge.to_payload())
    return edge


def lineage_edges(store: ArtifactStore) -> list[LineageEdge]:
    """Every recorded edge, in stable (digest-sorted) order."""
    return [LineageEdge.from_payload(payload)
            for _, payload in store.iter_lineage()]


def successors(store: ArtifactStore, fingerprint: str) -> list[LineageEdge]:
    """The recorded bumps out of one schema version."""
    return [edge for edge in lineage_edges(store)
            if edge.old == fingerprint]
