"""The schema-evolution subsystem — version bumps under a live query
workload.

Real deployments never map between two frozen schemas: the schema
evolves while stored queries keep arriving, and the product question
becomes *which queries survive the bump, which can be re-translated,
and which are broken and why*.  This package composes the existing
machinery (``find_embedding`` between versions, the query translator,
the preservation checks, the fingerprint-keyed artifact store) into
that service:

* :mod:`repro.evolution.engine` — :func:`evolve`: find/accept an
  embedding from the old schema version into the new one and return a
  per-query :class:`QueryVerdict` — ``still-valid`` (answer-preserving
  as-is), ``translatable`` (re-translated query attached) or
  ``broken`` (structured reason) — with per-query failure isolation;
* :mod:`repro.evolution.lineage` — :class:`LineageEdge`, the typed
  layer over the artifact store's ``lineage`` section: fingerprint →
  successor fingerprint + embedding + provenance, persisted next to
  the existing artifacts (pre-lineage stores read back cleanly).

The same verdicts are served over HTTP (``POST /v1/evolve`` on the
single daemon and the pre-fork fleet) and from the CLI (``repro evolve
OLD NEW --queries FILE --store DIR``), byte-identical to the direct
:func:`evolve` call.
"""

from repro.evolution.engine import (
    BROKEN,
    DEFAULT_SAMPLES,
    STILL_VALID,
    TRANSLATABLE,
    EvolutionReport,
    QueryVerdict,
    evolve,
    evolve_and_record,
)
from repro.evolution.lineage import (
    LineageEdge,
    lineage_edges,
    record_lineage,
    successors,
)

__all__ = [
    "BROKEN",
    "DEFAULT_SAMPLES",
    "STILL_VALID",
    "TRANSLATABLE",
    "EvolutionReport",
    "LineageEdge",
    "QueryVerdict",
    "evolve",
    "evolve_and_record",
    "lineage_edges",
    "record_lineage",
    "successors",
]
