"""Per-query compatibility verdicts across a schema version bump.

:func:`evolve` is the subsystem's engine entry point: given the old
and new schema versions and a stored query workload, it finds (or
accepts) an embedding ``old → new`` and classifies every query:

* ``still-valid`` — the query is answer-preserving **as-is**: run
  unchanged against mapped instances it returns the original answers
  (structurally identical translation, or behaviourally equal on the
  deterministic sample instances);
* ``translatable`` — the answers survive, but only through the
  re-translated query (attached: the XR form when state elimination
  converges, always the canonical automaton rendering);
* ``broken`` — with a structured reason: the query does not parse
  (``parse-error``), no embedding between the versions exists
  (``no-embedding``), translation failed (``untranslatable``), the
  translated query selects nothing while the source query has answers
  (``empty-translation``), or the sampled preservation check failed
  (``preservation-failed``, only reachable through deliberately
  unvalidated embeddings — Theorem 4.3(b) guarantees preservation for
  valid ones).

Verdicts have **per-query failure isolation** — one pathological
query yields one ``broken`` row, never an aborted batch — and are
**deterministic**: sample instances come from fixed seeds, renderings
are canonical, and the serve layer returns
:meth:`EvolutionReport.to_payload` verbatim, so direct calls, the
single daemon and the pre-fork fleet produce byte-identical verdicts.
"""
# lint: determinism-plane

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.anfa.evaluate import evaluate_anfa_set
from repro.anfa.to_regex import RegexConversionError, anfa_to_xr
from repro.core.embedding import SchemaEmbedding
from repro.core.errors import EmbeddingError
from repro.dtd.generate import random_instance
from repro.dtd.model import DTD
from repro.engine.session import Engine, default_engine
from repro.evolution.lineage import LineageEdge, record_lineage
from repro.xpath.evaluator import evaluate_set
from repro.xpath.parser import parse_xr
from repro.xtree.nodes import tree_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.store import ArtifactStore

#: The three verdict kinds.
STILL_VALID = "still-valid"
TRANSLATABLE = "translatable"
BROKEN = "broken"

#: Structured ``broken`` reasons.
REASON_PARSE = "parse-error"
REASON_NO_EMBEDDING = "no-embedding"
REASON_UNTRANSLATABLE = "untranslatable"
REASON_EMPTY = "empty-translation"
REASON_PRESERVATION = "preservation-failed"
REASON_FAULT = "verdict-fault"

#: Deterministic sample instances per verdict batch (seeds 0..N-1).
DEFAULT_SAMPLES = 3
#: Depth cap for the sample instances (small but non-trivial trees).
SAMPLE_MAX_DEPTH = 8


@dataclass(frozen=True)
class QueryVerdict:
    """One query's fate across the version bump."""

    query: str
    verdict: str                        #: still-valid/translatable/broken
    reason: Optional[str] = None        #: structured code when broken
    detail: Optional[str] = None        #: human-readable specifics
    translation: Optional[str] = None   #: re-translated XR, when it exists
    anfa: Optional[str] = None          #: canonical automaton rendering

    @property
    def ok(self) -> bool:
        return self.verdict != BROKEN

    def to_payload(self) -> dict:
        """A stable JSON row — every key present, order fixed by the
        serializer's ``sort_keys``."""
        return {"query": self.query, "verdict": self.verdict,
                "ok": self.ok, "reason": self.reason,
                "detail": self.detail, "translation": self.translation,
                "anfa": self.anfa}


@dataclass(frozen=True)
class EvolutionReport:
    """The whole batch: one verdict per query, in input order."""

    old: str                            #: old schema fingerprint
    new: str                            #: new schema fingerprint
    embedding: Optional[str]            #: embedding fingerprint (found
                                        #: or given; None: search failed)
    found: bool                         #: an embedding covers the bump
    method: str                         #: search method ("given" when
                                        #: the caller supplied one)
    verdicts: tuple[QueryVerdict, ...] = ()
    #: The embedding object itself, for callers that go on to record
    #: the lineage edge; never part of the payload.
    embedding_object: Optional[SchemaEmbedding] = field(
        default=None, repr=False, compare=False)

    def counts(self) -> dict:
        tally = {STILL_VALID: 0, TRANSLATABLE: 0, BROKEN: 0}
        for verdict in self.verdicts:
            tally[verdict.verdict] += 1
        return tally

    def to_payload(self) -> dict:
        """The wire shape ``POST /v1/evolve`` returns verbatim."""
        return {"old": self.old, "new": self.new,
                "embedding": self.embedding, "found": self.found,
                "method": self.method, "counts": self.counts(),
                "verdicts": [v.to_payload() for v in self.verdicts]}


def evolve(old_schema: DTD, new_schema: DTD, queries: Sequence[str],
           engine: Optional[Engine] = None,
           embedding: Optional[SchemaEmbedding] = None,
           validate: bool = True, method: str = "auto", seed: int = 0,
           restarts: int = 20,
           samples: Optional[int] = None) -> EvolutionReport:
    """Classify every query of a workload across a version bump.

    With no ``embedding``, one is searched between the versions
    (``method``/``seed``/``restarts`` as in ``find_embedding``); a
    failed search yields a report with ``found=False`` and every query
    ``broken`` with reason ``no-embedding``.  A supplied embedding must
    connect exactly these two schemas and is validity-checked unless
    ``validate=False`` (the route by which ``preservation-failed``
    verdicts become observable).  ``samples`` instances of the old
    schema (fixed seeds — deterministic) back the behavioural checks.
    """
    engine = engine if engine is not None else default_engine()
    query_list = [str(query) for query in queries]
    old_fp = old_schema.fingerprint()
    new_fp = new_schema.fingerprint()
    method_used = method
    if embedding is None:
        search = engine.find_embedding(old_schema, new_schema,
                                       method=method, seed=seed,
                                       restarts=restarts)
        embedding = search.embedding
        method_used = search.method
    else:
        if embedding.source.fingerprint() != old_fp \
                or embedding.target.fingerprint() != new_fp:
            raise EmbeddingError(
                "the supplied embedding does not connect the given "
                "old and new schema versions")
        method_used = "given"
    if embedding is None:
        detail = (f"no embedding of {old_schema.name!r} into "
                  f"{new_schema.name!r} found (method {method!r})")
        verdicts = tuple(
            QueryVerdict(query, BROKEN, reason=REASON_NO_EMBEDDING,
                         detail=detail)
            for query in query_list)
        return EvolutionReport(old_fp, new_fp, None, False, method_used,
                               verdicts)
    engine.compile_embedding(embedding, ensure_valid=validate)
    sample_count = DEFAULT_SAMPLES if samples is None else max(1, samples)
    instances = _sample_instances(old_schema, sample_count)
    images = [engine.apply_embedding(embedding, instance,
                                     validate=validate)
              for instance in instances]
    verdicts = tuple(
        _query_verdict(engine, embedding, query, instances, images)
        for query in query_list)
    return EvolutionReport(old_fp, new_fp, embedding.fingerprint(), True,
                           method_used, verdicts,
                           embedding_object=embedding)


def evolve_and_record(store: "ArtifactStore", old_schema: DTD,
                      new_schema: DTD, queries: Sequence[str],
                      engine: Optional[Engine] = None,
                      embedding: Optional[SchemaEmbedding] = None,
                      validate: bool = True, method: str = "auto",
                      seed: int = 0, restarts: int = 20,
                      samples: Optional[int] = None,
                      old_format: Optional[str] = None,
                      old_source: Optional[str] = None,
                      new_format: Optional[str] = None,
                      new_source: Optional[str] = None,
                      ) -> tuple[EvolutionReport, LineageEdge]:
    """Batch re-translation of a stored workload across a version bump,
    recording the resulting lineage edge in the store.

    Runs :func:`evolve`, then persists both schema versions (with
    frontend provenance when given), the embedding, and a lineage edge
    whose provenance carries the search method, workload size and
    verdict counts.  The edge is recorded even when no embedding was
    found — a ``broken`` bump is lineage worth remembering.
    """
    report = evolve(old_schema, new_schema, queries, engine=engine,
                    embedding=embedding, validate=validate,
                    method=method, seed=seed, restarts=restarts,
                    samples=samples)
    provenance = {"method": report.method,
                  "queries": len(report.verdicts),
                  "counts": report.counts(),
                  "found": report.found}
    edge = record_lineage(store, old_schema, new_schema,
                          report.embedding_object,
                          provenance=provenance, validated=validate,
                          old_format=old_format, old_source=old_source,
                          new_format=new_format, new_source=new_source)
    return report, edge


def _sample_instances(old_schema: DTD, count: int) -> list:
    """``count`` deterministic sample instances of the old schema.

    Seeds are scanned in order and degenerate (single-node) draws are
    skipped — a star at the root frequently rolls zero children, and an
    empty sample can vacuously agree with any verdict.  Schemas whose
    every instance is trivial fall back to the first ``count`` draws.
    """
    chosen = []
    fallback = []
    for sample_seed in range(count * 16):
        instance = random_instance(old_schema, seed=sample_seed,
                                   max_depth=SAMPLE_MAX_DEPTH)
        if len(fallback) < count:
            fallback.append(instance)
        if tree_size(instance) > 1:
            chosen.append(instance)
            if len(chosen) == count:
                return chosen
    return chosen or fallback


# -- the per-query pipeline ----------------------------------------------------

def _query_verdict(engine: Engine, embedding: SchemaEmbedding,
                   query: str, instances: list,
                   images: list) -> QueryVerdict:
    """Failure isolation: whatever one query does, it yields one row."""
    try:
        return _classify(engine, embedding, query, instances, images)
    except Exception as exc:  # one pathological query never sinks the batch
        return QueryVerdict(query, BROKEN, reason=REASON_FAULT,
                            detail=f"{type(exc).__name__}: {exc}")


def _classify(engine: Engine, embedding: SchemaEmbedding, query: str,
              instances: list, images: list) -> QueryVerdict:
    try:
        parsed = parse_xr(query)
    except ValueError as exc:
        return QueryVerdict(query, BROKEN, reason=REASON_PARSE,
                            detail=str(exc))
    source_results = [evaluate_set(parsed, instance)
                      for instance in instances]
    try:
        anfa = engine.translate_query(embedding, query)
    except ValueError as exc:
        return QueryVerdict(query, BROKEN, reason=REASON_UNTRANSLATABLE,
                            detail=str(exc))
    canonical = anfa.canonical_describe()
    try:
        translation: Optional[str] = str(anfa_to_xr(anfa))
    except RegexConversionError:
        translation = None
    if anfa.is_fail():
        if all(result.is_empty() for result in source_results):
            return QueryVerdict(
                query, STILL_VALID, anfa=canonical,
                detail="query selects nothing on either version")
        return QueryVerdict(
            query, BROKEN, reason=REASON_EMPTY, anfa=canonical,
            detail="translated query selects nothing while the source "
                   "query has answers")
    # Preservation on the samples: Q(T) = idM(Tr(Q)(σd(T))).
    for index, (source_result, image) in enumerate(
            zip(source_results, images)):
        target_result = evaluate_anfa_set(anfa, image.tree)
        outside = sum(1 for node_id in target_result.ids
                      if node_id not in image.idM)
        if outside:
            return QueryVerdict(
                query, BROKEN, reason=REASON_PRESERVATION,
                anfa=canonical, translation=translation,
                detail=f"sample {index}: translated answers include "
                       f"{outside} non-image node(s)")
        mapped_back = target_result.map_ids(image.idM)
        if mapped_back.ids != source_result.ids \
                or mapped_back.strings != source_result.strings:
            return QueryVerdict(
                query, BROKEN, reason=REASON_PRESERVATION,
                anfa=canonical, translation=translation,
                detail=f"sample {index}: {len(source_result.ids)} "
                       f"id(s)/{len(source_result.strings)} string(s) "
                       f"expected, {len(mapped_back.ids)}/"
                       f"{len(mapped_back.strings)} mapped back")
    # still-valid: the *original* query, unchanged, already returns the
    # original answers on mapped instances — structurally (translation
    # is the identity) or behaviourally on every sample.
    if translation is not None and translation == str(parsed):
        return QueryVerdict(query, STILL_VALID, translation=translation,
                            anfa=canonical)
    if _answers_preserved_as_is(parsed, source_results, images):
        return QueryVerdict(query, STILL_VALID, translation=translation,
                            anfa=canonical)
    return QueryVerdict(query, TRANSLATABLE, translation=translation,
                        anfa=canonical)


def _answers_preserved_as_is(parsed, source_results, images) -> bool:
    for source_result, image in zip(source_results, images):
        direct = evaluate_set(parsed, image.tree)
        if any(node_id not in image.idM for node_id in direct.ids):
            return False
        mapped_ids = frozenset(image.idM[node_id]
                               for node_id in direct.ids)
        if mapped_ids != source_result.ids \
                or direct.strings != source_result.strings:
            return False
    return True
