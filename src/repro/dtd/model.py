"""The DTD normal form ``(E, P, r)`` and its schema graph (Section 2.1).

Productions::

    α ::= str | ε | B1, …, Bn | B1 + … + Bn | B*

The schema graph ``G_S`` has one node per element type and typed edges:

* **AND** edges for concatenation children, labelled with the occurrence
  position ``k`` when a child type repeats (``Bi`` the k-th occurrence of
  a type ``B`` in ``P(A)``);
* **OR** edges (dashed in the paper's figures) for disjunction children;
* **STAR** edges (``*``-labelled) for Kleene-star children.

Footnote 1 of the paper allows an optional type to be written
``A → B + ε``; we realise this with :data:`EPSILON` as a pseudo-child of
a disjunction.  ``EPSILON`` is not an element type: it never appears in
``E``, carries no edge, and contributes an "absent" alternative when
instances are validated or generated.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

#: Pseudo-child of a disjunction denoting the empty alternative
#: (paper footnote 1: ``A → B + ε``).
EPSILON = "#eps"


class SchemaError(ValueError):
    """Raised for ill-formed DTDs (dangling references, bad productions)."""


class Production:
    """Base class for the five normal-form production shapes."""

    def child_types(self) -> tuple[str, ...]:
        """Element types appearing on the right-hand side (no EPSILON)."""
        return ()

    def size(self) -> int:
        """Length of the right-hand side (``k`` in Theorem 4.10)."""
        return 0


@dataclass(frozen=True)
class Str(Production):
    """``A → str`` (PCDATA)."""

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "str"


@dataclass(frozen=True)
class Empty(Production):
    """``A → ε``."""

    def __str__(self) -> str:
        return "epsilon"


@dataclass(frozen=True)
class Concat(Production):
    """``A → B1, …, Bn`` — every child occurs exactly once, in order.

    Child types may repeat; occurrences are then distinguished by
    position labels on the AND edges (and ``position()`` qualifiers in
    XR paths, cf. Fig. 3(c)).
    """

    children: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise SchemaError("a concatenation needs at least one child")
        if EPSILON in self.children:
            raise SchemaError("epsilon is only allowed in disjunctions")

    def child_types(self) -> tuple[str, ...]:
        return self.children

    def size(self) -> int:
        return len(self.children)

    def occurrence(self, index: int) -> int:
        """1-based occurrence number of ``children[index]`` among equals."""
        label = self.children[index]
        return sum(1 for c in self.children[:index + 1] if c == label)

    def occurrence_count(self, label: str) -> int:
        return sum(1 for c in self.children if c == label)

    def index_of_occurrence(self, label: str, occ: int) -> int:
        """Position in the child list of the ``occ``-th occurrence."""
        seen = 0
        for index, child in enumerate(self.children):
            if child == label:
                seen += 1
                if seen == occ:
                    return index
        raise SchemaError(f"no occurrence {occ} of {label!r}")

    def __str__(self) -> str:
        return ", ".join(self.children)


@dataclass(frozen=True)
class Disjunction(Production):
    """``A → B1 + … + Bn`` — one and only one child.

    W.l.o.g. the alternatives are distinct (Section 2.1).  ``optional``
    adds the ε alternative of footnote 1, in which case an ``A`` element
    may also be empty.
    """

    children: tuple[str, ...]
    optional: bool = False

    def __post_init__(self) -> None:
        if not self.children:
            raise SchemaError("a disjunction needs at least one alternative")
        if len(set(self.children)) != len(self.children):
            raise SchemaError("disjunction alternatives must be distinct")
        if EPSILON in self.children:
            # Normalise: pull the epsilon marker into the flag.
            object.__setattr__(self, "children", tuple(
                c for c in self.children if c != EPSILON))
            object.__setattr__(self, "optional", True)
            if not self.children:
                raise SchemaError("a disjunction needs a non-epsilon child")

    def child_types(self) -> tuple[str, ...]:
        return self.children

    def size(self) -> int:
        return len(self.children) + (1 if self.optional else 0)

    def __str__(self) -> str:
        rhs = " + ".join(self.children)
        return rhs + " + eps" if self.optional else rhs


@dataclass(frozen=True)
class Star(Production):
    """``A → B*`` — zero or more ``B`` children."""

    child: str

    def child_types(self) -> tuple[str, ...]:
        return (self.child,)

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"{self.child}*"


class EdgeKind(enum.Enum):
    """Edge types of the schema graph (Section 2.1)."""

    AND = "and"    # solid
    OR = "or"      # dashed
    STAR = "star"  # solid, '*'-labelled

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Edge:
    """A schema-graph edge ``(A, B)`` with its kind and occurrence label.

    ``occ`` is the paper's position label ``k``: the k-th occurrence of
    child type ``child`` in ``P(parent)``.  It is 1 for OR and STAR
    edges and for non-repeated concatenation children.
    """

    parent: str
    child: str
    kind: EdgeKind
    occ: int = 1

    def key(self) -> tuple[str, str, int]:
        return (self.parent, self.child, self.occ)

    def __str__(self) -> str:
        suffix = f"#{self.occ}" if self.occ != 1 else ""
        return f"{self.parent}-[{self.kind}]->{self.child}{suffix}"


@dataclass
class DTD:
    """A DTD ``(E, P, r)`` in normal form, with schema-graph helpers."""

    elements: dict[str, Production]
    root: str
    name: str = "dtd"
    _edges: dict[str, tuple[Edge, ...]] = field(
        default=None, repr=False, compare=False)  # type: ignore[assignment]
    _fp: Optional[str] = field(default=None, init=False, repr=False,
                               compare=False)

    def __post_init__(self) -> None:
        if self.root not in self.elements:
            raise SchemaError(f"root type {self.root!r} is not defined")
        for parent, production in self.elements.items():
            if not isinstance(production, Production):
                raise SchemaError(
                    f"{parent!r}: not a normal-form production: {production!r}")
            for child in production.child_types():
                if child not in self.elements:
                    raise SchemaError(
                        f"{parent!r} references undefined type {child!r}")
        self._edges = None

    # -- basic views ----------------------------------------------------
    @property
    def types(self) -> tuple[str, ...]:
        """The element types ``E`` in definition order."""
        return tuple(self.elements)

    def production(self, element_type: str) -> Production:
        try:
            return self.elements[element_type]
        except KeyError:
            raise SchemaError(f"unknown element type {element_type!r}") from None

    def size(self) -> int:
        """``|S|``: number of types plus total production size."""
        return len(self.elements) + sum(p.size() for p in self.elements.values())

    # -- identity ---------------------------------------------------------
    def content_key(self) -> str:
        """A canonical text rendering of ``(E, P, r)``.

        The display ``name`` is excluded: two schemas with the same
        productions and root are interchangeable for every compiled
        artifact (mindef, reachability, path indexes).  Definition order
        is included — it drives candidate enumeration in the matching
        heuristics.
        """
        rows = [f"root={self.root}"]
        rows.extend(f"{element_type}->{production}"
                    for element_type, production in self.elements.items())
        return ";".join(rows)

    def fingerprint(self) -> str:
        """Stable content fingerprint (hex digest) for cache keys.

        Computed once and cached: a DTD is immutable by contract after
        construction — updates go through :meth:`with_production` /
        :meth:`renamed`, which return fresh objects (and fresh
        fingerprints).  Equal-content schemas built independently (e.g.
        re-parsed from the same text) share a fingerprint, which is
        what lets engine caches survive reloads.
        """
        if self._fp is None:
            self._fp = hashlib.sha256(
                self.content_key().encode("utf-8")).hexdigest()
        return self._fp

    def __hash__(self) -> int:
        # Consistent with the dataclass __eq__, which compares
        # ``elements`` as a dict (definition-order *insensitive*) —
        # unlike the fingerprint, which keeps order because it also
        # keys order-sensitive search results.
        return hash((self.root, self.name,
                     frozenset(self.elements.items())))

    # -- schema graph ----------------------------------------------------
    def edges_from(self, parent: str) -> tuple[Edge, ...]:
        """All schema-graph edges out of ``parent`` (cached)."""
        if self._edges is None:
            self._edges = {}
        cached = self._edges.get(parent)
        if cached is not None:
            return cached
        production = self.production(parent)
        edges: list[Edge] = []
        if isinstance(production, Concat):
            for index, child in enumerate(production.children):
                edges.append(Edge(parent, child, EdgeKind.AND,
                                  production.occurrence(index)))
        elif isinstance(production, Disjunction):
            for child in production.children:
                edges.append(Edge(parent, child, EdgeKind.OR))
        elif isinstance(production, Star):
            edges.append(Edge(parent, production.child, EdgeKind.STAR))
        result = tuple(edges)
        self._edges[parent] = result
        return result

    def all_edges(self) -> Iterator[Edge]:
        for parent in self.elements:
            yield from self.edges_from(parent)

    def edge(self, parent: str, child: str, occ: int = 1) -> Optional[Edge]:
        """The edge ``(parent, child)`` with occurrence ``occ``, if any."""
        for candidate in self.edges_from(parent):
            if candidate.child == child and candidate.occ == occ:
                return candidate
        return None

    def edge_kind(self, parent: str, child: str) -> Optional[EdgeKind]:
        for candidate in self.edges_from(parent):
            if candidate.child == child:
                return candidate.kind
        return None

    def node_count(self) -> int:
        """``|E|``: number of schema-graph nodes."""
        return len(self.elements)

    def is_recursive(self) -> bool:
        """A DTD is recursive iff its schema graph is cyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {t: WHITE for t in self.elements}

        for start in self.elements:
            if colour[start] != WHITE:
                continue
            stack: list[tuple[str, Iterator[Edge]]] = [
                (start, iter(self.edges_from(start)))]
            colour[start] = GREY
            while stack:
                node, edges = stack[-1]
                advanced = False
                for edge in edges:
                    child = edge.child
                    if colour[child] == GREY:
                        return True
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        stack.append((child, iter(self.edges_from(child))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return False

    def reachable_types(self, start: Optional[str] = None) -> set[str]:
        """Types reachable from ``start`` (default: the root)."""
        start = start if start is not None else self.root
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for edge in self.edges_from(node):
                if edge.child not in seen:
                    seen.add(edge.child)
                    frontier.append(edge.child)
        return seen

    # -- construction helpers ---------------------------------------------
    def with_production(self, element_type: str, production: Production) -> "DTD":
        """Functional update: a copy with one production replaced/added."""
        elements = dict(self.elements)
        elements[element_type] = production
        return DTD(elements, self.root, self.name)

    def renamed(self, mapping: dict[str, str], name: Optional[str] = None) -> "DTD":
        """A copy with element types renamed via ``mapping``.

        Types not in ``mapping`` keep their names.  The mapping must not
        merge two types.
        """
        def rename(t: str) -> str:
            return mapping.get(t, t)

        new_names = [rename(t) for t in self.elements]
        if len(set(new_names)) != len(new_names):
            raise SchemaError("renaming must not merge element types")
        elements: dict[str, Production] = {}
        for element_type, production in self.elements.items():
            if isinstance(production, Concat):
                new_production: Production = Concat(
                    tuple(rename(c) for c in production.children))
            elif isinstance(production, Disjunction):
                new_production = Disjunction(
                    tuple(rename(c) for c in production.children),
                    production.optional)
            elif isinstance(production, Star):
                new_production = Star(rename(production.child))
            else:
                new_production = production
            elements[rename(element_type)] = new_production
        return DTD(elements, rename(self.root), name or self.name)

    def __str__(self) -> str:
        lines = [f"DTD {self.name!r} (root {self.root}):"]
        for element_type, production in self.elements.items():
            lines.append(f"  {element_type} -> {production}")
        return "\n".join(lines)


def make_dtd(root: str, name: str = "dtd",
             **productions: Production | str | Iterable[str]) -> DTD:
    """Convenience constructor used throughout tests and workloads.

    String values are parsed through the compact production syntax of
    :func:`repro.dtd.parser.parse_production`.
    """
    from repro.dtd.parser import parse_production

    elements: dict[str, Production] = {}
    for element_type, value in productions.items():
        if isinstance(value, Production):
            elements[element_type] = value
        elif isinstance(value, str):
            elements[element_type] = parse_production(value)
        else:
            elements[element_type] = Concat(tuple(value))
    return DTD(elements, root, name)
