"""Normal-form conversion for general DTD content models (Section 2.1).

The paper's normal form restricts each production to::

    str | ε | B1, …, Bn | B1 + … + Bn | B*

"any DTD S can be converted to S' of this form (in linear time) by
introducing new element types".  This module implements that conversion:
a general content model is a regular expression over element names
(:class:`Regex` and subclasses); every composite sub-expression that sits
where a plain element type is required gets a fresh element type.

``B?`` becomes a disjunction with the ε alternative (footnote 1), and
``B+`` becomes ``B, X`` with ``X → B*``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    Production,
    SchemaError,
    Star,
    Str,
)


class Regex:
    """A general DTD content model (before normalisation)."""


@dataclass(frozen=True)
class RName(Regex):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class RPCDATA(Regex):
    def __str__(self) -> str:
        return "#PCDATA"


@dataclass(frozen=True)
class REmpty(Regex):
    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True)
class RSeq(Regex):
    items: tuple[Regex, ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class RChoice(Regex):
    items: tuple[Regex, ...]

    def __str__(self) -> str:
        return "(" + " | ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class RStar(Regex):
    item: Regex

    def __str__(self) -> str:
        return f"{self.item}*"


@dataclass(frozen=True)
class RPlus(Regex):
    item: Regex

    def __str__(self) -> str:
        return f"{self.item}+"


@dataclass(frozen=True)
class ROpt(Regex):
    item: Regex

    def __str__(self) -> str:
        return f"{self.item}?"


class _Normalizer:
    """Stateful conversion of a whole schema; generates fresh types."""

    def __init__(self, declared: dict[str, Regex]) -> None:
        self.declared = declared
        self.out: dict[str, Production] = {}
        self._fresh = 0
        self._taken = set(declared)

    def fresh_type(self, hint: str) -> str:
        while True:
            self._fresh += 1
            candidate = f"{hint}.g{self._fresh}"
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate

    # ------------------------------------------------------------------
    def atom(self, regex: Regex, hint: str) -> str:
        """Return an element type standing for ``regex``.

        A plain name stands for itself; any composite expression gets a
        fresh element type whose production is the normalisation of the
        expression.
        """
        if isinstance(regex, RName):
            return regex.name
        fresh = self.fresh_type(hint)
        self.out[fresh] = self.production_for(fresh, regex)
        return fresh

    def production_for(self, owner: str, regex: Regex) -> Production:
        """Normalise ``regex`` into a single normal-form production."""
        if isinstance(regex, RPCDATA):
            return Str()
        if isinstance(regex, REmpty):
            return Empty()
        if isinstance(regex, RName):
            # A bare name is a singleton concatenation.
            return Concat((regex.name,))
        if isinstance(regex, RSeq):
            children = tuple(self.atom(item, owner) for item in regex.items)
            return Concat(children)
        if isinstance(regex, RChoice):
            optional = any(isinstance(item, REmpty) for item in regex.items)
            alts: list[str] = []
            for item in regex.items:
                if isinstance(item, REmpty):
                    continue
                if isinstance(item, ROpt):
                    optional = True
                    item = item.item
                alts.append(self.atom(item, owner))
            if len(set(alts)) != len(alts):
                raise SchemaError(
                    f"{owner!r}: duplicate alternatives in a disjunction")
            return Disjunction(tuple(alts), optional=optional)
        if isinstance(regex, RStar):
            return Star(self.atom(regex.item, owner))
        if isinstance(regex, RPlus):
            # B+  ==>  B, X  with  X -> B*
            base = self.atom(regex.item, owner)
            star_type = self.fresh_type(owner)
            self.out[star_type] = Star(base)
            return Concat((base, star_type))
        if isinstance(regex, ROpt):
            # B?  ==>  B + ε  (footnote 1); (B1|…|Bn)? folds directly
            # into an optional disjunction.
            if isinstance(regex.item, RChoice):
                inner = self.production_for(owner, regex.item)
                assert isinstance(inner, Disjunction)
                return Disjunction(inner.children, optional=True)
            return Disjunction((self.atom(regex.item, owner),), optional=True)
        raise SchemaError(f"{owner!r}: unsupported content model {regex!r}")

    def run(self, root: str, name: str) -> DTD:
        for element_type, regex in self.declared.items():
            self.out[element_type] = self.production_for(element_type, regex)
        return DTD(self.out, root, name)


def normalize_dtd(declared: dict[str, Regex], root: str,
                  name: str = "dtd") -> DTD:
    """Convert general content models to a normal-form :class:`DTD`.

    >>> d = normalize_dtd({"a": RSeq((RName("b"), RStar(RName("b")))),
    ...                    "b": RPCDATA()}, root="a")
    >>> sorted(d.types)[:2]
    ['a', 'a.g1']
    """
    missing = set()
    for regex in declared.values():
        missing |= _referenced(regex) - set(declared)
    if missing:
        raise SchemaError(f"undeclared element types: {sorted(missing)}")
    return _Normalizer(declared).run(root, name)


def _referenced(regex: Regex) -> set[str]:
    if isinstance(regex, RName):
        return {regex.name}
    if isinstance(regex, (RSeq, RChoice)):
        out: set[str] = set()
        for item in regex.items:
            out |= _referenced(item)
        return out
    if isinstance(regex, (RStar, RPlus, ROpt)):
        return _referenced(regex.item)
    return set()
