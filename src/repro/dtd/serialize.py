"""Render DTDs back to ``<!ELEMENT>`` declarations and compact text.

The normal form is a strict subset of DTD content models, so the
rendering is exact: ``parse_dtd(dtd_to_text(S)) ≡ S`` up to the
declaration order (round-trip tested in ``tests/test_dtd_serialize.py``).
"""

from __future__ import annotations

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    Production,
    SchemaError,
    Star,
    Str,
)


def production_to_content(production: Production) -> str:
    """One production as a DTD content model."""
    if isinstance(production, Str):
        return "(#PCDATA)"
    if isinstance(production, Empty):
        return "EMPTY"
    if isinstance(production, Concat):
        return "(" + ", ".join(production.children) + ")"
    if isinstance(production, Disjunction):
        body = "(" + " | ".join(production.children) + ")"
        return body + "?" if production.optional else body
    if isinstance(production, Star):
        return f"({production.child})*"
    raise SchemaError(f"unknown production {production!r}")


def dtd_to_text(dtd: DTD) -> str:
    """The whole schema as ``<!ELEMENT>`` declarations (root first).

    >>> from repro.dtd.parser import parse_compact
    >>> print(dtd_to_text(parse_compact("a -> b\\nb -> str")))
    <!ELEMENT a (b)>
    <!ELEMENT b (#PCDATA)>
    """
    ordered = [dtd.root] + [t for t in dtd.types if t != dtd.root]
    lines = [f"<!ELEMENT {element_type} "
             f"{production_to_content(dtd.production(element_type))}>"
             for element_type in ordered]
    return "\n".join(lines)


def dtd_to_compact(dtd: DTD) -> str:
    """The compact ``type -> rhs`` syntax (root first)."""
    ordered = [dtd.root] + [t for t in dtd.types if t != dtd.root]
    lines = []
    for element_type in ordered:
        production = dtd.production(element_type)
        lines.append(f"{element_type} -> {production}")
    return "\n".join(lines)
