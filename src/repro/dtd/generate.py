"""Random instance generation for DTDs (test & benchmark substrate).

The paper's experiments need source documents for the mapping / query
pipelines.  The generator produces conforming instances with bounded
depth: beyond ``max_depth`` it steers disjunctions toward rank-0
alternatives and stars toward zero children, guaranteeing termination on
recursive DTDs (ranks come from :class:`repro.dtd.mindef.MinDef`).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.dtd.mindef import MinDef
from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    Star,
    Str,
)
from repro.xtree.nodes import ElementNode, TextNode

_WORDS = ("alpha", "bravo", "carol", "delta", "echo", "fox", "golf",
          "hotel", "india", "jazz", "kilo", "lima")


class InstanceGenerator:
    """Reusable generator bound to one DTD."""

    def __init__(self, dtd: DTD, seed: int = 0, max_depth: int = 12,
                 star_mean: float = 2.0,
                 string_pool: Optional[Sequence[str]] = None) -> None:
        self.dtd = dtd
        self.rng = random.Random(seed)
        self.max_depth = max_depth
        self.star_mean = star_mean
        self.string_pool = tuple(string_pool) if string_pool else _WORDS
        self.mindef = MinDef(dtd)
        self._string_counter = 0
        #: disjunction alternatives that lead back toward termination
        self._terminal_alts: dict[str, tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    def _fresh_string(self) -> str:
        self._string_counter += 1
        word = self.rng.choice(self.string_pool)
        return f"{word}-{self._string_counter}"

    def _star_count(self, depth: int) -> int:
        if depth >= self.max_depth:
            return 0
        # Geometric-ish distribution with the configured mean.
        count = 0
        continue_p = self.star_mean / (1.0 + self.star_mean)
        while self.rng.random() < continue_p and count < 4 * self.star_mean + 4:
            count += 1
        return count

    def _pick_alternative(self, element_type: str,
                          production: Disjunction, depth: int) -> Optional[str]:
        """Choose an alternative; deep in the tree prefer terminating ones."""
        if depth >= self.max_depth:
            return self.mindef.default_choice[element_type]
        choices: list[Optional[str]] = list(production.children)
        if production.optional:
            choices.append(None)
        return self.rng.choice(choices)

    # ------------------------------------------------------------------
    def generate(self, element_type: Optional[str] = None,
                 depth: int = 0) -> ElementNode:
        element_type = element_type or self.dtd.root
        if depth > self.max_depth + 6:
            # Deep recursion through concatenations: fall back to mindef.
            return self.mindef.instance(element_type)
        production = self.dtd.production(element_type)
        node = ElementNode(element_type)
        if isinstance(production, Str):
            node.append(TextNode(self._fresh_string()))
        elif isinstance(production, Empty):
            pass
        elif isinstance(production, Concat):
            for child in production.children:
                node.append(self.generate(child, depth + 1))
        elif isinstance(production, Disjunction):
            choice = self._pick_alternative(element_type, production, depth)
            if choice is not None:
                node.append(self.generate(choice, depth + 1))
        elif isinstance(production, Star):
            for _ in range(self._star_count(depth)):
                node.append(self.generate(production.child, depth + 1))
        return node


def random_instance(dtd: DTD, seed: int = 0, max_depth: int = 12,
                    star_mean: float = 2.0) -> ElementNode:
    """Generate one random conforming instance of ``dtd``.

    >>> from repro.dtd.parser import parse_compact
    >>> from repro.dtd.validate import conforms
    >>> d = parse_compact("db -> rec*\\nrec -> k, v\\nk -> str\\nv -> str")
    >>> conforms(random_instance(d, seed=7), d)
    True
    """
    return InstanceGenerator(dtd, seed=seed, max_depth=max_depth,
                             star_mean=star_mean).generate()
