"""Parsers for DTD declarations and compact production strings.

Two surfaces:

* :func:`parse_dtd` — real ``<!ELEMENT …>`` declaration syntax with
  general content models (sequences, choices, ``? * +``, nesting),
  normalised into the paper's normal form via
  :mod:`repro.dtd.normalize`;
* :func:`parse_production` / :func:`parse_compact` — a compact
  normal-form-only syntax used by tests and workloads::

      "b, c, b"      concatenation (repeats allowed)
      "b + c"        disjunction
      "b + eps"      optional type (footnote 1)
      "b*"           Kleene star
      "str"          PCDATA
      "eps"          empty
"""

from __future__ import annotations

import re

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    Production,
    Star,
    Str,
)
from repro.dtd.normalize import (
    RChoice,
    REmpty,
    RName,
    ROpt,
    RPCDATA,
    RPlus,
    RSeq,
    RStar,
    Regex,
    normalize_dtd,
)


class DTDParseError(ValueError):
    """Raised on malformed DTD text."""


_NAME_RE = re.compile(r"[A-Za-z_][\w.\-]*")


class _ContentScanner:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.source) and self.source[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.source[self.pos] if self.pos < len(self.source) else ""

    def take(self, char: str) -> bool:
        if self.peek() == char:
            self.pos += 1
            return True
        return False

    def expect(self, char: str) -> None:
        if not self.take(char):
            raise DTDParseError(
                f"expected {char!r} at position {self.pos} in "
                f"{self.source!r}")

    def name(self) -> str:
        self.skip_ws()
        match = _NAME_RE.match(self.source, self.pos)
        if not match:
            raise DTDParseError(
                f"expected a name at position {self.pos} in {self.source!r}")
        self.pos = match.end()
        return match.group()

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.source)


def _modifier(scanner: _ContentScanner, regex: Regex) -> Regex:
    if scanner.take("*"):
        return RStar(regex)
    if scanner.take("+"):
        return RPlus(regex)
    if scanner.take("?"):
        return ROpt(regex)
    return regex


def _parse_cp(scanner: _ContentScanner) -> Regex:
    """content particle: name or parenthesised group, with modifier."""
    if scanner.peek() == "(":
        return _parse_group(scanner)
    if scanner.peek() == "#":
        scanner.pos += 1
        word = scanner.name()
        if word != "PCDATA":
            raise DTDParseError(f"unknown keyword #{word}")
        return RPCDATA()
    return _modifier(scanner, RName(scanner.name()))


def _parse_group(scanner: _ContentScanner) -> Regex:
    scanner.expect("(")
    first = _parse_cp(scanner)
    items = [first]
    separator = ""
    while True:
        ch = scanner.peek()
        if ch == ")":
            scanner.pos += 1
            break
        if ch in (",", "|"):
            if separator and ch != separator:
                raise DTDParseError(
                    "cannot mix ',' and '|' at the same level in "
                    f"{scanner.source!r}")
            separator = ch
            scanner.pos += 1
            items.append(_parse_cp(scanner))
        else:
            raise DTDParseError(
                f"unexpected character {ch!r} in {scanner.source!r}")
    if len(items) == 1:
        inner: Regex = items[0]
    elif separator == ",":
        inner = RSeq(tuple(items))
    else:
        if any(isinstance(i, RPCDATA) for i in items):
            raise DTDParseError(
                "mixed content models (#PCDATA | …) are outside the "
                "paper's DTD normal form")
        inner = RChoice(tuple(items))
    return _modifier(scanner, inner)


def parse_content_model(source: str) -> Regex:
    """Parse a single ``<!ELEMENT>`` content model string."""
    scanner = _ContentScanner(source.strip())
    if scanner.at_end():
        raise DTDParseError("empty content model")
    word_match = _NAME_RE.match(scanner.source, scanner.pos)
    if word_match and word_match.group() in ("EMPTY", "ANY"):
        if word_match.group() == "ANY":
            raise DTDParseError("ANY content is not supported")
        scanner.pos = word_match.end()
        regex: Regex = REmpty()
    else:
        regex = _parse_cp(scanner)
    if not scanner.at_end():
        raise DTDParseError(f"trailing content in {source!r}")
    if isinstance(regex, RStar) and isinstance(regex.item, RPCDATA):
        # "(#PCDATA)*" is how some DTDs write plain PCDATA.
        regex = RPCDATA()
    return regex


_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w.\-]+)\s+(.*?)>", re.DOTALL)
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_ATTLIST_RE = re.compile(r"<!ATTLIST\s+.*?>", re.DOTALL)


def parse_dtd(source: str, root: str | None = None, name: str = "dtd") -> DTD:
    """Parse ``<!ELEMENT>`` declarations into a normal-form :class:`DTD`.

    ``root`` defaults to the first declared element.  ``<!ATTLIST>``
    declarations and comments are skipped (the paper's data model is
    attribute-free).

    >>> d = parse_dtd('''
    ...   <!ELEMENT db (class*)>
    ...   <!ELEMENT class (cno, title)>
    ...   <!ELEMENT cno (#PCDATA)>
    ...   <!ELEMENT title (#PCDATA)>
    ... ''')
    >>> d.root
    'db'
    """
    cleaned = _COMMENT_RE.sub("", source)
    cleaned = _ATTLIST_RE.sub("", cleaned)
    declared: dict[str, Regex] = {}
    first: str | None = None
    for match in _ELEMENT_RE.finditer(cleaned):
        element_type, content = match.group(1), match.group(2)
        if element_type in declared:
            raise DTDParseError(f"duplicate declaration of {element_type!r}")
        declared[element_type] = parse_content_model(content)
        if first is None:
            first = element_type
    if not declared:
        raise DTDParseError("no <!ELEMENT> declarations found")
    root = root or first
    assert root is not None
    if root not in declared:
        raise DTDParseError(f"root {root!r} is not declared")
    return normalize_dtd(declared, root, name)


# -- compact normal-form syntax ----------------------------------------

_EPS_WORDS = {"eps", "epsilon", "#eps", ""}


def parse_production(source: str) -> Production:
    """Parse the compact normal-form production syntax (module docstring).

    >>> parse_production("b + eps")
    Disjunction(children=('b',), optional=True)
    """
    stripped = source.strip()
    if stripped in ("str", "#PCDATA"):
        return Str()
    if stripped in _EPS_WORDS:
        return Empty()
    if "+" in stripped:
        parts = [p.strip() for p in stripped.split("+")]
        optional = any(p in _EPS_WORDS for p in parts)
        children = tuple(p for p in parts if p not in _EPS_WORDS)
        return Disjunction(children, optional=optional)
    if stripped.endswith("*"):
        inner = stripped[:-1].strip()
        if "," in inner or not inner:
            raise DTDParseError(f"bad star production {source!r}")
        return Star(inner)
    children = tuple(p.strip() for p in stripped.split(","))
    if any(not _NAME_RE.fullmatch(c) for c in children):
        raise DTDParseError(f"bad production {source!r}")
    return Concat(children)


def parse_compact(spec: str, root: str | None = None, name: str = "dtd") -> DTD:
    """Parse a multi-line compact schema description.

    One production per line, ``type -> rhs``; blank lines and ``#``
    comments are skipped.  The first type is the default root.

    >>> d = parse_compact('''
    ...     db -> class*
    ...     class -> cno, title
    ...     cno -> str
    ...     title -> str
    ... ''')
    >>> d.production("class")
    Concat(children=('cno', 'title'))
    """
    elements: dict[str, Production] = {}
    first: str | None = None
    for raw_line in spec.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if "->" not in line:
            raise DTDParseError(f"expected 'type -> production': {raw_line!r}")
        lhs, rhs = line.split("->", 1)
        element_type = lhs.strip()
        if not _NAME_RE.fullmatch(element_type):
            raise DTDParseError(f"bad element type {element_type!r}")
        if element_type in elements:
            raise DTDParseError(f"duplicate production for {element_type!r}")
        elements[element_type] = parse_production(rhs)
        if first is None:
            first = element_type
    if not elements:
        raise DTDParseError("empty schema description")
    root = root or first
    assert root is not None
    return DTD(elements, root, name)
