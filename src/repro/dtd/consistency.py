"""Consistency of DTDs: useless-type detection and removal (Section 2.1).

A DTD is *consistent* if every element type appears in some instance.
A type is useless when it is not *productive* (cannot derive a finite
subtree) or not *reachable* from the root through productive types.
The paper notes the conversion to a consistent DTD takes ``O(|S|^2)``
time along the lines of useless-symbol removal for CFGs; the fixpoint
below is the direct analogue.
"""

from __future__ import annotations

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    Production,
    SchemaError,
    Star,
    Str,
)


def productive_types(dtd: DTD) -> set[str]:
    """Types that derive at least one finite tree (least fixpoint).

    ``str``/``ε`` productions are productive; a star is productive with
    zero children; a concatenation needs all children productive; a
    disjunction needs one productive alternative (or the ε alternative).
    """
    productive: set[str] = set()
    changed = True
    while changed:
        changed = False
        for element_type, production in dtd.elements.items():
            if element_type in productive:
                continue
            if _production_productive(production, productive):
                productive.add(element_type)
                changed = True
    return productive


def _production_productive(production: Production,
                           productive: set[str]) -> bool:
    if isinstance(production, (Str, Empty, Star)):
        return True
    if isinstance(production, Concat):
        return all(c in productive for c in production.children)
    if isinstance(production, Disjunction):
        if production.optional:
            return True
        return any(c in productive for c in production.children)
    raise SchemaError(f"unknown production {production!r}")


def consistent_types(dtd: DTD) -> set[str]:
    """Types that appear in at least one instance of the DTD.

    A type is useful iff it is productive and reachable from the root
    via edges leading into productive types.  An unproductive star child
    or disjunction alternative can never materialise, so reachability
    must not pass through it.
    """
    productive = productive_types(dtd)
    if dtd.root not in productive:
        return set()
    useful = {dtd.root}
    frontier = [dtd.root]
    while frontier:
        parent = frontier.pop()
        for edge in dtd.edges_from(parent):
            child = edge.child
            if child in productive and child not in useful:
                useful.add(child)
                frontier.append(child)
    return useful


def is_consistent(dtd: DTD) -> bool:
    """``True`` iff every declared type appears in some instance."""
    return consistent_types(dtd) == set(dtd.elements)


def remove_useless_types(dtd: DTD) -> DTD:
    """Return a consistent DTD with the same instance set ``I(S)``.

    Useless disjunction alternatives and star children are dropped;
    concatenations containing a useless child make the parent useless in
    turn (already excluded by the fixpoint).  Raises if the root itself
    is unproductive (then ``I(S)`` is empty and no consistent equivalent
    exists).
    """
    useful = consistent_types(dtd)
    if not useful:
        raise SchemaError(
            f"DTD {dtd.name!r} has no instances (root is unproductive)")
    if useful == set(dtd.elements):
        return dtd

    elements: dict[str, Production] = {}
    for element_type in dtd.elements:
        if element_type not in useful:
            continue
        production = dtd.production(element_type)
        elements[element_type] = _restrict(production, useful)
    return DTD(elements, dtd.root, dtd.name)


def _restrict(production: Production, useful: set[str]) -> Production:
    if isinstance(production, Concat):
        # All children of a useful concatenation type are useful.
        assert all(c in useful for c in production.children)
        return production
    if isinstance(production, Disjunction):
        kept = tuple(c for c in production.children if c in useful)
        if not kept and not production.optional:
            raise SchemaError("useful disjunction lost all alternatives")
        if not kept:
            return Empty()
        return Disjunction(kept, production.optional)
    if isinstance(production, Star):
        if production.child not in useful:
            return Empty()
        return production
    return production
