"""DTD schemas in the paper's normal form (Section 2.1).

A DTD is ``(E, P, r)``: a finite set of element types, a production for
each type, and a root type.  Productions take one of the forms::

    α ::= str | ε | B1, …, Bn | B1 + … + Bn | B*

i.e. PCDATA, empty, concatenation (children may repeat), disjunction
(one-and-only-one child; optionally with an ε alternative, footnote 1),
and Kleene star.  Arbitrary DTD content models are brought into this
normal form by :func:`repro.dtd.normalize.normalize_dtd`, which
introduces fresh element types (linear time, per Section 2.1).

The *schema graph* view (Section 2.1) exposes AND / OR / STAR edges with
occurrence labels for repeated concatenation children.
"""

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Edge,
    EdgeKind,
    Empty,
    EPSILON,
    Production,
    Star,
    Str,
)
from repro.dtd.parser import DTDParseError, parse_dtd, parse_compact
from repro.dtd.normalize import normalize_dtd
from repro.dtd.consistency import (
    consistent_types,
    is_consistent,
    remove_useless_types,
)
from repro.dtd.mindef import MinDef, mindef_tree
from repro.dtd.validate import ConformanceError, conforms, validate
from repro.dtd.generate import random_instance

__all__ = [
    "DTD",
    "Concat",
    "Disjunction",
    "DTDParseError",
    "Edge",
    "EdgeKind",
    "Empty",
    "EPSILON",
    "MinDef",
    "Production",
    "Star",
    "Str",
    "ConformanceError",
    "conforms",
    "consistent_types",
    "is_consistent",
    "mindef_tree",
    "normalize_dtd",
    "parse_compact",
    "parse_dtd",
    "random_instance",
    "remove_useless_types",
    "validate",
]
