"""Minimum default instances (paper Section 4.2).

For each element type ``A`` of a consistent DTD, ``mindef(A)`` is a fixed
default instance, used by InstMap to pad the target document so that it
conforms to the target schema.  The paper computes it via a ``rank``
fixpoint:

* ``P(A) = str``  -> an ``A`` node with a ``#s`` text child, rank 0;
* ``P(A) = B*``   -> a childless ``A`` node, rank 0;
* ``P(A) = B1,…,Bn`` -> once all children have rank 0, an ``A`` node
  with children ``mindef(B1) … mindef(Bn)``;
* ``P(A) = B1+…+Bn`` -> once some alternative has rank 0, an ``A`` node
  whose single child is ``mindef(Bj)`` for the *smallest* rank-0
  alternative w.r.t. a fixed order on the types.

We fix the order to be alphabetical — this reproduces Example 4.3, where
``mindef(category)`` chooses the ``advanced`` alternative over
``mandatory``.  For an optional disjunction (footnote 1, ``A → B + ε``)
the ε alternative is the minimum, so ``mindef(A)`` is a childless node;
this also gives refinement R2 (DESIGN.md) the strongest signalling
behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    SchemaError,
    Star,
    Str,
)
from repro.xtree.nodes import ElementNode, TextNode, copy_tree

#: The fixed default string value ``#s`` of Section 4.2.
DEFAULT_STRING = "#s"


class MinDef:
    """Minimum default instances for one DTD, computed once and cached."""

    def __init__(self, dtd: DTD) -> None:
        self.dtd = dtd
        self.rank: dict[str, int] = {}
        #: the chosen alternative per disjunction type (None = ε)
        self.default_choice: dict[str, Optional[str]] = {}
        self._templates: dict[str, ElementNode] = {}
        self._compute_ranks()

    # ------------------------------------------------------------------
    def _compute_ranks(self) -> None:
        """The fixpoint of Section 4.2: rank 1 -> 0 as prerequisites land."""
        rank = {element_type: 1 for element_type in self.dtd.elements}
        for element_type, production in self.dtd.elements.items():
            if isinstance(production, (Str, Star, Empty)):
                rank[element_type] = 0
            elif isinstance(production, Disjunction) and production.optional:
                rank[element_type] = 0
                self.default_choice[element_type] = None

        changed = True
        while changed:
            changed = False
            for element_type, production in self.dtd.elements.items():
                if rank[element_type] == 0:
                    continue
                if isinstance(production, Concat):
                    if all(rank[c] == 0 for c in production.children):
                        rank[element_type] = 0
                        changed = True
                elif isinstance(production, Disjunction):
                    done = sorted(c for c in production.children
                                  if rank[c] == 0)
                    if done:
                        rank[element_type] = 0
                        self.default_choice[element_type] = done[0]
                        changed = True
        bad = sorted(t for t, r in rank.items() if r == 1)
        if bad:
            raise SchemaError(
                f"DTD {self.dtd.name!r} is inconsistent; no finite instance "
                f"for types {bad} (run remove_useless_types first)")
        self.rank = rank

    # ------------------------------------------------------------------
    def template(self, element_type: str) -> ElementNode:
        """The cached mindef tree (do not mutate; see :meth:`instance`)."""
        cached = self._templates.get(element_type)
        if cached is not None:
            return cached
        production = self.dtd.production(element_type)
        node = ElementNode(element_type)
        if isinstance(production, Str):
            node.append(TextNode(DEFAULT_STRING))
        elif isinstance(production, (Star, Empty)):
            pass
        elif isinstance(production, Concat):
            for child in production.children:
                node.append(self.template(child))
        elif isinstance(production, Disjunction):
            choice = self.default_choice[element_type]
            if choice is not None:
                node.append(self.template(choice))
        self._templates[element_type] = node
        return node

    def instance(self, element_type: str) -> ElementNode:
        """A fresh copy of ``mindef(element_type)`` with fresh node ids."""
        copy = copy_tree(self.template(element_type))
        assert isinstance(copy, ElementNode)
        return copy

    def size(self, element_type: str) -> int:
        """Number of nodes in ``mindef(element_type)``."""
        from repro.xtree.nodes import tree_size

        return tree_size(self.template(element_type))


def mindef_tree(dtd: DTD, element_type: str) -> ElementNode:
    """One-shot convenience wrapper around :class:`MinDef`.

    >>> from repro.dtd.parser import parse_compact
    >>> d = parse_compact("a -> b, c\\nb -> str\\nc -> d*\\nd -> str")
    >>> from repro.xtree.serialize import to_string
    >>> print(to_string(mindef_tree(d, "a"), indent=None))
    <a><b>#s</b><c/></a>
    """
    return MinDef(dtd).instance(element_type)
