"""Conformance of XML trees to DTDs (the instance definition, Section 2.1).

An instance ``T`` of ``S = (E, P, r)`` is an ordered tree where the root
is labelled ``r`` and every ``A``-element's child-label word is in the
regular language of ``P(A)``.  In normal form the languages are trivial
to check shape-by-shape.
"""

from __future__ import annotations

from repro.dtd.model import (
    DTD,
    Concat,
    Disjunction,
    Empty,
    SchemaError,
    Star,
    Str,
)
from repro.xtree.nodes import ElementNode, Node, TextNode


class ConformanceError(ValueError):
    """Raised by :func:`validate` with the offending node and reason."""

    def __init__(self, message: str, node: Node) -> None:
        super().__init__(message)
        self.node = node


def validate(tree: ElementNode, dtd: DTD) -> None:
    """Raise :class:`ConformanceError` unless ``tree`` conforms to ``dtd``."""
    if tree.tag != dtd.root:
        raise ConformanceError(
            f"root is <{tree.tag}>, expected <{dtd.root}>", tree)
    stack: list[ElementNode] = [tree]
    while stack:
        node = stack.pop()
        _validate_node(node, dtd)
        stack.extend(node.element_children())


def _validate_node(node: ElementNode, dtd: DTD) -> None:
    if node.tag not in dtd.elements:
        raise ConformanceError(f"unknown element type <{node.tag}>", node)
    production = dtd.production(node.tag)

    if isinstance(production, Str):
        # Zero children means the empty string: "<a></a>" and
        # "<a>v</a>" are both instances of A -> str (the XML parser
        # cannot even represent an explicit empty text run).
        if node.children and (
                len(node.children) != 1
                or not isinstance(node.children[0], TextNode)):
            raise ConformanceError(
                f"<{node.tag}> must contain exactly one text node", node)
        return

    # All other shapes are element-only content.
    for child in node.children:
        if isinstance(child, TextNode):
            raise ConformanceError(
                f"<{node.tag}> must not contain text (P({node.tag}) = "
                f"{production})", node)
    labels = [c.tag for c in node.element_children()]

    if isinstance(production, Empty):
        if labels:
            raise ConformanceError(f"<{node.tag}> must be empty", node)
    elif isinstance(production, Concat):
        if tuple(labels) != production.children:
            raise ConformanceError(
                f"<{node.tag}> children {labels} do not match concatenation "
                f"({production})", node)
    elif isinstance(production, Disjunction):
        if len(labels) == 0:
            if not production.optional:
                raise ConformanceError(
                    f"<{node.tag}> needs one of {production.children}", node)
        elif len(labels) > 1 or labels[0] not in production.children:
            raise ConformanceError(
                f"<{node.tag}> children {labels} do not match disjunction "
                f"({production})", node)
    elif isinstance(production, Star):
        bad = [l for l in labels if l != production.child]
        if bad:
            raise ConformanceError(
                f"<{node.tag}> may only contain <{production.child}> "
                f"children, found {bad}", node)
    else:  # pragma: no cover - exhaustive
        raise SchemaError(f"unknown production {production!r}")


def conforms(tree: ElementNode, dtd: DTD) -> bool:
    """Boolean wrapper around :func:`validate` (type safety checks)."""
    try:
        validate(tree, dtd)
    except ConformanceError:
        return False
    return True
