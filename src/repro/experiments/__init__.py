"""Experiment drivers reproducing the paper's evaluation (DESIGN.md E12–E15).

Each driver returns plain row dictionaries; the benchmarks print them
as tables (and record timings via pytest-benchmark), and
``EXPERIMENTS.md`` archives a reference run.
"""

from repro.experiments.report import format_table
from repro.experiments.accuracy import AccuracyRow, run_accuracy
from repro.experiments.scalability import ScalabilityRow, run_scalability
from repro.experiments.complexity import (
    run_instmap_growth,
    run_inverse_growth,
    run_translation_growth,
)

__all__ = [
    "AccuracyRow",
    "ScalabilityRow",
    "format_table",
    "run_accuracy",
    "run_instmap_growth",
    "run_inverse_growth",
    "run_scalability",
    "run_translation_growth",
]
