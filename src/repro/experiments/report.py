"""Minimal ASCII table rendering for experiment output."""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, Any]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render rows as an aligned ASCII table.

    >>> print(format_table([{"a": 1, "b": "x"}]))
    a | b
    --+--
    1 | x
    """
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    rendered = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w)
                                for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
