"""Experiment E12: accuracy vs. similarity noise (VLDB'05 study).

For each (schema, noise level, method): expand the schema into a
target with a known ground-truth embedding, perturb the similarity
matrix, run the heuristic, and record

* **success** — a *valid* embedding was found (the paper's headline
  metric: "the Random approach finds a high percentage of correct
  solutions over a wide range of att accuracies");
* **λ-accuracy** — fraction of source types mapped to their
  ground-truth images (how semantically faithful the found embedding
  is once ``att`` gets ambiguous);
* **time** — seconds per search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.matching.search import find_embedding
from repro.workloads.library import SCHEMA_LIBRARY
from repro.workloads.noise import expand_schema, noisy_att


@dataclass
class AccuracyRow:
    schema: str
    noise: float
    method: str
    trials: int
    success_rate: float
    lambda_accuracy: float
    mean_seconds: float

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "noise": self.noise,
            "method": self.method,
            "trials": self.trials,
            "success": f"{self.success_rate:.0%}",
            "lam-acc": f"{self.lambda_accuracy:.0%}",
            "sec/run": round(self.mean_seconds, 3),
        }


def run_accuracy(schemas: Sequence[str] = ("bib", "mondial", "orders"),
                 noises: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
                 methods: Sequence[str] = ("random", "quality", "indepset"),
                 trials: int = 3, seed: int = 0,
                 restarts: int = 20) -> list[AccuracyRow]:
    """Run the accuracy sweep; one row per (schema, noise, method)."""
    rows: list[AccuracyRow] = []
    for schema_name in schemas:
        source = SCHEMA_LIBRARY[schema_name]()
        for noise in noises:
            for method in methods:
                successes = 0
                lam_hits = 0
                lam_total = 0
                elapsed = 0.0
                for trial in range(trials):
                    expansion = expand_schema(source,
                                              seed=seed + 101 * trial)
                    att = noisy_att(expansion, noise,
                                    seed=seed + 13 * trial)
                    started = time.perf_counter()
                    result = find_embedding(expansion.source,
                                            expansion.target, att,
                                            method=method,
                                            seed=seed + trial,
                                            restarts=restarts)
                    elapsed += time.perf_counter() - started
                    if result.found:
                        successes += 1
                        assert result.embedding is not None
                        for source_type, image in result.embedding.lam.items():
                            lam_total += 1
                            if expansion.lam[source_type] == image:
                                lam_hits += 1
                rows.append(AccuracyRow(
                    schema=schema_name, noise=noise, method=method,
                    trials=trials,
                    success_rate=successes / trials,
                    lambda_accuracy=(lam_hits / lam_total
                                     if lam_total else 0.0),
                    mean_seconds=elapsed / trials))
    return rows
