"""Experiment E14: the complexity claims of Theorem 4.3, measured.

* ``σd`` runs in time linear in the document sizes (InstMap);
* ``σd⁻¹`` recovers the source in at most quadratic time — we measure
  both the structural inverse and the query-driven inverse from the
  proof of Theorem 3.3;
* ``Tr(Q)`` has automaton size ``O(|Q|·|σ|·|S1|)`` and is computed in
  ``O(|Q|²·|σ|·|S1|²)`` — we record |Q|, the measured ANFA size, the
  bound, and the translation time.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.core.inverse_queries import invert_via_queries
from repro.core.translate import Translator
from repro.dtd.generate import InstanceGenerator
from repro.workloads.library import school_example
from repro.workloads.queries import random_queries
from repro.xpath.ast import query_size
from repro.xtree.nodes import tree_size


def _school_instances(sizes: Sequence[int], seed: int = 0):
    bundle = school_example()
    instmap = InstMap(bundle.sigma1)
    for target_size in sizes:
        tree = None
        for star_mean in (1.5, 2.0, 3.0, 4.0, 6.0, 9.0, 14.0, 20.0, 30.0,
                          45.0, 70.0):
            generator = InstanceGenerator(bundle.classes,
                                          seed=seed + target_size,
                                          max_depth=8, star_mean=star_mean)
            tree = generator.generate()
            if tree_size(tree) >= target_size:
                break
        assert tree is not None
        yield bundle, tree, instmap


def run_instmap_growth(sizes: Sequence[int] = (100, 400, 1600, 6400),
                       seed: int = 0) -> list[dict]:
    """σd time vs. source/target size (expected: linear)."""
    rows = []
    for bundle, tree, instmap in _school_instances(sizes, seed):
        source_size = tree_size(tree)
        started = time.perf_counter()
        result = instmap.apply(tree)
        elapsed = time.perf_counter() - started
        rows.append({
            "|T1|": source_size,
            "|T2|": tree_size(result.tree),
            "map-sec": round(elapsed, 4),
            "us/node": round(1e6 * elapsed / max(1, source_size), 1),
        })
    return rows


def run_codec_growth(sizes: Sequence[int] = (100, 400, 1600, 6400),
                     seed: int = 0) -> list[dict]:
    """Fused map→serialize throughput of the generated codec against
    the interpreted InstMap, byte-identity checked per row.

    Both sides start from the same parsed tree (what ``run_instmap_growth``
    has always timed).  The codec row times ``codec.map_tree`` — map and
    serialize fused into one pass producing the output text — while the
    interpreted side owes ``instmap.apply`` *plus* ``to_string``; the
    ``speedup`` column is that full tree→text ratio.
    """
    # The experiment measures the engine's codec against the plane's
    # interpreter, so it must see both layers; lazy keeps the
    # experiments plane import-clean.  # lint: allow-lazy-import
    from repro.engine.compiled import CompiledEmbedding
    from repro.xtree.serialize import to_string

    rows = []
    compiled = None
    for bundle, tree, instmap in _school_instances(sizes, seed):
        if compiled is None:
            compiled = CompiledEmbedding(bundle.sigma1)
            codec = compiled.codec
            assert codec is not None, "school σ1 must have a codec"
        source_size = tree_size(tree)
        started = time.perf_counter()
        result = instmap.apply(tree)
        interp = time.perf_counter() - started
        started = time.perf_counter()
        reference = to_string(result.tree)
        serialize = time.perf_counter() - started
        started = time.perf_counter()
        output = codec.map_tree(tree)
        fused = time.perf_counter() - started
        rows.append({
            "|T1|": source_size,
            "interp-sec": round(interp, 4),
            "ser-sec": round(serialize, 4),
            "codec-sec": round(fused, 4),
            "speedup": (round((interp + serialize) / fused, 2)
                        if fused > 0 else 0.0),
            "identical": output == reference,
        })
    return rows


def run_inverse_growth(sizes: Sequence[int] = (100, 400, 1600),
                       seed: int = 0,
                       include_query_driven: bool = True) -> list[dict]:
    """σd⁻¹ time vs. size: structural vs. query-driven inverse."""
    rows = []
    for bundle, tree, instmap in _school_instances(sizes, seed):
        mapped = instmap.apply(tree)
        target_size = tree_size(mapped.tree)
        started = time.perf_counter()
        invert(bundle.sigma1, mapped.tree)
        structural = time.perf_counter() - started
        row = {
            "|T2|": target_size,
            "structural-sec": round(structural, 4),
        }
        if include_query_driven:
            started = time.perf_counter()
            invert_via_queries(bundle.sigma1, mapped.tree)
            row["query-driven-sec"] = round(time.perf_counter() - started, 4)
        rows.append(row)
    return rows


def run_translation_growth(counts: Sequence[int] = (5, 10, 20),
                           seed: int = 0,
                           max_steps: int = 7) -> list[dict]:
    """Tr(Q) size/time vs. |Q|, against the Theorem 4.3 bound."""
    bundle = school_example()
    sigma = bundle.sigma1
    sigma_size = sigma.size()
    s1_size = sigma.source.node_count()
    translator = Translator(sigma)
    rows = []
    for count in counts:
        queries = random_queries(sigma.source, count, seed=seed + count,
                                 max_steps=max_steps)
        for query in queries:
            size = query_size(query)
            started = time.perf_counter()
            anfa = translator.translate(query)
            elapsed = time.perf_counter() - started
            rows.append({
                "|Q|": size,
                "anfa-size": anfa.size(),
                "bound": size * sigma_size * s1_size,
                "within-bound": anfa.size() <= size * sigma_size * s1_size,
                "trans-ms": round(1e3 * elapsed, 3),
            })
    rows.sort(key=lambda r: r["|Q|"])
    return rows
