"""Experiment E13: running time vs. schema size (VLDB'05 study).

"These experiments verify the accuracy and efficiency of our heuristics
on schemas up to a few hundred nodes in size" with running times "in
the range of seconds or minutes".  We sweep random source schemas of
growing size, expand each into a (2–5×) larger target, and time the
search at a fixed moderate noise level.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.matching.search import find_embedding
from repro.workloads.noise import expand_schema, noisy_att
from repro.workloads.synthetic import random_dtd


@dataclass
class ScalabilityRow:
    source_types: int
    target_types: int
    method: str
    success: bool
    seconds: float

    def as_dict(self) -> dict:
        return {
            "src-types": self.source_types,
            "tgt-types": self.target_types,
            "method": self.method,
            "success": self.success,
            "seconds": round(self.seconds, 3),
        }


def run_scalability(sizes: Sequence[int] = (10, 20, 40, 80, 120),
                    methods: Sequence[str] = ("quality", "random"),
                    noise: float = 0.3, seed: int = 0,
                    ) -> list[ScalabilityRow]:
    rows: list[ScalabilityRow] = []
    for size in sizes:
        source = random_dtd(size, seed=seed + size)
        expansion = expand_schema(source, seed=seed + 1)
        att = noisy_att(expansion, noise, seed=seed + 2)
        for method in methods:
            started = time.perf_counter()
            result = find_embedding(expansion.source, expansion.target,
                                    att, method=method, seed=seed)
            elapsed = time.perf_counter() - started
            rows.append(ScalabilityRow(
                source_types=expansion.source.node_count(),
                target_types=expansion.target.node_count(),
                method=method, success=result.found, seconds=elapsed))
    return rows
