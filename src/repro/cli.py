"""Command-line interface: ``python -m repro.cli <command>``.

Commands mirror the paper's workflow:

* ``embed``     — find a schema embedding between two DTD files and
  print it (λ + paths), optionally as JSON;
* ``map``       — apply an embedding to a source document (σd);
* ``invert``    — recover the source document from a mapped one (σd⁻¹);
* ``translate`` — translate an XR query; print the ANFA and, when
  state elimination stays small, the equivalent XR expression;
* ``xslt``      — emit the generated σd / σd⁻¹ stylesheets;
* ``validate``  — check a document against a DTD;
* ``batch``     — engine-backed batch serving: ``batch map`` runs σd
  over many documents and ``batch translate`` serves many queries in
  one process, compiling the embedding exactly once (``--stats`` prints
  the engine's cache counters).

Embeddings are (de)serialised as JSON: λ plus ``A B occ path`` rows —
the declarative transformation-language artifact of Section 4.5.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.core.embedding import SchemaEmbedding, build_embedding
from repro.core.instmap import InstMap
from repro.engine import Engine
from repro.core.inverse import invert
from repro.core.similarity import SimilarityMatrix
from repro.core.translate import translate_query
from repro.anfa.to_regex import RegexConversionError, anfa_to_xr
from repro.dtd.model import DTD
from repro.dtd.parser import parse_compact, parse_dtd
from repro.dtd.validate import ConformanceError, validate
from repro.matching.search import find_embedding
from repro.xpath.parser import parse_xr
from repro.xslt.forward import forward_stylesheet
from repro.xslt.inverse import inverse_stylesheet
from repro.xslt.serialize import stylesheet_to_xslt
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string


def _load_dtd(path: str, root: Optional[str] = None) -> DTD:
    text = Path(path).read_text()
    if "<!ELEMENT" in text:
        return parse_dtd(text, root=root, name=Path(path).stem)
    return parse_compact(text, root=root, name=Path(path).stem)


def embedding_to_json(embedding: SchemaEmbedding) -> str:
    payload = {
        "lam": embedding.lam,
        "paths": [{"source": a, "child": b, "occ": occ, "path": str(p)}
                  for (a, b, occ), p in sorted(embedding.paths.items())],
    }
    return json.dumps(payload, indent=2)


def embedding_from_json(text: str, source: DTD,
                        target: DTD) -> SchemaEmbedding:
    payload = json.loads(text)
    paths = {(row["source"], row["child"], row.get("occ", 1)): row["path"]
             for row in payload["paths"]}
    return build_embedding(source, target, payload["lam"],
                           paths)  # type: ignore[arg-type]


def _cmd_embed(args: argparse.Namespace) -> int:
    source = _load_dtd(args.source)
    target = _load_dtd(args.target)
    if args.att:
        att = SimilarityMatrix()
        for row in json.loads(Path(args.att).read_text()):
            att.set(row["source"], row["target"], row["score"])
    elif args.match_names:
        att = SimilarityMatrix.from_names(source, target)
        att.set(source.root, target.root, 1.0)
    else:
        att = SimilarityMatrix.permissive()
    result = find_embedding(source, target, att, method=args.method,
                            seed=args.seed, restarts=args.restarts)
    if not result.found:
        print("no valid schema embedding found", file=sys.stderr)
        return 1
    assert result.embedding is not None
    print(f"# found by {result.method} in {result.seconds:.3f}s, "
          f"quality {result.quality:.2f}", file=sys.stderr)
    output = embedding_to_json(result.embedding)
    if args.out:
        Path(args.out).write_text(output)
    else:
        print(output)
    return 0


def _load_embedding(args: argparse.Namespace) -> SchemaEmbedding:
    source = _load_dtd(args.source)
    target = _load_dtd(args.target)
    embedding = embedding_from_json(Path(args.embedding).read_text(),
                                    source, target)
    embedding.check()
    return embedding


def _cmd_map(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    document = parse_xml(Path(args.document).read_text())
    result = InstMap(embedding).apply(document)
    print(to_string(result.tree))
    return 0


def _cmd_invert(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    document = parse_xml(Path(args.document).read_text())
    print(to_string(invert(embedding, document)))
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    query = parse_xr(args.query)
    anfa = translate_query(embedding, query)
    if anfa.is_fail():
        print("# the query selects nothing over the source schema",
              file=sys.stderr)
    print(anfa.describe())
    if args.regex:
        try:
            print(f"# as XR: {anfa_to_xr(anfa)}")
        except RegexConversionError as exc:
            print(f"# no small XR form: {exc}", file=sys.stderr)
    return 0


def _cmd_xslt(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    sheet = (inverse_stylesheet(embedding) if args.inverse
             else forward_stylesheet(embedding))
    print(stylesheet_to_xslt(sheet))
    return 0


def _cmd_batch_map(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    engine = Engine()
    out_dir = Path(args.out_dir) if args.out_dir else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    used_names: set[str] = set()

    def output_name(document_path: str) -> str:
        # Same-named inputs from different directories must not
        # silently overwrite each other.
        stem = Path(document_path).stem
        name = f"{stem}.mapped.xml"
        suffix = 2
        while name in used_names:
            name = f"{stem}-{suffix}.mapped.xml"
            suffix += 1
        used_names.add(name)
        return name

    failures = 0
    for document_path in args.documents:
        try:
            document = parse_xml(Path(document_path).read_text())
            result = engine.apply_embedding(embedding, document)
        except Exception as exc:  # keep serving the rest of the batch
            failures += 1
            print(f"# {document_path}: FAILED: {exc}", file=sys.stderr)
            continue
        rendered = to_string(result.tree)
        if out_dir is not None:
            out_path = out_dir / output_name(document_path)
            out_path.write_text(rendered + "\n")
            print(f"# {document_path} -> {out_path}", file=sys.stderr)
        else:
            print(f"# {document_path}", file=sys.stderr)
            print(rendered)
    if args.stats:
        print(engine.describe_stats(), file=sys.stderr)
    return 1 if failures else 0


def _cmd_batch_translate(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    engine = Engine()
    failures = 0
    for query_text in args.queries:
        try:
            anfa = engine.translate_query(embedding, query_text)
        except Exception as exc:
            failures += 1
            print(f"# {query_text}: FAILED: {exc}", file=sys.stderr)
            continue
        print(f"# query: {query_text}", file=sys.stderr)
        if anfa.is_fail():
            print("# the query selects nothing over the source schema",
                  file=sys.stderr)
        print(anfa.describe())
        if args.regex:
            try:
                print(f"# as XR: {anfa_to_xr(anfa)}")
            except RegexConversionError as exc:
                print(f"# no small XR form: {exc}", file=sys.stderr)
    if args.stats:
        print(engine.describe_stats(), file=sys.stderr)
    return 1 if failures else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.schema)
    document = parse_xml(Path(args.document).read_text())
    try:
        validate(document, dtd)
    except ConformanceError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print("valid")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Information-preserving XML schema embedding "
                    "(Fan & Bohannon, VLDB 2005)")
    sub = parser.add_subparsers(dest="command", required=True)

    embed = sub.add_parser("embed", help="find a schema embedding")
    embed.add_argument("source")
    embed.add_argument("target")
    embed.add_argument("--att", help="JSON similarity rows "
                       '[{"source","target","score"}]')
    embed.add_argument("--match-names", action="store_true",
                       help="derive att from a name matcher")
    embed.add_argument("--method", default="auto",
                       choices=["auto", "random", "quality", "indepset",
                                "exact"])
    embed.add_argument("--seed", type=int, default=0)
    embed.add_argument("--restarts", type=int, default=20)
    embed.add_argument("--out")
    embed.set_defaults(func=_cmd_embed)

    for name, func, extra in [("map", _cmd_map, "source document"),
                              ("invert", _cmd_invert, "mapped document")]:
        cmd = sub.add_parser(name, help=f"apply σd{'⁻¹' if name == 'invert' else ''}")
        cmd.add_argument("source")
        cmd.add_argument("target")
        cmd.add_argument("embedding", help="embedding JSON from 'embed'")
        cmd.add_argument("document", help=extra)
        cmd.set_defaults(func=func)

    translate = sub.add_parser("translate",
                               help="translate an XR query (Tr)")
    translate.add_argument("source")
    translate.add_argument("target")
    translate.add_argument("embedding")
    translate.add_argument("query")
    translate.add_argument("--regex", action="store_true",
                           help="also run state elimination back to XR")
    translate.set_defaults(func=_cmd_translate)

    xslt = sub.add_parser("xslt", help="emit the generated stylesheet")
    xslt.add_argument("source")
    xslt.add_argument("target")
    xslt.add_argument("embedding")
    xslt.add_argument("--inverse", action="store_true")
    xslt.set_defaults(func=_cmd_xslt)

    check = sub.add_parser("validate", help="validate a document")
    check.add_argument("schema")
    check.add_argument("document")
    check.set_defaults(func=_cmd_validate)

    batch = sub.add_parser(
        "batch", help="engine-backed batch serving (compile once)")
    batch_sub = batch.add_subparsers(dest="batch_command", required=True)

    batch_map = batch_sub.add_parser(
        "map", help="apply σd to many documents in one process")
    batch_map.add_argument("source")
    batch_map.add_argument("target")
    batch_map.add_argument("embedding", help="embedding JSON from 'embed'")
    batch_map.add_argument("documents", nargs="+",
                           help="source documents to map")
    batch_map.add_argument("--out-dir",
                           help="write <name>.mapped.xml files here "
                                "instead of stdout")
    batch_map.add_argument("--stats", action="store_true",
                           help="print engine cache counters to stderr")
    batch_map.set_defaults(func=_cmd_batch_map)

    batch_translate = batch_sub.add_parser(
        "translate", help="translate many XR queries in one process")
    batch_translate.add_argument("source")
    batch_translate.add_argument("target")
    batch_translate.add_argument("embedding")
    batch_translate.add_argument("queries", nargs="+",
                                 help="XR queries to translate")
    batch_translate.add_argument("--regex", action="store_true",
                                 help="also run state elimination back "
                                      "to XR")
    batch_translate.add_argument("--stats", action="store_true",
                                 help="print engine cache counters to "
                                      "stderr")
    batch_translate.set_defaults(func=_cmd_batch_translate)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
