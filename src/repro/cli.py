"""Command-line interface: ``python -m repro.cli <command>``.

Commands mirror the paper's workflow:

* ``embed``     — find a schema embedding between two DTD files and
  print it (λ + paths), optionally as JSON;
* ``map``       — apply an embedding to a source document (σd);
* ``invert``    — recover the source document from a mapped one (σd⁻¹);
* ``translate`` — translate an XR query; print the ANFA and, when
  state elimination stays small, the equivalent XR expression;
* ``xslt``      — emit the generated σd / σd⁻¹ stylesheets;
* ``validate``  — check a document against a DTD;
* ``batch``     — engine-backed batch serving: ``batch map`` runs σd
  over document corpora (files, directories of ``*.xml``, or NDJSON
  streams) and ``batch translate`` serves many queries, compiling the
  embedding exactly once.  ``--jobs N`` fans the batch across N worker
  processes (results stay in corpus order and are identical to
  ``--jobs 1``); ``--store DIR`` persists the compiled artifacts so
  workers — and future processes — warm-start with zero compile
  misses; ``--stats`` prints the aggregated cache counters;
* ``store``     — artifact-store management: ``store build`` compiles
  schemas + an embedding into a store directory up front, ``store
  inspect`` summarises a store's manifest (``--json`` emits the full
  provenance — schema formats, source text, lineage edges — machine-
  readably), ``store pack`` collapses the store into one mmap-able
  binary generation (the fleet's zero-copy warm-start source;
  repacking hot-reloads running fleets);
* ``evolve``    — schema evolution: per-query compatibility verdicts
  across a version bump (``repro evolve OLD NEW --queries FILE``) —
  each stored query comes back ``still-valid``, ``translatable``
  (re-translated query attached) or ``broken`` (structured reason);
  ``--store DIR`` records the bump as a lineage edge next to the
  compiled artifacts.  Exits 1 when no embedding exists between the
  versions or any query broke;
* ``serve``     — the long-lived HTTP daemon: warm-start from an
  artifact store and serve ``POST /v1/map|translate|invert|find|evolve``
  plus ``GET /healthz|/metrics`` until interrupted (see ``repro.serve``).
  ``--workers N`` pre-forks a fleet of N worker processes over the
  packed store (shared port + per-worker direct ports, crash
  supervision, hot reload); SIGTERM and Ctrl-C both drain gracefully;
* ``lint``      — the repo's own invariant linter
  (:mod:`repro.analysis`): layering, determinism, recursion,
  fork-safety and error-contract checkers over ``PATHS`` (default
  ``src``).  ``--json`` emits structured findings, ``--baseline FILE``
  suppresses grandfathered findings (and reports stale entries),
  ``--write-baseline`` snapshots current findings, ``--checks a,b``
  restricts the pass.  Exits 1 on new findings, 0 when clean.

Embeddings are (de)serialised as JSON: λ plus ``A B occ path`` rows —
the declarative transformation-language artifact of Section 4.5.

Schema files go through the pluggable frontend layer
(:mod:`repro.schema`): every subcommand takes ``--format
auto|dtd|compact|xsd`` (default ``auto`` sniffs the text), so the same
grammar works as ``<!ELEMENT>`` declarations, compact ``type -> rhs``
lines or an XSD-subset document — producing byte-identical artifacts
either way.  ``serve --format`` sets the default for inline schemas in
``/v1/find`` payloads; ``store build`` records each schema's format
and source text as provenance, shown by ``store inspect``.

Malformed inputs (unparseable schemas in any format, undetectable
formats, bad XML/JSON, corrupt stores, missing files) exit with status
2 and a one-line ``repro: error: …`` message — never a traceback;
per-item failures inside ``batch`` keep their existing
exit-1-and-keep-serving semantics.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path
from typing import Optional

from repro.core.embedding import SchemaEmbedding, build_embedding
from repro.core.instmap import InstMap
from repro.engine import (
    ArtifactStore,
    ParallelRunner,
    StreamStats,
    iter_corpus,
    iter_mapped,
    open_view,
    pack_store,
    stream_map_to_path,
)
from repro.core.inverse import invert
from repro.core.similarity import SimilarityMatrix
from repro.core.translate import translate_query
from repro.evolution import (
    BROKEN,
    STILL_VALID,
    TRANSLATABLE,
    evolve,
    evolve_and_record,
)
from repro.anfa.to_regex import RegexConversionError, anfa_to_xr
from repro.dtd.model import DTD
from repro.dtd.validate import ConformanceError, validate
from repro.schema import AUTO, available_formats, detect_format, load_schema
from repro.matching.search import find_embedding
from repro.serve import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_RELOAD_INTERVAL,
    FleetServer,
    ReproServer,
)
from repro.xpath.parser import parse_xr
from repro.xslt.forward import forward_stylesheet
from repro.xslt.inverse import inverse_stylesheet
from repro.xslt.serialize import stylesheet_to_xslt
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string


class LoadedSchema:
    """One schema file lowered through the frontend registry, keeping
    the resolved format and raw text as provenance for stores."""

    def __init__(self, dtd: DTD, format: str, text: str) -> None:
        self.dtd = dtd
        self.format = format
        self.text = text


def _load_schema(path: str, root: Optional[str] = None,
                 format: str = AUTO) -> LoadedSchema:
    """Load a schema file in any frontend format.

    Malformed or undetectable inputs raise a ``ValueError`` whose
    message is prefixed with the offending path, so every subcommand
    exits 2 with one ``repro: error: <path>: …`` line.
    """
    text = Path(path).read_text()
    try:
        resolved = detect_format(text) if format == AUTO else format
        dtd = load_schema(text, format=resolved, root=root,
                          name=Path(path).stem)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    return LoadedSchema(dtd, resolved, text)


def _load_dtd(path: str, root: Optional[str] = None,
              format: str = AUTO) -> DTD:
    return _load_schema(path, root=root, format=format).dtd


def embedding_to_json(embedding: SchemaEmbedding) -> str:
    payload = {
        "lam": embedding.lam,
        "paths": [{"source": a, "child": b, "occ": occ, "path": str(p)}
                  for (a, b, occ), p in sorted(embedding.paths.items())],
    }
    return json.dumps(payload, indent=2)


def embedding_from_json(text: str, source: DTD,
                        target: DTD) -> SchemaEmbedding:
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("embedding JSON must be an object with 'lam' "
                         "and 'paths'")
    lam = payload.get("lam")
    rows = payload.get("paths")
    if not isinstance(lam, dict) or not isinstance(rows, list):
        raise ValueError("embedding JSON must carry a 'lam' object and "
                         "a 'paths' list")
    paths = {}
    for index, row in enumerate(rows):
        if not isinstance(row, dict) or not {"source", "child",
                                             "path"} <= row.keys():
            raise ValueError(f"paths[{index}] must be an object with "
                             "'source', 'child' and 'path'")
        paths[(row["source"], row["child"], row.get("occ", 1))] = row["path"]
    return build_embedding(source, target, lam,
                           paths)  # type: ignore[arg-type]


def _cmd_embed(args: argparse.Namespace) -> int:
    source = _load_dtd(args.source, format=args.format)
    target = _load_dtd(args.target, format=args.format)
    if args.att:
        att = SimilarityMatrix()
        try:
            rows = json.loads(Path(args.att).read_text())
            if not isinstance(rows, list):
                raise ValueError("att JSON must be a list of "
                                 '{"source", "target", "score"} rows')
            for index, row in enumerate(rows):
                if not isinstance(row, dict) or not {"source", "target",
                                                     "score"} <= row.keys():
                    raise ValueError(f"row {index} needs 'source', "
                                     "'target' and 'score'")
                score = row["score"]
                if isinstance(score, bool) or \
                        not isinstance(score, (int, float)):
                    raise ValueError(f"row {index}: 'score' must be a "
                                     "number")
                att.set(row["source"], row["target"], float(score))
        except OSError:
            raise
        except ValueError as exc:
            raise ValueError(f"{args.att}: {exc}") from exc
    elif args.match_names:
        att = SimilarityMatrix.from_names(source, target)
        att.set(source.root, target.root, 1.0)
    else:
        att = SimilarityMatrix.permissive()
    result = find_embedding(source, target, att, method=args.method,
                            seed=args.seed, restarts=args.restarts)
    if not result.found:
        print("no valid schema embedding found", file=sys.stderr)
        return 1
    assert result.embedding is not None
    print(f"# found by {result.method} in {result.seconds:.3f}s, "
          f"quality {result.quality:.2f}", file=sys.stderr)
    output = embedding_to_json(result.embedding)
    if args.out:
        Path(args.out).write_text(output)
    else:
        print(output)
    return 0


def _load_embedding(args: argparse.Namespace) -> SchemaEmbedding:
    source = _load_dtd(args.source, format=args.format)
    target = _load_dtd(args.target, format=args.format)
    try:
        embedding = embedding_from_json(Path(args.embedding).read_text(),
                                        source, target)
        embedding.check()
    except OSError:
        raise
    except ValueError as exc:
        raise ValueError(f"{args.embedding}: {exc}") from exc
    return embedding


def _cmd_map(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    if args.stream:
        # Drive σd straight from parser events: memory is bounded by
        # the largest buffered fragment, not the document.  Output is
        # byte-identical to the buffered path below.
        instmap = InstMap(embedding)
        if args.out:
            stats = stream_map_to_path(instmap, args.out,
                                       path=args.document)
        else:
            stats = StreamStats()
            for chunk in iter_mapped(instmap, path=args.document,
                                     stats=stats):
                sys.stdout.write(chunk)
            sys.stdout.write("\n")
        print(f"# streamed: {stats.chars_out} chars, "
              f"{stats.frames_streamed} frame(s) live, "
              f"{stats.fragments_buffered} fragment(s) buffered",
              file=sys.stderr)
        return 0
    document = parse_xml(Path(args.document).read_text())
    result = InstMap(embedding).apply(document)
    output = to_string(result.tree)
    if args.out:
        Path(args.out).write_text(output + "\n")
    else:
        print(output)
    return 0


def _cmd_invert(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    document = parse_xml(Path(args.document).read_text())
    print(to_string(invert(embedding, document)))
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    query = parse_xr(args.query)
    anfa = translate_query(embedding, query)
    if anfa.is_fail():
        print("# the query selects nothing over the source schema",
              file=sys.stderr)
    print(anfa.describe())
    if args.regex:
        try:
            print(f"# as XR: {anfa_to_xr(anfa)}")
        except RegexConversionError as exc:
            print(f"# no small XR form: {exc}", file=sys.stderr)
    return 0


def _cmd_xslt(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    sheet = (inverse_stylesheet(embedding) if args.inverse
             else forward_stylesheet(embedding))
    print(stylesheet_to_xslt(sheet))
    return 0


def _make_runner(args: argparse.Namespace) -> ParallelRunner:
    return ParallelRunner(jobs=args.jobs, store=args.store)


def _stream_corpora(paths, failures: list[tuple[str, str]]):
    """Chain corpus paths, isolating per-path failures.

    A missing file, empty directory or malformed NDJSON line is
    recorded and the remaining corpora keep serving — one bad input
    must not sink the batch (and must never raise from inside the
    worker pool's lazy task generator).
    """
    for path in paths:
        try:
            yield from iter_corpus(path)
        except OSError as exc:
            failures.append((str(path), str(exc)))
        except ValueError as exc:  # CorpusError and friends
            failures.append((str(path), str(exc)))


def _cmd_batch_map(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    runner = _make_runner(args)
    out_dir = Path(args.out_dir) if args.out_dir else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    used_names: set[str] = set()

    def output_name(document_name: str) -> str:
        # Same-named inputs from different corpora must not silently
        # overwrite each other.
        stem = Path(document_name).stem
        name = f"{stem}.mapped.xml"
        suffix = 2
        while name in used_names:
            name = f"{stem}-{suffix}.mapped.xml"
            suffix += 1
        used_names.add(name)
        return name

    failures = 0
    corpus_failures: list[tuple[str, str]] = []
    corpus = _stream_corpora(args.documents, corpus_failures)
    for outcome in runner.map_corpus(embedding, corpus):
        if not outcome.ok:  # keep serving the rest of the batch
            failures += 1
            print(f"# {outcome.name}: FAILED: {outcome.output}",
                  file=sys.stderr)
            continue
        if out_dir is not None:
            out_path = out_dir / output_name(outcome.name)
            out_path.write_text(outcome.output + "\n")
            print(f"# {outcome.name} -> {out_path}", file=sys.stderr)
        else:
            print(f"# {outcome.name}", file=sys.stderr)
            print(outcome.output)
    for path, message in corpus_failures:
        failures += 1
        print(f"# {path}: FAILED: {message}", file=sys.stderr)
    if args.stats and runner.last_report is not None:
        print(runner.last_report.describe(), file=sys.stderr)
    return 1 if failures else 0


def _cmd_batch_translate(args: argparse.Namespace) -> int:
    embedding = _load_embedding(args)
    runner = _make_runner(args)
    failures = 0
    for outcome in runner.translate_outcomes(embedding, args.queries):
        if not outcome.ok:
            failures += 1
            print(f"# {outcome.query}: FAILED: {outcome.error}",
                  file=sys.stderr)
            continue
        anfa = outcome.anfa
        assert anfa is not None
        print(f"# query: {outcome.query}", file=sys.stderr)
        if anfa.is_fail():
            print("# the query selects nothing over the source schema",
                  file=sys.stderr)
        print(anfa.describe())
        if args.regex:
            try:
                print(f"# as XR: {anfa_to_xr(anfa)}")
            except RegexConversionError as exc:
                print(f"# no small XR form: {exc}", file=sys.stderr)
    if args.stats and runner.last_report is not None:
        print(runner.last_report.describe(), file=sys.stderr)
    return 1 if failures else 0


def _cmd_store_build(args: argparse.Namespace) -> int:
    source = _load_schema(args.source, format=args.format)
    target = _load_schema(args.target, format=args.format)
    store = ArtifactStore(args.store)
    store.put_schema(source.dtd, format=source.format,
                     source_text=source.text)
    store.put_schema(target.dtd, format=target.format,
                     source_text=target.text)
    for embedding_path in args.embeddings:
        try:
            embedding = embedding_from_json(
                Path(embedding_path).read_text(), source.dtd, target.dtd)
            embedding.check()
        except OSError:
            raise
        except ValueError as exc:
            raise ValueError(f"{embedding_path}: {exc}") from exc
        fingerprint = store.put_embedding(embedding, validated=True)
        print(f"# {embedding_path} -> embedding {fingerprint[:12]}…",
              file=sys.stderr)
    print(store)
    return 0


def _read_queries(path: str) -> list[str]:
    """A stored query workload: one XR query per line (blank lines and
    ``#`` comments skipped), or a JSON array of strings for ``*.json``.
    """
    text = Path(path).read_text()
    if path.endswith(".json"):
        try:
            rows = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: {exc}") from exc
        if not isinstance(rows, list) or \
                not all(isinstance(row, str) for row in rows):
            raise ValueError(f"{path}: expected a JSON array of query "
                             "strings")
        queries = list(rows)
    else:
        queries = [line.strip() for line in text.splitlines()
                   if line.strip() and not line.strip().startswith("#")]
    if not queries:
        raise ValueError(f"{path}: no queries found")
    return queries


def _cmd_evolve(args: argparse.Namespace) -> int:
    old = _load_schema(args.old, format=args.format)
    new = _load_schema(args.new, format=args.format)
    queries = _read_queries(args.queries)
    embedding: Optional[SchemaEmbedding] = None
    if args.embedding:
        try:
            embedding = embedding_from_json(
                Path(args.embedding).read_text(), old.dtd, new.dtd)
            embedding.check()
        except OSError:
            raise
        except ValueError as exc:
            raise ValueError(f"{args.embedding}: {exc}") from exc
    edge = None
    if args.store:
        store = ArtifactStore(args.store)
        report, edge = evolve_and_record(
            store, old.dtd, new.dtd, queries, embedding=embedding,
            method=args.method, seed=args.seed, restarts=args.restarts,
            samples=args.samples, old_format=old.format,
            old_source=old.text, new_format=new.format,
            new_source=new.text)
    else:
        report = evolve(old.dtd, new.dtd, queries, embedding=embedding,
                        method=args.method, seed=args.seed,
                        restarts=args.restarts, samples=args.samples)
    counts = report.counts()
    if args.json:
        payload = report.to_payload()
        if edge is not None:
            payload["lineage"] = edge.digest
        print(json.dumps(payload, indent=2))
    else:
        if not report.found:
            print("# no valid schema embedding between the versions",
                  file=sys.stderr)
        else:
            assert report.embedding is not None
            print(f"# embedding {report.embedding[:12]}… "
                  f"via {report.method}", file=sys.stderr)
        for verdict in report.verdicts:
            line = f"{verdict.verdict:<12} {verdict.query}"
            if verdict.verdict == TRANSLATABLE and verdict.translation:
                line += f"  ->  {verdict.translation}"
            elif verdict.verdict == BROKEN:
                line += f"  [{verdict.reason}]"
            print(line)
        print(f"# {counts[STILL_VALID]} still-valid, "
              f"{counts[TRANSLATABLE]} translatable, "
              f"{counts[BROKEN]} broken", file=sys.stderr)
        if edge is not None:
            print(f"# lineage edge {edge.digest[:12]}… recorded in "
                  f"{args.store}", file=sys.stderr)
    return 1 if (not report.found or counts[BROKEN]) else 0


def _cmd_store_inspect(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.store, create=False)
    summary = store.describe()
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"artifact store at {summary['path']} "
          f"(format {summary['format']} v{summary['version']})")
    for row in summary["schemas"]:
        provenance = row["source"] or "none"
        print(f"  schema    {row['fingerprint'][:12]}…  "
              f"root={row['root']}  types={row['types']}  "
              f"name={row['name']}  format={row['format']}  "
              f"source={provenance}")
    for row in summary["embeddings"]:
        print(f"  embedding {row['fingerprint'][:12]}…  "
              f"{row['source'][:12]}… -> {row['target'][:12]}…  "
              f"edges={row['edges']}  validated={row['validated']}")
    for row in summary["searches"]:
        embedding = (f"{row['embedding'][:12]}…" if row["embedding"]
                     else "not found")
        print(f"  search    {row['digest'][:12]}…  "
              f"method={row['method']}  embedding={embedding}")
    for row in summary["lineage"]:
        embedding = (f"{row['embedding'][:12]}…" if row.get("embedding")
                     else "none")
        print(f"  lineage   {row['digest'][:12]}…  "
              f"{row['old'][:12]}… -> {row['new'][:12]}…  "
              f"embedding={embedding}")
    for row in summary.get("codecs", []):
        pair = (f"{row['source'][:12]}… -> {row['target'][:12]}…"
                if row.get("source") and row.get("target")
                else "schema pair unknown")
        print(f"  codec     {row['embedding'][:12]}…  {pair}  "
              f"provenance={row.get('provenance', 'unknown')}")
    return 0


def _graceful_sigterm() -> None:
    """Make SIGTERM (systemd/docker stop) take the same graceful drain
    path as Ctrl-C: the serve loops catch KeyboardInterrupt, drain
    in-flight requests and release the port."""
    def handler(signum, frame):
        raise KeyboardInterrupt
    try:
        signal.signal(signal.SIGTERM, handler)
    except (ValueError, OSError):
        pass  # not the main thread / restricted platform: Ctrl-C only


def _cmd_store_pack(args: argparse.Namespace) -> int:
    path = pack_store(args.store, compact=args.compact)
    with open_view(args.store) as view:
        stats = view.stats()
    print(f"packed {args.store} -> {path.name} "
          f"(generation {stats['generation']}, {stats['bytes']} bytes, "
          f"{stats['schemas']} schema(s), "
          f"{stats['embeddings']} embedding(s), "
          f"{stats['searches']} search(es), "
          f"{stats['stale']} carried)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    _graceful_sigterm()
    if args.workers is not None and args.workers != 1:
        fleet = FleetServer(args.store, workers=args.workers,
                            host=args.host, port=args.port,
                            default_format=args.format,
                            reload_interval=args.reload_interval)
        fleet.start()
        print(f"# serving {fleet.url} — fleet of {fleet.workers} "
              f"worker(s) over pack generation {fleet.generation} "
              f"of {args.store}", file=sys.stderr)
        print(f"# worker direct ports: "
              f"{' '.join(map(str, fleet.worker_ports))} — "
              "GET /fleet /metrics/fleet for topology + aggregate",
              file=sys.stderr)
        print("# POST /v1/map /v1/translate /v1/invert /v1/find "
              "/v1/evolve — GET /healthz /metrics "
              "(Ctrl-C or SIGTERM to stop)", file=sys.stderr)
        fleet.serve_forever()
        return 0
    server = ReproServer(store=args.store, host=args.host, port=args.port,
                         default_format=args.format)
    server.start()
    state = server.state
    print(f"# serving {server.url} — {len(state.embeddings)} embedding(s), "
          f"{len(state.schemas)} schema(s) warm from {args.store}",
          file=sys.stderr)
    print("# POST /v1/map /v1/translate /v1/invert /v1/find "
          "/v1/evolve — GET /healthz /metrics "
          "(Ctrl-C or SIGTERM to stop)", file=sys.stderr)
    server.serve_forever()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        apply_baseline,
        load_baseline,
        render_json,
        render_text,
        run_lint,
        write_baseline,
    )

    checkers = None
    if args.checks:
        checkers = [name.strip() for name in args.checks.split(",")
                    if name.strip()]
    findings = run_lint(args.paths, checkers=checkers)
    if args.write_baseline:
        if not args.baseline:
            raise ValueError("--write-baseline needs --baseline FILE")
        count = write_baseline(findings, args.baseline)
        print(f"# wrote {count} baseline entr"
              f"{'y' if count == 1 else 'ies'} to {args.baseline} — "
              "add a real justification to each", file=sys.stderr)
        return 0
    match = None
    if args.baseline:
        match = apply_baseline(findings, load_baseline(args.baseline))
    render = render_json if args.json else render_text
    print(render(findings, match))
    new = findings if match is None else match.new
    return 1 if new else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.schema, format=args.format)
    document = parse_xml(Path(args.document).read_text())
    try:
        validate(document, dtd)
    except ConformanceError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print("valid")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Information-preserving XML schema embedding "
                    "(Fan & Bohannon, VLDB 2005)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_format_option(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--format", default=AUTO,
                         choices=[AUTO] + available_formats(),
                         help="schema input format (default: auto-"
                              "detect); 'serve' applies it to inline "
                              "schemas in /v1/find payloads")

    embed = sub.add_parser("embed", help="find a schema embedding")
    add_format_option(embed)
    embed.add_argument("source")
    embed.add_argument("target")
    embed.add_argument("--att", help="JSON similarity rows "
                       '[{"source","target","score"}]')
    embed.add_argument("--match-names", action="store_true",
                       help="derive att from a name matcher")
    embed.add_argument("--method", default="auto",
                       choices=["auto", "random", "quality", "indepset",
                                "exact"])
    embed.add_argument("--seed", type=int, default=0)
    embed.add_argument("--restarts", type=int, default=20)
    embed.add_argument("--out")
    embed.set_defaults(func=_cmd_embed)

    for name, func, extra in [("map", _cmd_map, "source document"),
                              ("invert", _cmd_invert, "mapped document")]:
        cmd = sub.add_parser(name, help=f"apply σd{'⁻¹' if name == 'invert' else ''}")
        cmd.add_argument("source")
        cmd.add_argument("target")
        cmd.add_argument("embedding", help="embedding JSON from 'embed'")
        cmd.add_argument("document", help=extra)
        add_format_option(cmd)
        if name == "map":
            cmd.add_argument("--stream", action="store_true",
                             help="map from parser events with bounded "
                                  "memory (byte-identical output)")
            cmd.add_argument("--out",
                             help="write the mapped document to a file "
                                  "(atomic with --stream) instead of stdout")
        cmd.set_defaults(func=func)

    translate = sub.add_parser("translate",
                               help="translate an XR query (Tr)")
    translate.add_argument("source")
    translate.add_argument("target")
    translate.add_argument("embedding")
    translate.add_argument("query")
    translate.add_argument("--regex", action="store_true",
                           help="also run state elimination back to XR")
    add_format_option(translate)
    translate.set_defaults(func=_cmd_translate)

    xslt = sub.add_parser("xslt", help="emit the generated stylesheet")
    xslt.add_argument("source")
    xslt.add_argument("target")
    xslt.add_argument("embedding")
    xslt.add_argument("--inverse", action="store_true")
    add_format_option(xslt)
    xslt.set_defaults(func=_cmd_xslt)

    check = sub.add_parser("validate", help="validate a document")
    check.add_argument("schema")
    check.add_argument("document")
    add_format_option(check)
    check.set_defaults(func=_cmd_validate)

    evolve_cmd = sub.add_parser(
        "evolve", help="per-query compatibility verdicts across a "
                       "schema version bump (still-valid / "
                       "translatable / broken)")
    evolve_cmd.add_argument("old", help="the current schema version")
    evolve_cmd.add_argument("new", help="the proposed successor version")
    evolve_cmd.add_argument("--queries", required=True,
                            help="stored workload: one XR query per "
                                 "line ('#' comments allowed), or a "
                                 "JSON array for *.json")
    evolve_cmd.add_argument("--embedding",
                            help="embedding JSON from 'embed' carrying "
                                 "the bump (default: search for one)")
    evolve_cmd.add_argument("--store",
                            help="artifact-store directory: record the "
                                 "bump as a lineage edge (schemas + "
                                 "embedding + verdict provenance)")
    evolve_cmd.add_argument("--method", default="auto",
                            choices=["auto", "random", "quality",
                                     "indepset", "exact"])
    evolve_cmd.add_argument("--seed", type=int, default=0)
    evolve_cmd.add_argument("--restarts", type=int, default=20)
    evolve_cmd.add_argument("--samples", type=int, default=None,
                            help="sample instances per preservation "
                                 "check (default: 3)")
    evolve_cmd.add_argument("--json", action="store_true",
                            help="print the full verdict report as "
                                 "JSON")
    add_format_option(evolve_cmd)
    evolve_cmd.set_defaults(func=_cmd_evolve)

    batch = sub.add_parser(
        "batch", help="engine-backed batch serving (compile once, "
                      "optionally fan out across worker processes)")
    batch_sub = batch.add_subparsers(dest="batch_command", required=True)

    def add_batch_options(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--jobs", type=int, default=1,
                         help="worker processes (default 1 = serial; "
                              "results are identical at any job count)")
        cmd.add_argument("--store",
                         help="artifact-store directory: compiled "
                              "schemas/embeddings are persisted there "
                              "and workers warm-start from it with "
                              "zero compile misses")
        cmd.add_argument("--stats", action="store_true",
                         help="print aggregated cache counters to "
                              "stderr")
        add_format_option(cmd)

    batch_map = batch_sub.add_parser(
        "map", help="apply σd to document corpora (files, directories "
                    "of *.xml, or .ndjson/.jsonl streams)")
    batch_map.add_argument("source")
    batch_map.add_argument("target")
    batch_map.add_argument("embedding", help="embedding JSON from 'embed'")
    batch_map.add_argument("documents", nargs="+",
                           help="corpus paths: XML files, directories "
                                "of *.xml, or NDJSON streams "
                                '({"name", "xml"} per line)')
    batch_map.add_argument("--out-dir",
                           help="write <name>.mapped.xml files here "
                                "instead of stdout")
    add_batch_options(batch_map)
    batch_map.set_defaults(func=_cmd_batch_map)

    batch_translate = batch_sub.add_parser(
        "translate", help="translate many XR queries")
    batch_translate.add_argument("source")
    batch_translate.add_argument("target")
    batch_translate.add_argument("embedding")
    batch_translate.add_argument("queries", nargs="+",
                                 help="XR queries to translate")
    batch_translate.add_argument("--regex", action="store_true",
                                 help="also run state elimination back "
                                      "to XR")
    add_batch_options(batch_translate)
    batch_translate.set_defaults(func=_cmd_batch_translate)

    store = sub.add_parser(
        "store", help="manage persistent artifact stores")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_build = store_sub.add_parser(
        "build", help="compile schemas + embeddings into a store so "
                      "servers warm-start with zero compile misses")
    store_build.add_argument("store", help="store directory (created "
                                           "if absent)")
    store_build.add_argument("source")
    store_build.add_argument("target")
    store_build.add_argument("embeddings", nargs="+",
                             help="embedding JSON files from 'embed'")
    add_format_option(store_build)
    store_build.set_defaults(func=_cmd_store_build)

    store_inspect = store_sub.add_parser(
        "inspect", help="summarise a store's manifest")
    store_inspect.add_argument("store")
    store_inspect.add_argument("--json", action="store_true",
                               help="print the raw manifest summary "
                                    "as JSON")
    store_inspect.set_defaults(func=_cmd_store_inspect)

    store_pack = store_sub.add_parser(
        "pack", help="pack the store into one mmap-able binary file "
                     "(a new generation); running fleets hot-reload it "
                     "without dropping a request")
    store_pack.add_argument("store")
    store_pack.add_argument("--compact", action="store_true",
                            help="drop artifacts no longer in the "
                                 "source store instead of carrying "
                                 "them forward from the previous "
                                 "generation")
    store_pack.set_defaults(func=_cmd_store_pack)

    lint = sub.add_parser(
        "lint", help="run the repo-invariant static analysis "
                     "(layering, determinism, recursion, fork safety, "
                     "error contract) over source trees")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint "
                           "(default: src)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable findings on stdout")
    lint.add_argument("--baseline",
                      help="JSON baseline of grandfathered findings; "
                           "only findings absent from it fail the run")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write the current findings to --baseline "
                           "as a skeleton (justifications required "
                           "before it loads)")
    lint.add_argument("--checks",
                      help="comma-separated checker subset (default: "
                           "all five)")
    lint.set_defaults(func=_cmd_lint)

    serve = sub.add_parser(
        "serve", help="long-lived HTTP daemon: warm-start from an "
                      "artifact store and serve mapping/translation/"
                      "inversion/search over JSON endpoints")
    serve.add_argument("store", help="artifact-store directory (from "
                                     "'store build' or --store)")
    serve.add_argument("--host", default=DEFAULT_HOST,
                       help=f"bind address (default {DEFAULT_HOST})")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port (default {DEFAULT_PORT}; 0 picks "
                            "a free port)")
    serve.add_argument("--workers", type=int, default=None,
                       help="pre-fork a fleet of N worker processes "
                            "over the packed store (default: single "
                            "process; the store is packed "
                            "automatically on first use)")
    serve.add_argument("--reload-interval", type=float,
                       default=DEFAULT_RELOAD_INTERVAL,
                       help="seconds between store-generation checks "
                            "in fleet workers (default "
                            f"{DEFAULT_RELOAD_INTERVAL})")
    add_format_option(serve)
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as exc:
        # Every malformed-input path (unreadable files, bad JSON/DTD/XML,
        # corrupt stores — all ValueError subclasses here) exits with one
        # clean line instead of a traceback.  Genuine bugs (TypeError,
        # AssertionError, …) still surface loudly.
        message = str(exc).strip() or type(exc).__name__
        print(f"repro: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
