"""Checker 4 — fork safety of the pre-fork serve fleet.

``fork()`` copies exactly one thread.  Any *other* thread running in
the parent at fork time simply vanishes in the child — together with
whatever locks it held, which then deadlock the child forever.  The
fleet supervisor (PR 6) is therefore built so that the parent binds
sockets, forks the workers, and only *then* starts its monitor
thread.  This checker keeps that ordering machine-checked:

* in the fleet module, a function that forks (``os.fork``, or
  ``.start()`` on a ``multiprocessing`` ``Process``, directly or via
  a helper like ``_spawn``) must not **start a thread** before its
  first fork site, and must not **hold a lock across** a fork site
  (``with <lock>:`` containing the fork, or an ``.acquire()`` with no
  ``.release()`` before it).  Helpers called on the pre-fork path are
  scanned transitively.
* ``os.fork`` itself may only appear in the supervisor module —
  everything else goes through the supervisor or ``multiprocessing``.

Constructing (not starting) threads, events or locks pre-fork is fine:
children inherit them unlocked.  Lock detection is heuristic — a
``with`` subject is "lockish" when it is a ``.get_lock()`` call or a
name/attribute containing ``lock`` — which is exactly the naming
convention the serve layer already follows.

The plane is ``repro.serve.fleet`` plus any module declaring
``# lint: fork-plane``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.collect import dotted_name
from repro.analysis.model import Finding, Module

CHECKER = "forksafety"

SUPERVISOR_MODULES = frozenset({"repro.serve.fleet"})
MODULE_MARKER = "fork-plane"


def _is_os_fork(node: ast.Call) -> bool:
    return dotted_name(node.func) == "os.fork"


def _is_process_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] == "Process"


def _is_thread_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] == "Thread"


def _lockish(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and \
            name.split(".")[-1] in ("get_lock", "Lock", "RLock")
    name = dotted_name(node)
    return name is not None and "lock" in name.split(".")[-1].lower()


class _FunctionScan:
    """Per-function fork/thread/lock facts, in statement order."""

    def __init__(self, qualname: str, node: ast.AST,
                 class_name: Optional[str]) -> None:
        self.qualname = qualname
        self.node = node
        self.class_name = class_name
        self.forks_directly = False
        #: calls that might resolve to module functions/methods
        self.callees: list[tuple[str, ast.Call]] = []


def _functions(module: Module) -> dict[str, _FunctionScan]:
    found: dict[str, _FunctionScan] = {}

    def visit(node: ast.AST, prefix: str,
              class_name: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                found[qual] = _FunctionScan(qual, child, class_name)
                visit(child, f"{qual}.", class_name)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{child.name}.", child.name)
            else:
                visit(node=child, prefix=prefix, class_name=class_name)

    visit(module.tree, "", None)
    return found


def _callee_names(call: ast.Call, scan: _FunctionScan) -> Iterator[str]:
    func = call.func
    if isinstance(func, ast.Name):
        yield func.id
    elif isinstance(func, ast.Attribute) and \
            isinstance(func.value, ast.Name) and \
            func.value.id in ("self", "cls") and scan.class_name:
        yield f"{scan.class_name}.{func.attr}"


def _forking_functions(module: Module,
                       scans: dict[str, _FunctionScan]) -> set[str]:
    """Fixpoint: functions that (transitively) reach a fork primitive.

    Process construction and ``.start()`` usually sit in the same
    function; treating any function that *constructs* a Process or
    calls ``os.fork`` as forking keeps the analysis simple and errs
    toward checking more code, never less.
    """
    process_attrs: set[str] = set()   # attribute names assigned Process()
    for scan in scans.values():
        for node in ast.walk(scan.node):
            if isinstance(node, ast.Call) and \
                    (_is_os_fork(node) or _is_process_ctor(node)):
                scan.forks_directly = True
            if isinstance(node, ast.Call):
                for name in _callee_names(node, scan):
                    scan.callees.append((name, node))
            if isinstance(node, ast.Assign) and _is_process_ctor(node.value):
                for target in node.targets:
                    attr = dotted_name(target)
                    if attr and attr.startswith("self."):
                        process_attrs.add(attr.split(".", 1)[1])
    forking = {qual for qual, scan in scans.items() if scan.forks_directly}
    changed = True
    while changed:
        changed = False
        for qual, scan in scans.items():
            if qual in forking:
                continue
            for name, _call in scan.callees:
                target = _resolve(name, scan, scans)
                if target in forking:
                    forking.add(qual)
                    changed = True
                    break
    return forking


def _resolve(name: str, scan: _FunctionScan,
             scans: dict[str, _FunctionScan]) -> Optional[str]:
    if name in scans:
        return name
    # A bare name may be a method called as a local helper reference.
    if scan.class_name and f"{scan.class_name}.{name}" in scans:
        return f"{scan.class_name}.{name}"
    return None


def _call_forks(call: ast.Call, scan: _FunctionScan,
                scans: dict[str, _FunctionScan],
                forking: set[str]) -> bool:
    if _is_os_fork(call) or _is_process_ctor(call):
        return True
    for name in _callee_names(call, scan):
        target = _resolve(name, scan, scans)
        if target in forking:
            return True
    return False


def _contains_fork(node: ast.AST, scan: _FunctionScan,
                   scans: dict[str, _FunctionScan],
                   forking: set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and \
                _call_forks(sub, scan, scans, forking):
            return True
    return False


def check(modules: list[Module]) -> Iterator[Finding]:
    for module in modules:
        if module.tree is None:
            continue
        in_plane = module.name in SUPERVISOR_MODULES or \
            module.has_module_marker(MODULE_MARKER)
        if not in_plane:
            yield from _check_no_fork(module)
            continue
        scans = _functions(module)
        forking = _forking_functions(module, scans)
        for qual in sorted(forking):
            yield from _check_prefork_path(module, scans[qual], scans,
                                           forking)


def _check_no_fork(module: Module) -> Iterator[Finding]:
    assert module.tree is not None
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and _is_os_fork(node) and \
                not module.allowed(node, "fork"):
            yield Finding(
                checker=CHECKER, code="forksafety/fork-outside-supervisor",
                path=module.rel, line=node.lineno,
                message=("os.fork() outside the fleet supervisor; all "
                         "forking goes through repro.serve.fleet (or "
                         "multiprocessing) so worker lifecycle stays "
                         "supervised"))


def _check_prefork_path(module: Module, scan: _FunctionScan,
                        scans: dict[str, _FunctionScan],
                        forking: set[str]) -> Iterator[Finding]:
    """Scan one forking function's body in statement order."""
    body = getattr(scan.node, "body", [])
    seen_fork = False
    #: names/attributes assigned a Thread constructor pre-fork
    thread_names: set[str] = set()
    for statement in body:
        statement_forks = _contains_fork(statement, scan, scans, forking)
        if not seen_fork:
            yield from _scan_prefork_statement(
                module, scan, scans, forking, statement,
                statement_forks, thread_names)
        if statement_forks:
            seen_fork = True


def _scan_prefork_statement(module: Module, scan: _FunctionScan,
                            scans: dict[str, _FunctionScan],
                            forking: set[str], statement: ast.AST,
                            statement_forks: bool,
                            thread_names: set[str]) -> Iterator[Finding]:
    # Locks held across a fork: a `with <lockish>:` whose body forks.
    if isinstance(statement, ast.With) and statement_forks:
        for item in statement.items:
            if _lockish(item.context_expr) and \
                    not module.allowed(statement, "lock-across-fork",
                                       enclosing=[scan.node]):
                yield Finding(
                    checker=CHECKER, code="forksafety/lock-across-fork",
                    path=module.rel, line=statement.lineno,
                    message=(f"{scan.qualname} holds a lock across a "
                             "fork; the child inherits it locked and "
                             "deadlocks"))
    for node in ast.walk(statement):
        if isinstance(node, ast.Assign) and _is_thread_ctor(node.value):
            for target in node.targets:
                name = dotted_name(target)
                if name:
                    thread_names.add(name)
        if not isinstance(node, ast.Call):
            continue
        # Threads started before the fork point: Thread(...).start()
        # inline, or x.start() on a name assigned Thread(...) earlier
        # on the same pre-fork path.
        started_thread = False
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr == "start":
            subject = node.func.value
            started_thread = _is_thread_ctor(subject) or \
                (dotted_name(subject) in thread_names)
        if started_thread and not statement_forks and \
                not module.allowed(node, "thread-before-fork",
                                   enclosing=[scan.node]):
            yield Finding(
                checker=CHECKER, code="forksafety/thread-before-fork",
                path=module.rel, line=node.lineno,
                message=(f"{scan.qualname} starts a thread on the "
                         "pre-fork path; forked children lose it and "
                         "inherit its held locks"))
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr == "acquire" and \
                _lockish(node.func.value) and not statement_forks and \
                not module.allowed(node, "lock-across-fork",
                                   enclosing=[scan.node]):
            yield Finding(
                checker=CHECKER, code="forksafety/lock-across-fork",
                path=module.rel, line=node.lineno,
                message=(f"{scan.qualname} acquires a lock on the "
                         "pre-fork path with no release before the "
                         "fork; the child inherits it locked"))
    # Helpers invoked pre-fork: any thread start / lock acquire inside
    # them happens before the fork too (one transitive hop keeps the
    # report anchored where the call is readable).
    if statement_forks:
        return
    for node in ast.walk(statement):
        if not isinstance(node, ast.Call):
            continue
        for name in _callee_names(node, scan):
            target = _resolve(name, scan, scans)
            if target is None or target in forking:
                continue
            yield from _scan_helper(module, scans[target], node)


def _scan_helper(module: Module, helper: _FunctionScan,
                 call_site: ast.Call) -> Iterator[Finding]:
    for node in ast.walk(helper.node):
        if not isinstance(node, ast.Call):
            continue
        started_thread = (
            isinstance(node.func, ast.Attribute) and
            node.func.attr == "start" and
            _is_thread_ctor(node.func.value))
        if started_thread and \
                not module.allowed(node, "thread-before-fork",
                                   enclosing=[helper.node]):
            yield Finding(
                checker=CHECKER, code="forksafety/thread-before-fork",
                path=module.rel, line=node.lineno,
                message=(f"{helper.qualname} (called on a pre-fork "
                         "path) starts a thread before the fork"))
