"""Checker 1 — layering: the module import DAG and the frontend
boundary.

The plane packages (``core``, ``dtd``, ``anfa``, ``xpath``, ``xtree``,
and the other schema/document-plane packages) implement the paper's
algorithms; ``engine`` and ``serve`` are the upper serving layers that
*consume* them.  An upward import from a plane module would create a
cycle in the architecture (and, at module level, usually a literal
import cycle).  The only sanctioned exceptions are the documented lazy
imports — the convenience wrappers that delegate to the default
engine — and each one must carry ``# lint: allow-lazy-import`` next
to the ``import`` so the allowlist lives in the code.

The second rule is the PR 4 frontend contract: only
``repro.schema`` and ``repro.dtd`` may *call* ``parse_dtd`` /
``parse_compact``; everything else goes through
``repro.schema.load_schema`` so every input format keeps producing
byte-identical artifacts.  (Re-exporting the names, as ``repro.api``
does, is fine — only call sites bypass the boundary.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.collect import call_name, iter_imports
from repro.analysis.model import Finding, Module

CHECKER = "layering"

#: Paper/algorithm planes: may never depend on the serving layers.
PLANE_PACKAGES = frozenset({
    "core", "dtd", "anfa", "xpath", "xtree", "xslt",
    "matching", "schema", "workloads", "experiments",
})

#: The serving layers (plus the entry modules, which may import anything).
UPPER_PREFIXES = ("repro.engine", "repro.serve", "repro.evolution")

#: Only these packages may call the raw schema parsers.
FRONTEND_PACKAGES = frozenset({"schema", "dtd"})
FRONTEND_CALLS = frozenset({"parse_dtd", "parse_compact"})


def _upper_target(imported: str) -> bool:
    return any(imported == prefix or imported.startswith(prefix + ".")
               for prefix in UPPER_PREFIXES)


def check(modules: list[Module]) -> Iterator[Finding]:
    for module in modules:
        yield from _check_import_dag(module)
        yield from _check_frontend_boundary(module)


def _check_import_dag(module: Module) -> Iterator[Finding]:
    package = module.top_package()
    if package not in PLANE_PACKAGES:
        return
    for site in iter_imports(module):
        if not _upper_target(site.module):
            continue
        if not site.lazy:
            # No marker can excuse a module-level upward import: it is
            # an architectural cycle whether documented or not.
            yield Finding(
                checker=CHECKER, code="layering/plane-imports-engine",
                path=module.rel, line=site.lineno,
                message=(f"plane module {module.name} imports "
                         f"{site.module} at module level; the "
                         f"{package}/ plane must not depend on the "
                         "serving layers"))
        elif not module.allowed(_line_node(site.lineno), "lazy-import",
                                enclosing=list(site.scopes)):
            yield Finding(
                checker=CHECKER, code="layering/lazy-import-unmarked",
                path=module.rel, line=site.lineno,
                message=(f"lazy import of {site.module} from plane "
                         f"module {module.name} needs a documented "
                         "'# lint: allow-lazy-import' marker"))


def _check_frontend_boundary(module: Module) -> Iterator[Finding]:
    if module.top_package() in FRONTEND_PACKAGES:
        return
    assert module.tree is not None
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name not in FRONTEND_CALLS:
            continue
        if module.allowed(node, "frontend-call"):
            continue
        yield Finding(
            checker=CHECKER, code="layering/frontend-boundary",
            path=module.rel, line=node.lineno,
            message=(f"direct call to {name}() outside repro.schema/"
                     "repro.dtd; go through repro.schema.load_schema "
                     "so every frontend format stays byte-identical"))


class _line_node:
    """A minimal stand-in exposing ``lineno`` for marker lookups."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno
