"""Checker 5 — the error contract of the public surface.

The CLI promises (PR 3): malformed input exits 2 with one
``repro: error: …`` line, never a traceback.  Its one ``except``
clause catches ``(OSError, ValueError)`` — so the promise only holds
while every error type the library raises for bad input derives from
``ValueError`` (or ``OSError``).  Two rules keep that true:

* **escaping-error-type** — every exception class defined in the
  package must resolve, through its base chain (repo classes
  followed transitively), to ``ValueError`` or ``OSError``.  Internal
  control-flow signals that must *not* be swallowed by the boundary
  (e.g. the plan compiler's "shape is not static") opt out with
  ``# lint: allow-error-type`` on the ``class`` line, with the reason
  in the comment.
* **entrypoint-raises-uncatchable** — the entry modules
  (``repro.cli``, ``repro.api``) must not themselves ``raise`` a
  builtin exception type the boundary cannot catch (``KeyError``,
  ``RuntimeError``, bare ``Exception``, …).  ``KeyboardInterrupt``,
  ``SystemExit`` and ``NotImplementedError`` are deliberate control
  flow and stay legal.

Base-class resolution consults the real builtins (``issubclass``), so
e.g. ``UnicodeDecodeError`` counts as a ``ValueError`` without a
hand-kept table.  Classes whose bases come from outside the scanned
tree are skipped, not guessed.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, Optional

from repro.analysis.model import Finding, Module

CHECKER = "errors"

ENTRY_MODULES = frozenset({"repro.cli", "repro.api"})

#: Raising these from an entry module is deliberate control flow.
_ENTRY_ALLOWED = frozenset({
    "ValueError", "OSError", "KeyboardInterrupt", "SystemExit",
    "NotImplementedError",
})


def _builtin_exception(name: str) -> Optional[type]:
    candidate = getattr(builtins, name, None)
    if isinstance(candidate, type) and \
            issubclass(candidate, BaseException):
        return candidate
    return None


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def check(modules: list[Module]) -> Iterator[Finding]:
    yield from _check_error_classes(modules)
    for module in modules:
        if module.name in ENTRY_MODULES:
            yield from _check_entry_raises(module)


def _check_error_classes(modules: list[Module]) -> Iterator[Finding]:
    # One package-wide class table: error classes subclass each other
    # across modules (PackError(StoreError) lives two files apart).
    classes: dict[str, tuple[Module, ast.ClassDef]] = {}
    for module in modules:
        if module.tree is None or not module.name:
            continue
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                classes.setdefault(node.name, (module, node))

    def classify(name: str, trail: frozenset) -> Optional[str]:
        """'ok' (ValueError/OSError rooted), 'bad' (other exception),
        or None (not an exception / unresolvable)."""
        builtin = _builtin_exception(name)
        if builtin is not None:
            return "ok" if issubclass(builtin, (ValueError, OSError)) \
                else "bad"
        if name in trail or name not in classes:
            return None
        _module, node = classes[name]
        verdicts = [classify(base, trail | {name})
                    for base in _base_names(node)]
        if "ok" in verdicts:
            return "ok"
        if "bad" in verdicts:
            return "bad"
        return None

    for name in sorted(classes):
        module, node = classes[name]
        verdict = classify(name, frozenset())
        if verdict != "bad":
            continue
        if module.allowed(node, "error-type"):
            continue
        bases = ", ".join(_base_names(node)) or "object"
        yield Finding(
            checker=CHECKER, code="errors/escaping-error-type",
            path=module.rel, line=node.lineno,
            message=(f"exception {name}({bases}) does not derive from "
                     "ValueError/OSError, so the CLI boundary cannot "
                     "catch it — bad input would traceback instead of "
                     "exiting 2 (derive from ValueError, or justify "
                     "with '# lint: allow-error-type')"))


def _check_entry_raises(module: Module) -> Iterator[Finding]:
    assert module.tree is not None
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if not isinstance(exc, ast.Name):
            continue
        builtin = _builtin_exception(exc.id)
        if builtin is None or exc.id in _ENTRY_ALLOWED:
            continue
        if issubclass(builtin, (ValueError, OSError)):
            continue
        if module.allowed(node, "uncatchable-raise"):
            continue
        yield Finding(
            checker=CHECKER, code="errors/entrypoint-raises-uncatchable",
            path=module.rel, line=node.lineno,
            message=(f"entry module raises {exc.id}, which escapes the "
                     "exit-2 boundary as a traceback; raise a repro "
                     "error (ValueError) instead"))
