"""Checker 3 — recursion: the document plane must stay iterative.

PR 5 converted every walker that scales with *document* depth to an
explicit stack so 1000-level documents survive (``RecursionError``
would otherwise fire around depth ~1000).  This checker keeps that
true: in the document-plane modules it builds a per-module call graph
— module functions, nested helpers, and ``self.``/``cls.`` method
calls resolved within the enclosing class — and reports every
strongly connected component (direct self-calls included).

Recursion that is *schema*-bounded rather than document-bounded (a
DTD's type graph is small and acyclic after normalisation) is legal
but must say so: ``# lint: allow-recursion`` on the ``def`` line of
any function in the cycle, with the bound in the comment.

The plane is the module list below plus any module declaring
``# lint: recursion-plane`` — or ``# lint: stream-plane`` /
``# lint: codec-plane``, the markers the streaming executor, the codec
generator and every *generated* codec module carry: those modules walk
documents too, so opting into their plane opts into this checker.
Resolution is name-based and
intra-module, so a call to another object's same-named method is only
linked when it goes through ``self``/``cls`` — false edges are rare
and every reported cycle names its members for a human check.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.model import Finding, Module

CHECKER = "recursion"

#: Modules whose call depth scales with document depth.
PLANE_MODULES = frozenset({
    "repro.core.instmap",
    "repro.core.inverse",
    "repro.engine.plan",
    "repro.dtd.validate",
})
PLANE_PREFIXES = ("repro.xtree.",)

MODULE_MARKER = "recursion-plane"

#: Markers that imply document-plane behaviour: the streaming executor
#: and the (generated) codec modules both walk whole documents, and
#: translation-plane composition walks query spines whose length the
#: user controls (deep chains must not recurse).
IMPLIED_MARKERS = ("stream-plane", "codec-plane", "translation-plane")


def _in_plane(module: Module) -> bool:
    if module.name in PLANE_MODULES:
        return True
    if module.name and module.name.startswith(PLANE_PREFIXES):
        return True
    return any(module.has_module_marker(marker)
               for marker in (MODULE_MARKER, *IMPLIED_MARKERS))


class _Function:
    def __init__(self, qualname: str, node: ast.AST,
                 class_name: Optional[str]) -> None:
        self.qualname = qualname
        self.node = node
        self.class_name = class_name
        self.calls: set[str] = set()     # resolved qualnames


def _collect_functions(module: Module) -> dict[str, _Function]:
    """Every function/method with a qualified name and its call sites."""
    functions: dict[str, _Function] = {}

    def visit(node: ast.AST, prefix: str, class_name: Optional[str],
              local_defs: dict[str, str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                functions[qualname] = _Function(qualname, child, class_name)
                local_defs[child.name] = qualname
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{child.name}.", child.name, {})

    visit(module.tree, "", None, {})
    return functions


def _resolve_edges(module: Module,
                   functions: dict[str, _Function]) -> None:
    """Fill each function's ``calls`` with resolved local targets."""
    module_level = {name: qual for qual, fn in functions.items()
                    for name in [qual] if "." not in qual}

    def gather(fn: _Function, node: ast.AST,
               visible: dict[str, str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def is its own function; register it under
                # the parent's scope and descend with it visible (so
                # siblings and the parent can call it).
                nested_qual = f"{fn.qualname}.<locals>.{child.name}"
                nested = functions.setdefault(
                    nested_qual, _Function(nested_qual, child,
                                           fn.class_name))
                inner_visible = dict(visible)
                inner_visible[child.name] = nested_qual
                gather(nested, child, inner_visible)
                visible[child.name] = nested_qual
                continue
            if isinstance(child, ast.ClassDef):
                continue  # classes defined inside functions: out of scope
            if isinstance(child, ast.Call):
                target = _resolve_call(child, fn, visible)
                if target is not None:
                    fn.calls.add(target)
            gather(fn, child, visible)

    def _resolve_call(call: ast.Call, fn: _Function,
                      visible: dict[str, str]) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in visible:
                return visible[func.id]
            return module_level.get(func.id)
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id in ("self", "cls") and fn.class_name:
            qual = f"{fn.class_name}.{func.attr}"
            if qual in functions:
                return qual
        return None

    for qualname in list(functions):
        fn = functions[qualname]
        if "<locals>" in qualname:
            continue  # gathered while walking the parent
        visible = dict(module_level)
        gather(fn, fn.node, visible)


def _sccs(graph: dict[str, set[str]]) -> Iterator[list[str]]:
    """Tarjan's SCC algorithm, iterative (the linter of recursion
    limits must not hit them itself)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    for start in sorted(graph):
        if start in index:
            continue
        work = [(start, iter(sorted(graph[start])))]
        index[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                yield component


def check(modules: list[Module]) -> Iterator[Finding]:
    for module in modules:
        if not _in_plane(module) or module.tree is None:
            continue
        functions = _collect_functions(module)
        _resolve_edges(module, functions)
        graph = {qual: fn.calls for qual, fn in functions.items()}
        for component in _sccs(graph):
            is_cycle = len(component) > 1 or (
                component[0] in graph.get(component[0], ()))
            if not is_cycle:
                continue
            members = sorted(component)
            if any(module.allowed(functions[m].node, "recursion")
                   for m in members):
                continue
            anchor = min(members,
                         key=lambda m: functions[m].node.lineno)
            cycle = " -> ".join(members + [members[0]]) \
                if len(members) > 1 else f"{members[0]} -> {members[0]}"
            yield Finding(
                checker=CHECKER, code="recursion/document-plane-cycle",
                path=module.rel, line=functions[anchor].node.lineno,
                message=(f"recursive call cycle in document-plane "
                         f"module {module.name}: {cycle}; deep "
                         "documents need an explicit stack (or a "
                         "'# lint: allow-recursion' bound note)"))
