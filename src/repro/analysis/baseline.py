"""Grandfathered findings: the committed JSON baseline.

A baseline entry pairs a finding :attr:`~repro.analysis.model.Finding.key`
(line-number-free, so unrelated edits don't invalidate it) with a
mandatory one-line justification — an entry with no justification is a
malformed baseline, not a silent pass.  ``repro lint`` exits non-zero
only on findings *absent* from the baseline, and reports baseline
entries that no longer match anything as *stale* so they get expired
instead of rotting.

Matching is multiset-aware: two identical findings in one file need
two entries (or one entry with ``"count": 2``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Union

from repro.analysis.model import Finding, LintError

BASELINE_VERSION = 1


@dataclass
class BaselineMatch:
    """The outcome of applying a baseline to a findings list."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)   #: unmatched keys


def load_baseline(path: Union[str, Path]) -> dict[str, dict]:
    """``key -> {"justification": …, "count": n}`` from a baseline file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise LintError(f"{path}: cannot read baseline: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"{path}: baseline is not valid JSON: "
                        f"{exc}") from exc
    if not isinstance(payload, dict) or \
            not isinstance(payload.get("entries"), list):
        raise LintError(f"{path}: baseline must be an object with an "
                        "'entries' list")
    entries: dict[str, dict] = {}
    for index, row in enumerate(payload["entries"]):
        if not isinstance(row, dict) or not isinstance(
                row.get("key"), str):
            raise LintError(f"{path}: entries[{index}] needs a string "
                            "'key'")
        justification = row.get("justification")
        if not isinstance(justification, str) or not justification.strip():
            raise LintError(
                f"{path}: entries[{index}] ({row['key'][:60]}…) has no "
                "justification — every grandfathered finding must say "
                "why it is allowed to stay")
        count = row.get("count", 1)
        if not isinstance(count, int) or isinstance(count, bool) or \
                count < 1:
            raise LintError(f"{path}: entries[{index}]: 'count' must "
                            "be a positive integer")
        if row["key"] in entries:
            entries[row["key"]]["count"] += count
        else:
            entries[row["key"]] = {"justification": justification,
                                   "count": count}
    return entries


def apply_baseline(findings: Iterable[Finding],
                   entries: dict[str, dict]) -> BaselineMatch:
    remaining = {key: entry["count"] for key, entry in entries.items()}
    match = BaselineMatch()
    for finding in findings:
        if remaining.get(finding.key, 0) > 0:
            remaining[finding.key] -= 1
            match.baselined.append(finding)
        else:
            match.new.append(finding)
    match.stale = sorted(key for key, count in remaining.items()
                         if count > 0)
    return match


def write_baseline(findings: Iterable[Finding], path: Union[str, Path],
                   justification: str = "TODO: justify or fix") -> int:
    """Write ``findings`` as a baseline skeleton; returns entry count.

    Every entry gets the placeholder justification — committing it
    unedited still works mechanically, but the review convention is
    that each line gains its real reason.
    """
    counts: dict[str, int] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        counts[finding.key] = counts.get(finding.key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {"key": key, "count": count, "justification": justification}
            if count > 1 else
            {"key": key, "justification": justification}
            for key, count in counts.items()],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(counts)
