"""Checker 2 — determinism: no nondeterministic constructs in the
byte-output planes.

Canonical renderings feed content fingerprints (PR 5's fast-path
contract: equal artifacts must render byte-identically in every
process), and the pack/store formats are compared across workers.  In
those modules, anything whose result depends on hash seeding, object
identity, randomness or the wall clock is a correctness bug even when
every test passes locally:

* iterating a ``set``/``frozenset`` (literal, comprehension or
  constructor call) — order is hash-seed dependent; wrap in
  ``sorted(...)`` or dedup with ``dict.fromkeys`` instead;
* iterating ``vars(x)`` / ``x.__dict__`` — attribute insertion order
  is an implementation detail of unrelated code;
* ``id(...)`` — process-specific object identity;
* ``hash(...)`` — ``PYTHONHASHSEED``-dependent for strings;
* ``random.*`` / ``os.urandom`` / ``uuid.*`` — randomness;
* ``time.time``/``datetime.now`` and friends — wall clock.

The plane is the built-in module list below plus any module that
declares ``# lint: determinism-plane`` — or ``# lint: stream-plane`` /
``# lint: codec-plane`` / ``# lint: translation-plane``: streamed
chunks and generated codec source are both byte contracts (chunks must
concatenate to the reference serialization; codec source is
fingerprint-keyed in the store), and translation-plane composition
must yield byte-stable state numbering (canonical renderings feed
serve responses and trim certificates), so those planes opt into this
checker too.  Justified
exceptions (e.g.
``id()`` used only as an identity *key* whose value never reaches the
output) carry ``# lint: allow-<rule>`` on the line or the enclosing
``def``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.collect import dotted_name
from repro.analysis.model import Finding, Module

CHECKER = "determinism"

#: Modules whose output bytes are a correctness contract.
PLANE_MODULES = frozenset({
    "repro.dtd.serialize",      # canonical DTD rendering -> fingerprints
    "repro.anfa.model",         # canonical_describe -> serve responses
    "repro.engine.compiled",    # fingerprint-keyed artifacts
    "repro.engine.storepack",   # the packed binary generation format
})

MODULE_MARKER = "determinism-plane"

#: Markers that imply byte-output behaviour (see the module docstring).
#: ``translation-plane`` marks ANFA composition modules whose state
#: numbering must be byte-stable across processes.
IMPLIED_MARKERS = ("stream-plane", "codec-plane", "translation-plane")

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.ctime",
    "time.gmtime", "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})
_RANDOM_PREFIXES = ("random.", "uuid.")
_RANDOM_CALLS = frozenset({"os.urandom"})


def _in_plane(module: Module) -> bool:
    if module.name in PLANE_MODULES:
        return True
    return any(module.has_module_marker(marker)
               for marker in (MODULE_MARKER, *IMPLIED_MARKERS))


def _set_valued(node: ast.AST) -> Optional[str]:
    """Describe ``node`` when it syntactically produces a set."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and \
                node.func.id in ("set", "frozenset"):
            return f"{node.func.id}(...)"
        if isinstance(node.func, ast.Name) and node.func.id == "vars":
            return "vars(...)"
    if isinstance(node, ast.Attribute) and node.attr == "__dict__":
        return "__dict__"
    return None


def check(modules: list[Module]) -> Iterator[Finding]:
    for module in modules:
        if _in_plane(module):
            yield from _check_module(module)


def _check_module(module: Module) -> Iterator[Finding]:
    assert module.tree is not None
    scopes: list[ast.AST] = []

    def walk(node: ast.AST) -> Iterator[Finding]:
        is_scope = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef))
        if is_scope:
            scopes.append(node)
        yield from _check_node(module, node, scopes)
        for child in ast.iter_child_nodes(node):
            yield from walk(child)
        if is_scope:
            scopes.pop()

    yield from walk(module.tree)


def _iteration_sources(node: ast.AST) -> Iterator[ast.AST]:
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)):
        for generator in node.generators:
            yield generator.iter
    elif isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Name) and node.func.id in (
                "list", "tuple", "enumerate", "reversed", "iter"):
        # list(set(...)) keeps hash order just like `for` does.
        if node.args:
            yield node.args[0]


def _check_node(module: Module, node: ast.AST,
                scopes: list[ast.AST]) -> Iterator[Finding]:
    for source in _iteration_sources(node):
        described = _set_valued(source)
        if described and not module.allowed(source, "set-iteration",
                                            enclosing=scopes):
            yield Finding(
                checker=CHECKER, code="determinism/set-iteration",
                path=module.rel, line=source.lineno,
                message=(f"iteration over {described} in a byte-output "
                         "plane depends on hash order; sort it or "
                         "dedup with dict.fromkeys"))
    if not isinstance(node, ast.Call):
        return
    if isinstance(node.func, ast.Name):
        if node.func.id == "id" and len(node.args) == 1:
            if not module.allowed(node, "id", enclosing=scopes):
                yield Finding(
                    checker=CHECKER, code="determinism/id",
                    path=module.rel, line=node.lineno,
                    message=("id() is process-specific object identity; "
                             "it must never influence output bytes"))
        elif node.func.id == "hash" and len(node.args) == 1:
            if not module.allowed(node, "hash", enclosing=scopes):
                yield Finding(
                    checker=CHECKER, code="determinism/hash",
                    path=module.rel, line=node.lineno,
                    message=("hash() is PYTHONHASHSEED-dependent; use a "
                             "content fingerprint instead"))
        return
    dotted = dotted_name(node.func)
    if dotted is None:
        return
    if dotted in _WALL_CLOCK:
        if not module.allowed(node, "wall-clock", enclosing=scopes):
            yield Finding(
                checker=CHECKER, code="determinism/wall-clock",
                path=module.rel, line=node.lineno,
                message=(f"{dotted}() reads the wall clock inside a "
                         "byte-output plane"))
    elif dotted in _RANDOM_CALLS or \
            dotted.startswith(_RANDOM_PREFIXES):
        if not module.allowed(node, "random", enclosing=scopes):
            yield Finding(
                checker=CHECKER, code="determinism/random",
                path=module.rel, line=node.lineno,
                message=(f"{dotted}() injects randomness inside a "
                         "byte-output plane"))
