"""Module collection and the import graph — the walker infrastructure
every checker shares.

:func:`collect_modules` turns CLI paths (files or directories) into
parsed :class:`~repro.analysis.model.Module` records with stable,
repo-relative finding paths.  :func:`iter_imports` flattens a module's
``import``/``from`` statements — wherever they hide (function bodies,
``try`` blocks, ``if TYPE_CHECKING`` guards) — into
:class:`ImportSite` records that carry the *laziness* of the site:
an import nested inside a function only executes on call, which is
exactly the distinction the layering checker's allowlist is about.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.analysis.model import Finding, LintError, Module


@dataclass(frozen=True)
class ImportSite:
    """One imported module name at one source location."""

    module: str          #: dotted module ("repro.engine.session")
    lineno: int
    lazy: bool           #: nested inside a function => executes on call
    #: enclosing def/class nodes, outermost first (for marker lookup)
    scopes: tuple


def _module_name(path: Path) -> Optional[str]:
    """Dotted module name for files inside a ``repro`` package tree."""
    parts = list(path.parts)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            # Guard against a directory merely named repro: the real
            # package root carries __init__.py.
            if not (Path(*parts[:index + 1]) / "__init__.py").exists():
                return None
            dotted = parts[index:]
            if dotted[-1].endswith(".py"):
                dotted[-1] = dotted[-1][:-3]
            if dotted[-1] == "__init__":
                dotted.pop()
            return ".".join(dotted)
    return None


def _iter_files(path: Path) -> Iterator[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for candidate in sorted(path.rglob("*.py")):
        if "__pycache__" in candidate.parts:
            continue
        yield candidate


def collect_modules(paths: Iterable, root: Optional[Path] = None,
                    ) -> tuple[list[Module], list[Finding]]:
    """Parse every ``*.py`` under ``paths``.

    Returns the parsed modules plus parse-failure findings — a file
    the linter cannot read is itself a finding (checker ``parse``),
    never a crash.
    """
    root = Path.cwd() if root is None else Path(root)
    modules: list[Module] = []
    failures: list[Finding] = []
    seen: set[Path] = set()
    any_input = False
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"{path}: no such file or directory")
        for file_path in _iter_files(path):
            any_input = True
            resolved = file_path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                rel = str(resolved.relative_to(root.resolve()))
            except ValueError:
                rel = str(file_path)
            try:
                source = resolved.read_text()
            except (OSError, UnicodeDecodeError) as exc:
                failures.append(Finding(
                    checker="parse", code="parse/unreadable", path=rel,
                    line=1, message=f"cannot read source: {exc}"))
                continue
            module = Module.parse(resolved, rel, _module_name(resolved),
                                  source)
            if module.tree is None:
                failures.append(Finding(
                    checker="parse", code="parse/syntax-error", path=rel,
                    line=1, message="file does not parse as Python"))
                continue
            modules.append(module)
    if not any_input:
        raise LintError("no Python files under the given paths")
    return modules, failures


def iter_imports(module: Module) -> Iterator[ImportSite]:
    """Every imported module name in ``module``, with laziness."""
    if module.tree is None:
        return

    def walk(node: ast.AST, scopes: tuple, lazy: bool) -> Iterator[ImportSite]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Import):
                for alias in child.names:
                    yield ImportSite(alias.name, child.lineno, lazy, scopes)
            elif isinstance(child, ast.ImportFrom):
                if child.module and child.level == 0:
                    yield ImportSite(child.module, child.lineno, lazy,
                                     scopes)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(child, scopes + (child,), True)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, scopes + (child,), lazy)
            else:
                yield from walk(child, scopes, lazy)

    yield from walk(module.tree, (), False)


# -- call-name helpers shared by several checkers ---------------------------
def call_name(node: ast.Call) -> Optional[str]:
    """``foo(...)`` -> ``foo``; ``a.b.foo(...)`` -> ``foo``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains (``None`` for anything else)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
