"""``repro.analysis`` — the repo-specific static-analysis pass.

The paper's guarantees (information preservation, invertibility,
query translatability) hold in this repro because the code keeps a
handful of invariants that are invisible to the type system:
canonical renderings feed fingerprints byte-for-byte, the document
plane is iterative so deep documents survive, only the schema
frontends parse schema text, the pre-fork fleet stays fork-safe, and
every bad-input error is catchable at the CLI boundary.  ``repro
lint`` machine-enforces all five:

========================  ==============================================
checker                   invariant
========================  ==============================================
``layering``              plane packages never import ``engine``/
                          ``serve`` (lazy + ``# lint:
                          allow-lazy-import`` excepted); only
                          ``schema``/``dtd`` call the raw parsers
``determinism``           no hash-order/identity/randomness/wall-clock
                          dependence in the byte-output planes
``recursion``             no call cycles in the document-plane modules
``forksafety``            no threads started / locks held on the
                          fleet's pre-fork path; ``os.fork`` only in
                          the supervisor
``errors``                every exception type is ValueError/OSError-
                          rooted; entry modules raise nothing the
                          exit-2 boundary cannot catch
``codecgen``              generated codec source is byte-identical
                          across repeated generations (store cache
                          hits must equal fresh generation)
========================  ==============================================

The streaming/codec planes opt in via ``# lint: stream-plane`` /
``# lint: codec-plane`` module markers, which enrol a module in both
the ``recursion`` and ``determinism`` checkers (generated codec
modules carry ``codec-plane`` in their header, so they lint like
hand-written document-plane code).

Run it as ``repro lint [PATHS] [--json] [--baseline FILE]`` or via
:func:`run_lint`.  Extending: a checker is a module with a ``CHECKER``
name and a ``check(modules) -> Iterator[Finding]`` — add it to
:data:`CHECKERS` and its ``allow-*`` markers work immediately.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.analysis import (
    codecgen,
    determinism,
    errorcontract,
    forksafety,
    layering,
    recursion,
)
from repro.analysis.baseline import (
    BaselineMatch,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.collect import collect_modules
from repro.analysis.model import Finding, LintError, Module

#: name -> check(modules) callable, in report order.
CHECKERS = {
    layering.CHECKER: layering.check,
    determinism.CHECKER: determinism.check,
    recursion.CHECKER: recursion.check,
    forksafety.CHECKER: forksafety.check,
    errorcontract.CHECKER: errorcontract.check,
    codecgen.CHECKER: codecgen.check,
}


def run_lint(paths: Iterable[Union[str, Path]],
             root: Optional[Union[str, Path]] = None,
             checkers: Optional[Iterable[str]] = None) -> list[Finding]:
    """Collect, parse and run the selected checkers over ``paths``.

    ``root`` anchors the repo-relative paths findings report (defaults
    to the current directory).  Unknown checker names raise
    :class:`LintError`; parse failures come back as findings, never
    exceptions.
    """
    selected = list(CHECKERS) if checkers is None else list(checkers)
    unknown = [name for name in selected if name not in CHECKERS]
    if unknown:
        raise LintError(
            f"unknown checker(s) {', '.join(sorted(unknown))}; "
            f"available: {', '.join(CHECKERS)}")
    root_path = Path(root) if root is not None else None
    modules, findings = collect_modules(paths, root=root_path)
    for name in selected:
        findings.extend(CHECKERS[name](modules))
    return sorted(findings, key=Finding.sort_key)


def render_text(findings: list[Finding],
                match: Optional[BaselineMatch] = None) -> str:
    """Human-readable report (what the CLI prints without ``--json``)."""
    lines = []
    new = findings if match is None else match.new
    for finding in new:
        lines.append(finding.render())
    if match is not None:
        if match.baselined:
            lines.append(f"# {len(match.baselined)} baselined "
                         "finding(s) suppressed")
        for key in match.stale:
            lines.append(f"# stale baseline entry (expire it): {key}")
    if not new:
        lines.append("# lint clean"
                     if match is None or not match.baselined
                     else "# lint clean (baseline applied)")
    return "\n".join(lines)


def render_json(findings: list[Finding],
                match: Optional[BaselineMatch] = None) -> str:
    new = findings if match is None else match.new
    payload = {
        "findings": [finding.to_dict() for finding in new],
        "baselined": 0 if match is None else len(match.baselined),
        "stale": [] if match is None else match.stale,
    }
    return json.dumps(payload, indent=2)


__all__ = [
    "BaselineMatch",
    "CHECKERS",
    "Finding",
    "LintError",
    "Module",
    "apply_baseline",
    "collect_modules",
    "load_baseline",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
