"""Shared vocabulary of the static-analysis pass.

A :class:`Finding` is one violated invariant, attributed to a file and
line and carrying a stable :attr:`~Finding.key` (line-number-free, so
baselines survive unrelated edits).  A :class:`Module` is one parsed
source file: its AST, raw lines and the ``# lint:`` marker comments
the checkers consult.

Markers are the in-code allowlist.  ``# lint: allow-<rule>`` on a
flagged line (or the line directly above it, or the ``def``/``class``
line of any enclosing definition) silences that rule there — the
justification lives next to the code it excuses, not in linter
config.  ``# lint: <plane>-plane`` at module level opts a new file
into a plane-scoped checker (determinism, recursion, fork safety)
without touching the checker's built-in module list.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional


class LintError(ValueError):
    """Unusable linter input (bad path, malformed baseline file)."""


#: ``# lint: allow-recursion`` / ``# lint: determinism-plane`` …
_MARKER_RE = re.compile(r"#\s*lint:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")


@dataclass(frozen=True)
class Finding:
    """One invariant violation.

    ``checker`` is the pass that produced it (``layering``, …),
    ``code`` the specific rule (``layering/plane-imports-engine``).
    ``key`` deliberately omits the line number: a baseline entry keeps
    matching while unrelated edits move the finding around the file.
    """

    checker: str
    code: str
    path: str
    line: int
    message: str

    @property
    def key(self) -> str:
        return f"{self.path}::{self.code}::{self.message}"

    def to_dict(self) -> dict:
        return {"checker": self.checker, "code": self.code,
                "path": self.path, "line": self.line,
                "message": self.message, "key": self.key}

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.code}] {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.code, self.message)


@dataclass
class Module:
    """One parsed source file, ready for the checkers."""

    path: Path                     #: absolute path on disk
    rel: str                       #: path as reported in findings
    name: Optional[str]            #: dotted module name (``repro.core.…``)
                                   #: when the file sits in the package
    source: str
    tree: Optional[ast.AST]        #: ``None`` when the file failed to parse
    lines: list[str] = field(default_factory=list)
    #: line number -> marker names on that line
    markers: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, rel: str, name: Optional[str],
              source: str) -> "Module":
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError:
            tree = None
        lines = source.splitlines()
        # Markers come from real COMMENT tokens only — a docstring that
        # *mentions* "# lint: recursion-plane" must not opt the module
        # into a plane.
        markers: dict[int, set[str]] = {}
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _MARKER_RE.search(token.string)
                if match:
                    names = {part.strip()
                             for part in match.group(1).split(",")}
                    markers.setdefault(token.start[0],
                                       set()).update(names)
        except tokenize.TokenError:
            pass  # unparseable tail: the ast parse reports it
        return cls(path=path, rel=rel, name=name, source=source,
                   tree=tree, lines=lines, markers=markers)

    # -- marker queries ------------------------------------------------------
    def marker_at(self, lineno: int, marker: str) -> bool:
        """Marker on the line itself or the line directly above."""
        return (marker in self.markers.get(lineno, ()) or
                marker in self.markers.get(lineno - 1, ()))

    def has_module_marker(self, marker: str) -> bool:
        return any(marker in names for names in self.markers.values())

    def allowed(self, node: ast.AST, rule: str,
                enclosing: Optional[list[ast.AST]] = None) -> bool:
        """Is ``allow-<rule>`` in effect for ``node``?

        Checks the node's own line (and the one above), plus the
        ``def``/``class`` header line of every enclosing definition
        the caller tracked — a function-level marker excuses the whole
        body, nested helpers included.
        """
        marker = f"allow-{rule}"
        # A whole file can opt out of one rule (e.g. the raw parser's
        # own unit tests live outside the frontend boundary by nature):
        # `# lint: allow-<rule>-module` anywhere in the file.
        if self.has_module_marker(marker + "-module"):
            return True
        lineno = getattr(node, "lineno", None)
        if lineno is not None and self.marker_at(lineno, marker):
            return True
        for scope in enclosing or ():
            scope_line = getattr(scope, "lineno", None)
            if scope_line is not None and self.marker_at(scope_line, marker):
                return True
        return False

    def top_package(self) -> Optional[str]:
        """``repro.core.instmap`` -> ``core`` (``None`` outside repro)."""
        if not self.name or not self.name.startswith("repro."):
            return None
        parts = self.name.split(".")
        return parts[1] if len(parts) > 1 else None
