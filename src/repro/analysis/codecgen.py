"""Checker 6 — codec generation determinism: byte-identical source.

Generated codec modules are cached in the artifact store keyed by
(schema fingerprints, embedding fingerprint): a cache *hit* must hand
back exactly what a fresh generation would produce, or warm-started
processes and cold ones serve different code for the same embedding.
That makes the generator's output a byte contract — no dict-ordering
drift, no gensym counters that depend on generation history, no
environment leakage.

The AST checkers in :mod:`repro.analysis.determinism` catch the usual
*sources* of drift; this checker closes the loop behaviourally: when
the lint run covers ``repro.engine.codegen`` it generates the codec
for a fixture embedding twice — through two independent ``InstMap``
instances, so no shared memo can mask order dependence — and reports a
finding unless the two sources are byte-identical (and non-empty).

There is no ``allow-`` escape hatch: a nondeterministic generator is
never justified.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.model import Finding, Module

CHECKER = "codecgen"

TARGET_MODULE = "repro.engine.codegen"


def _generate_twice() -> tuple[Optional[str], Optional[str], Optional[str]]:
    """(first, second, error) — sources from two independent InstMaps."""
    # Lazy imports: the checker only pays (and only needs the runtime
    # modules importable) when the lint run actually covers codegen.
    from repro.core.instmap import InstMap
    from repro.engine.codegen import generate_codec_source
    from repro.workloads.library import school_example

    try:
        bundle = school_example()
        kwargs = dict(
            source_fingerprint=bundle.classes.fingerprint(),
            target_fingerprint=bundle.school.fingerprint(),
            embedding_fingerprint=bundle.sigma1.fingerprint())
        first = generate_codec_source(InstMap(bundle.sigma1), **kwargs)
        second = generate_codec_source(InstMap(bundle.sigma1), **kwargs)
    except Exception as exc:  # a broken generator is a finding, not a crash
        return None, None, f"{type(exc).__name__}: {exc}"
    return first, second, None


def check(modules: list[Module]) -> Iterator[Finding]:
    module = next((m for m in modules if m.name == TARGET_MODULE), None)
    if module is None:
        return
    first, second, error = _generate_twice()
    if error is not None:
        yield Finding(
            checker=CHECKER, code="codecgen/generation-failed",
            path=module.rel, line=1,
            message=("could not generate the fixture codec to verify "
                     f"determinism: {error}"))
        return
    if not first:
        yield Finding(
            checker=CHECKER, code="codecgen/empty-source",
            path=module.rel, line=1,
            message="generated codec source is empty")
        return
    if first != second:
        diverge = next((i for i, (a, b) in enumerate(
            zip(first.splitlines(), second.splitlines())) if a != b),
            min(len(first.splitlines()), len(second.splitlines())))
        yield Finding(
            checker=CHECKER, code="codecgen/source-drift",
            path=module.rel, line=1,
            message=("two generations of the same embedding's codec "
                     "differ (first divergence at generated line "
                     f"{diverge + 1}); store cache hits would serve "
                     "different code than a fresh generation"))
