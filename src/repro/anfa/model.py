"""The ANFA data model (Section 4.4, with refinement R6).

An ANFA ``M = (K, Σ, δ, s, F, θ)`` has

* **label transitions** — move from a node to a child with the given
  tag; an optional local position selects the k-th same-labelled child
  (this encodes the ``position()`` qualifiers of XR *paths*);
* **ε transitions** — stay on the current node;
* **str transitions** — move to the string values of text children;
* **call transitions** (refinement R6) — evaluate a sub-ANFA at the
  current node and continue from each result, filtered by a
  per-label-qualifier with access to the result's *list position*.
  This realises the translation of source qualifiers containing
  ``position()`` where the paper's flat θ annotation is not precise
  enough, and is exactly the "mild augmentation" the paper's automaton
  framework allows;
* **θ annotations** — a boolean qualifier attached to a state; a run
  entering the state at node ``v`` survives only if the qualifier holds
  at ``v``.  Atoms reference sub-ANFAs (the paper's ν naming of
  sub-automata is realised by direct object references; see
  :meth:`ANFA.nu` for the named view).

Final states carry a *lab* — the source element type reached
(``lab(f, M, A)`` in the paper), used by the schema-directed
translation to pick the continuation context.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, NamedTuple, Optional, Union

#: lab value for text results.
STR_LAB = "#str"


# -- qualifier expressions ------------------------------------------------

class QualExpr:
    """Boolean qualifier tree attached to states / call filters."""

    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class QualTrue(QualExpr):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class QualFalse(QualExpr):
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class QualAtomExists(QualExpr):
    """``[p]`` — the sub-automaton has a non-empty result."""

    sub: "ANFA"

    def size(self) -> int:
        return 1 + self.sub.size()

    def __str__(self) -> str:
        return f"exists({self.sub.name})"


@dataclass(frozen=True)
class QualAtomText(QualExpr):
    """``[p/text() = 'c']`` — the sub-automaton (ending in str
    transitions) produces the string ``value``."""

    sub: "ANFA"
    value: str

    def size(self) -> int:
        return 1 + self.sub.size()

    def __str__(self) -> str:
        return f"text({self.sub.name})='{self.value}'"


@dataclass(frozen=True)
class QualAtomPos(QualExpr):
    """``position() = k`` w.r.t. the enclosing call's result list."""

    k: int

    def __str__(self) -> str:
        return f"position()={self.k}"


@dataclass(frozen=True)
class QualNot(QualExpr):
    inner: QualExpr

    def size(self) -> int:
        return 1 + self.inner.size()

    def __str__(self) -> str:
        return f"not({self.inner})"


@dataclass(frozen=True)
class QualAnd(QualExpr):
    left: QualExpr
    right: QualExpr

    def size(self) -> int:
        return 1 + self.left.size() + self.right.size()

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class QualOr(QualExpr):
    left: QualExpr
    right: QualExpr

    def size(self) -> int:
        return 1 + self.left.size() + self.right.size()

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


def qual_and(left: QualExpr, right: QualExpr) -> QualExpr:
    if isinstance(left, QualTrue):
        return right
    if isinstance(right, QualTrue):
        return left
    return QualAnd(left, right)


def qual_or(left: QualExpr, right: QualExpr) -> QualExpr:
    if isinstance(left, QualFalse):
        return right
    if isinstance(right, QualFalse):
        return left
    return QualOr(left, right)


def qual_not(inner: QualExpr) -> QualExpr:
    if isinstance(inner, QualTrue):
        return QualFalse()
    if isinstance(inner, QualFalse):
        return QualTrue()
    return QualNot(inner)


def qual_has_position(qual: QualExpr) -> bool:
    if isinstance(qual, QualAtomPos):
        return True
    if isinstance(qual, (QualAnd, QualOr)):
        return qual_has_position(qual.left) or qual_has_position(qual.right)
    if isinstance(qual, QualNot):
        return qual_has_position(qual.inner)
    return False


# -- transitions -------------------------------------------------------------
# NamedTuples, not dataclasses: the translation constructions (embed /
# trim) re-create label edges in bulk, and tuple construction is
# measurably cheaper than frozen-dataclass __init__ on that hot path.

class LabelEdge(NamedTuple):
    label: str
    pos: Optional[int]  # local: k-th same-labelled child
    dst: int


class EpsEdge(NamedTuple):
    dst: int


class StrEdge(NamedTuple):
    dst: int


@dataclass(frozen=True)
class CallSpec:
    """A call transition: run ``sub`` at the current node; for each
    result with lab ``L`` at list position ``i``, continue at
    ``dst_by_lab[L]`` provided ``quals[L]`` holds for ``(item, i)``."""

    sub: "ANFA"
    quals: tuple[tuple[Optional[str], QualExpr], ...]
    dst_by_lab: tuple[tuple[Optional[str], int], ...]

    def qual_for(self, lab: Optional[str]) -> QualExpr:
        for key, qual in self.quals:
            if key == lab:
                return qual
        return QualTrue()

    def dst_for(self, lab: Optional[str]) -> Optional[int]:
        for key, dst in self.dst_by_lab:
            if key == lab:
                return dst
        return None


Edge = Union[LabelEdge, EpsEdge, StrEdge, CallSpec]


class _OffsetMap:
    """The state map returned by :meth:`ANFA.embed`: embedded states
    are renumbered by a constant offset, so the "dict" is arithmetic."""

    __slots__ = ("base", "count")

    def __init__(self, base: int, count: int) -> None:
        self.base = base
        self.count = count

    def __getitem__(self, state: int) -> int:
        if 0 <= state < self.count:
            return state + self.base
        raise KeyError(state)

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.count))


_anfa_names = itertools.count(1)


class ANFA:
    """A mutable ANFA, built by the construction/translation code.

    States are integers local to the automaton.  ``embed`` copies
    another automaton's states into this one (used by the union /
    concatenation / Kleene-star constructions and by the
    schema-directed translation, which stitches per-type copies
    together with ε transitions).
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self._name = name
        self._count = 1  # state 0 is the start state
        self.start = 0
        self.finals: dict[int, Optional[str]] = {}
        self.label_edges: dict[int, list[LabelEdge]] = {}
        self.eps_edges: dict[int, list[int]] = {}
        self.str_edges: dict[int, list[int]] = {}
        self.call_edges: dict[int, list[CallSpec]] = {}
        self.theta: dict[int, QualExpr] = {}
        #: Construction-time trimness certificate: builders that can
        #: prove every state is reachable *and* co-reachable set this,
        #: letting :meth:`trim` skip its sweeps.  Conservative: False
        #: merely means "unknown".  Mutating an automaton after setting
        #: it is the builder's responsibility (the translation sets it
        #: as the last construction step).
        self._is_trim = False

    @property
    def name(self) -> str:
        """The ν name (``M13``): generated on first use — translation
        creates thousands of intermediate automata that are never
        rendered, so the serial/format cost is deferred."""
        if self._name is None:
            self._name = f"M{next(_anfa_names)}"
        return self._name

    # -- construction ------------------------------------------------------
    def new_state(self) -> int:
        state = self._count
        self._count += 1
        return state

    def add_label(self, src: int, label: str, dst: int,
                  pos: Optional[int] = None) -> None:
        self.label_edges.setdefault(src, []).append(LabelEdge(label, pos, dst))

    def add_eps(self, src: int, dst: int) -> None:
        self.eps_edges.setdefault(src, []).append(dst)

    def add_str(self, src: int, dst: int) -> None:
        self.str_edges.setdefault(src, []).append(dst)

    def add_call(self, src: int, spec: CallSpec) -> None:
        self.call_edges.setdefault(src, []).append(spec)

    def set_final(self, state: int, lab: Optional[str]) -> None:
        self.finals[state] = lab

    def clear_final(self, state: int) -> None:
        self.finals.pop(state, None)

    def annotate(self, state: int, qual: QualExpr) -> None:
        existing = self.theta.get(state)
        self.theta[state] = qual if existing is None else qual_and(existing,
                                                                   qual)

    def embed(self, other: "ANFA") -> "_OffsetMap":
        """Append ``other``'s states and transitions; return the
        offset map.

        There is no per-state dict remap anywhere here: ``other``'s
        state ``s`` becomes ``s + base`` where ``base`` is this
        automaton's pre-embed state count, so the returned
        :class:`_OffsetMap` is pure arithmetic and every bucket below
        (including the ``CallSpec`` destination tuples) is rebuilt by
        adding the same constant offset.

        Finals and θ are copied; the caller decides how to wire the
        start state and whether to keep the copied finals.  Sub-ANFAs
        inside θ / call specs are shared by reference (they are never
        mutated after construction).
        """
        base = self._count
        if __debug__:
            # The offset range [base, base + other._count) must be
            # fresh: self-embedding (or a corrupted count) would remap
            # states onto existing ones and silently merge buckets.
            assert other is not self and other._count > 0, \
                "embed needs a distinct, non-empty operand"
            assert all(0 <= src < other._count
                       for edges in (other.label_edges, other.eps_edges,
                                     other.str_edges, other.call_edges)
                       for src in edges), \
                "embed operand has states outside [0, count): offset " \
                "keys would collide with existing buckets"
        self._count = base + other._count
        # Offset states are fresh keys by construction, so every bucket
        # is rebuilt wholesale (no setdefault/append churn); singleton
        # buckets — the overwhelming case for chain-shaped automata —
        # skip the comprehension frame, and tuple.__new__ skips the
        # namedtuple's Python-level __new__.
        tuple_new = tuple.__new__
        label_edges = self.label_edges
        for src, edges in other.label_edges.items():
            if len(edges) == 1:
                label, pos, dst = edges[0]
                label_edges[src + base] = [
                    tuple_new(LabelEdge, (label, pos, dst + base))]
            else:
                label_edges[src + base] = [
                    tuple_new(LabelEdge, (label, pos, dst + base))
                    for label, pos, dst in edges]
        eps_edges = self.eps_edges
        for src, dsts in other.eps_edges.items():
            if len(dsts) == 1:
                eps_edges[src + base] = [dsts[0] + base]
            else:
                eps_edges[src + base] = [dst + base for dst in dsts]
        str_edges = self.str_edges
        for src, dsts in other.str_edges.items():
            if len(dsts) == 1:
                str_edges[src + base] = [dsts[0] + base]
            else:
                str_edges[src + base] = [dst + base for dst in dsts]
        call_edges = self.call_edges
        for src, specs in other.call_edges.items():
            call_edges[src + base] = [
                CallSpec(sub=spec.sub, quals=spec.quals,
                         dst_by_lab=tuple((lab, dst + base)
                                          for lab, dst in spec.dst_by_lab))
                for spec in specs]
        finals = self.finals
        for state, lab in other.finals.items():
            finals[state + base] = lab
        theta = self.theta
        for state, qual in other.theta.items():
            theta[state + base] = qual
        return _OffsetMap(base, other._count)

    def copy(self) -> "ANFA":
        """An independent structural copy with identical state numbers.

        Cached translations (the engine's ANFA LRU) are shared between
        callers and must be treated as immutable; copy first if you
        need to mutate one.  Sub-ANFAs inside θ / call specs stay
        shared by reference, matching :meth:`embed`'s contract.
        """
        out = ANFA.__new__(ANFA)
        out._name = self._name
        out._count = self._count
        out.start = self.start
        out.finals = dict(self.finals)
        out.label_edges = {s: list(v) for s, v in self.label_edges.items()}
        out.eps_edges = {s: list(v) for s, v in self.eps_edges.items()}
        out.str_edges = {s: list(v) for s, v in self.str_edges.items()}
        out.call_edges = {s: list(v) for s, v in self.call_edges.items()}
        out.theta = dict(self.theta)
        out._is_trim = self._is_trim
        return out

    # -- views ----------------------------------------------------------------
    def states(self) -> range:
        return range(self._count)

    def is_fail(self) -> bool:
        """No final states — the ``Fail`` automaton of Section 4.4."""
        return not self.finals

    def final_labs(self) -> set[Optional[str]]:
        return set(self.finals.values())

    def out_edges(self, state: int) -> Iterator[Edge]:
        for edge in self.label_edges.get(state, []):
            yield edge
        for dst in self.eps_edges.get(state, []):
            yield EpsEdge(dst)
        for dst in self.str_edges.get(state, []):
            yield StrEdge(dst)
        for spec in self.call_edges.get(state, []):
            yield spec

    def edge_count(self) -> int:
        return (sum(len(v) for v in self.label_edges.values())
                + sum(len(v) for v in self.eps_edges.values())
                + sum(len(v) for v in self.str_edges.values())
                + sum(len(v) for v in self.call_edges.values()))

    def size(self) -> int:
        """States + transitions + annotation sizes (|Tr(Q)| in Thm 4.3)."""
        total = self._count + self.edge_count()
        for qual in self.theta.values():
            total += qual.size()
        for specs in self.call_edges.values():
            for spec in specs:
                total += spec.sub.size()
                for _lab, qual in spec.quals:
                    total += qual.size()
        return total

    def nu(self) -> dict[str, "ANFA"]:
        """The ν view: sub-automata referenced by θ / call transitions,
        keyed by their generated names (the paper's ``X_i ↦ M_i``)."""
        out: dict[str, ANFA] = {}

        def visit_qual(qual: QualExpr) -> None:
            if isinstance(qual, (QualAtomExists, QualAtomText)):
                if qual.sub.name not in out:
                    out[qual.sub.name] = qual.sub
                    visit(qual.sub)
            elif isinstance(qual, (QualAnd, QualOr)):
                visit_qual(qual.left)
                visit_qual(qual.right)
            elif isinstance(qual, QualNot):
                visit_qual(qual.inner)

        def visit(anfa: "ANFA") -> None:
            for qual in anfa.theta.values():
                visit_qual(qual)
            for specs in anfa.call_edges.values():
                for spec in specs:
                    if spec.sub.name not in out:
                        out[spec.sub.name] = spec.sub
                        visit(spec.sub)
                    for _lab, qual in spec.quals:
                        visit_qual(qual)

        visit(self)
        return out

    # -- trimming ----------------------------------------------------------------
    def trim(self) -> "ANFA":
        """Remove states that cannot reach a final state (the paper's
        "standard useless state removal"), keeping reachable-from-start
        states only.

        An automaton that is already trim is returned *as is* (treat
        trim results as immutable, exactly like the engine's shared LRU
        translations); only an automaton with useless states is rebuilt.
        Most translated automata carry a construction-time trimness
        certificate and skip the reachability sweeps entirely; for the
        rest, both sweeps consume the sparse edge dicts directly (the
        ``out_edges`` view allocates an ε/str wrapper per edge, and a
        per-state adjacency pass touches every edgeless state; both
        dominated translation time).
        """
        if self._is_trim:
            return self
        label_edges = self.label_edges
        eps_edges = self.eps_edges
        str_edges = self.str_edges
        call_edges = self.call_edges
        count = self._count

        # States are dense ints: flag membership with bytearrays and
        # index the reverse adjacency as a list (no hashing per edge).
        in_forward = bytearray(count)
        forward_size = 0
        reverse: list = [None] * count
        stack = [self.start]
        while stack:
            state = stack.pop()
            if in_forward[state]:
                continue
            in_forward[state] = 1
            forward_size += 1
            edges = label_edges.get(state)
            if edges:
                for edge in edges:
                    dst = edge[2]
                    bucket = reverse[dst]
                    if bucket is None:
                        reverse[dst] = [state]
                    else:
                        bucket.append(state)
                    if not in_forward[dst]:
                        stack.append(dst)
            dsts = eps_edges.get(state)
            if dsts:
                for dst in dsts:
                    bucket = reverse[dst]
                    if bucket is None:
                        reverse[dst] = [state]
                    else:
                        bucket.append(state)
                    if not in_forward[dst]:
                        stack.append(dst)
            dsts = str_edges.get(state)
            if dsts:
                for dst in dsts:
                    bucket = reverse[dst]
                    if bucket is None:
                        reverse[dst] = [state]
                    else:
                        bucket.append(state)
                    if not in_forward[dst]:
                        stack.append(dst)
            specs = call_edges.get(state)
            if specs:
                for spec in specs:
                    for _lab, dst in spec.dst_by_lab:
                        bucket = reverse[dst]
                        if bucket is None:
                            reverse[dst] = [state]
                        else:
                            bucket.append(state)
                        if not in_forward[dst]:
                            stack.append(dst)

        in_backward = bytearray(count)
        backward_size = 0
        stack = [f for f in self.finals if in_forward[f]]
        while stack:
            state = stack.pop()
            if in_backward[state]:
                continue
            in_backward[state] = 1
            backward_size += 1
            bucket = reverse[state]
            if bucket:
                stack.extend(bucket)

        if backward_size == count:
            # Nothing useless: the rebuild below would renumber states
            # identically (ascending keep order from start=0), so the
            # automaton is its own trim — record the certificate.
            self._is_trim = True
            return self

        keep = {state for state in range(count)
                if in_forward[state] and in_backward[state]}
        keep.add(self.start)

        trimmed = ANFA(name=self._name)
        mapping: dict[int, int] = {self.start: trimmed.start}
        for state in sorted(keep):
            if state not in mapping:
                mapping[state] = trimmed.new_state()
        for src in keep:
            mapped_src = mapping[src]
            edges = self.label_edges.get(src)
            if edges:
                kept = [tuple.__new__(LabelEdge,
                                      (edge[0], edge[1], mapping[edge[2]]))
                        for edge in edges if edge[2] in keep]
                if kept:
                    trimmed.label_edges[mapped_src] = kept
            dsts = self.eps_edges.get(src)
            if dsts:
                kept_eps = [mapping[dst] for dst in dsts if dst in keep]
                if kept_eps:
                    trimmed.eps_edges[mapped_src] = kept_eps
            dsts = self.str_edges.get(src)
            if dsts:
                kept_str = [mapping[dst] for dst in dsts if dst in keep]
                if kept_str:
                    trimmed.str_edges[mapped_src] = kept_str
            specs = self.call_edges.get(src)
            if specs:
                for spec in specs:
                    kept_dsts = tuple((lab, mapping[dst])
                                      for lab, dst in spec.dst_by_lab
                                      if dst in keep)
                    if kept_dsts:
                        trimmed.add_call(mapped_src, CallSpec(
                            spec.sub, spec.quals, kept_dsts))
        for state, lab in self.finals.items():
            if state in keep:
                trimmed.finals[mapping[state]] = lab
        for state, qual in self.theta.items():
            if state in keep:
                trimmed.theta[mapping[state]] = qual
        trimmed._is_trim = True
        return trimmed

    def describe(self) -> str:
        """A readable dump used in docs/tests."""
        return self._render(None)

    # id() keys the identity->name map only; the M0/M1/… names come
    # from discovery order and no id value ever reaches the rendering.
    # lint: allow-id
    def canonical_describe(self) -> str:
        """A deterministic rendering for cross-process comparison.

        ``describe()`` names automata by a process-global serial
        (``M13``), so equal translations built in different engines or
        processes render differently.  Here the automaton is ``M0`` and
        sub-automata are renamed ``M1``, ``M2``, … in discovery order
        (θ qualifiers first, then call transitions, by state number),
        and each sub-automaton's body is appended — equal translations
        render byte-identically everywhere, which is the serving
        layer's response contract.

        The rendering is memoised on the instance: servers call this
        per request on LRU-cached (hence immutable — see
        :meth:`copy`) translations, and the full rename walk would
        otherwise dominate a cache-hit response.
        """
        cached = getattr(self, "_canonical_cache", None)
        if cached is not None:
            return cached
        names: dict[int, str] = {id(self): "M0"}
        order: list[ANFA] = []

        def visit_qual(qual: QualExpr) -> None:
            if isinstance(qual, (QualAtomExists, QualAtomText)):
                if id(qual.sub) not in names:
                    names[id(qual.sub)] = f"M{len(names)}"
                    order.append(qual.sub)
                    visit(qual.sub)
            elif isinstance(qual, (QualAnd, QualOr)):
                visit_qual(qual.left)
                visit_qual(qual.right)
            elif isinstance(qual, QualNot):
                visit_qual(qual.inner)

        def visit(anfa: "ANFA") -> None:
            for state in anfa.states():
                qual = anfa.theta.get(state)
                if qual is not None:
                    visit_qual(qual)
            for state in anfa.states():
                for spec in anfa.call_edges.get(state, []):
                    if id(spec.sub) not in names:
                        names[id(spec.sub)] = f"M{len(names)}"
                        order.append(spec.sub)
                        visit(spec.sub)
                    for _lab, qual in spec.quals:
                        visit_qual(qual)

        visit(self)
        text = "\n\n".join(anfa._render(names)
                           for anfa in [self] + order)
        self._canonical_cache = text
        return text

    # Identity lookups into the canonical name map; see
    # canonical_describe.
    # lint: allow-id
    def _render(self, names: Optional[dict[int, str]]) -> str:
        def name_of(anfa: "ANFA") -> str:
            if names is None:
                return anfa.name
            return names.get(id(anfa), anfa.name)

        def qual_str(qual: QualExpr) -> str:
            if names is None:
                return str(qual)
            if isinstance(qual, QualAtomExists):
                return f"exists({name_of(qual.sub)})"
            if isinstance(qual, QualAtomText):
                return f"text({name_of(qual.sub)})='{qual.value}'"
            if isinstance(qual, QualAnd):
                return f"({qual_str(qual.left)} and {qual_str(qual.right)})"
            if isinstance(qual, QualOr):
                return f"({qual_str(qual.left)} or {qual_str(qual.right)})"
            if isinstance(qual, QualNot):
                return f"not({qual_str(qual.inner)})"
            return str(qual)

        lines = [f"ANFA {name_of(self)}: start={self.start}, "
                 f"finals={self.finals}"]
        for state in self.states():
            for edge in self.out_edges(state):
                if isinstance(edge, LabelEdge):
                    pos = f"[{edge.pos}]" if edge.pos else ""
                    lines.append(f"  {state} --{edge.label}{pos}--> {edge.dst}")
                elif isinstance(edge, EpsEdge):
                    lines.append(f"  {state} --eps--> {edge.dst}")
                elif isinstance(edge, StrEdge):
                    lines.append(f"  {state} --str--> {edge.dst}")
                else:
                    lines.append(
                        f"  {state} --call({name_of(edge.sub)})--> "
                        f"{dict(edge.dst_by_lab)}")
        for state, qual in self.theta.items():
            lines.append(f"  theta({state}) = {qual_str(qual)}")
        return "\n".join(lines)


def fail_anfa() -> ANFA:
    """The ``Fail`` automaton: a start state, no transitions, no finals."""
    anfa = ANFA(name="Fail")
    # Its trim is itself (one state, kept as the start).
    anfa._is_trim = True
    return anfa
