"""The ANFA data model (Section 4.4, with refinement R6).

An ANFA ``M = (K, Σ, δ, s, F, θ)`` has

* **label transitions** — move from a node to a child with the given
  tag; an optional local position selects the k-th same-labelled child
  (this encodes the ``position()`` qualifiers of XR *paths*);
* **ε transitions** — stay on the current node;
* **str transitions** — move to the string values of text children;
* **call transitions** (refinement R6) — evaluate a sub-ANFA at the
  current node and continue from each result, filtered by a
  per-label-qualifier with access to the result's *list position*.
  This realises the translation of source qualifiers containing
  ``position()`` where the paper's flat θ annotation is not precise
  enough, and is exactly the "mild augmentation" the paper's automaton
  framework allows;
* **θ annotations** — a boolean qualifier attached to a state; a run
  entering the state at node ``v`` survives only if the qualifier holds
  at ``v``.  Atoms reference sub-ANFAs (the paper's ν naming of
  sub-automata is realised by direct object references; see
  :meth:`ANFA.nu` for the named view).

Final states carry a *lab* — the source element type reached
(``lab(f, M, A)`` in the paper), used by the schema-directed
translation to pick the continuation context.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Union

#: lab value for text results.
STR_LAB = "#str"


# -- qualifier expressions ------------------------------------------------

class QualExpr:
    """Boolean qualifier tree attached to states / call filters."""

    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class QualTrue(QualExpr):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class QualFalse(QualExpr):
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class QualAtomExists(QualExpr):
    """``[p]`` — the sub-automaton has a non-empty result."""

    sub: "ANFA"

    def size(self) -> int:
        return 1 + self.sub.size()

    def __str__(self) -> str:
        return f"exists({self.sub.name})"


@dataclass(frozen=True)
class QualAtomText(QualExpr):
    """``[p/text() = 'c']`` — the sub-automaton (ending in str
    transitions) produces the string ``value``."""

    sub: "ANFA"
    value: str

    def size(self) -> int:
        return 1 + self.sub.size()

    def __str__(self) -> str:
        return f"text({self.sub.name})='{self.value}'"


@dataclass(frozen=True)
class QualAtomPos(QualExpr):
    """``position() = k`` w.r.t. the enclosing call's result list."""

    k: int

    def __str__(self) -> str:
        return f"position()={self.k}"


@dataclass(frozen=True)
class QualNot(QualExpr):
    inner: QualExpr

    def size(self) -> int:
        return 1 + self.inner.size()

    def __str__(self) -> str:
        return f"not({self.inner})"


@dataclass(frozen=True)
class QualAnd(QualExpr):
    left: QualExpr
    right: QualExpr

    def size(self) -> int:
        return 1 + self.left.size() + self.right.size()

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class QualOr(QualExpr):
    left: QualExpr
    right: QualExpr

    def size(self) -> int:
        return 1 + self.left.size() + self.right.size()

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


def qual_and(left: QualExpr, right: QualExpr) -> QualExpr:
    if isinstance(left, QualTrue):
        return right
    if isinstance(right, QualTrue):
        return left
    return QualAnd(left, right)


def qual_or(left: QualExpr, right: QualExpr) -> QualExpr:
    if isinstance(left, QualFalse):
        return right
    if isinstance(right, QualFalse):
        return left
    return QualOr(left, right)


def qual_not(inner: QualExpr) -> QualExpr:
    if isinstance(inner, QualTrue):
        return QualFalse()
    if isinstance(inner, QualFalse):
        return QualTrue()
    return QualNot(inner)


def qual_has_position(qual: QualExpr) -> bool:
    if isinstance(qual, QualAtomPos):
        return True
    if isinstance(qual, (QualAnd, QualOr)):
        return qual_has_position(qual.left) or qual_has_position(qual.right)
    if isinstance(qual, QualNot):
        return qual_has_position(qual.inner)
    return False


# -- transitions -------------------------------------------------------------

@dataclass(frozen=True)
class LabelEdge:
    label: str
    pos: Optional[int]  # local: k-th same-labelled child
    dst: int


@dataclass(frozen=True)
class EpsEdge:
    dst: int


@dataclass(frozen=True)
class StrEdge:
    dst: int


@dataclass(frozen=True)
class CallSpec:
    """A call transition: run ``sub`` at the current node; for each
    result with lab ``L`` at list position ``i``, continue at
    ``dst_by_lab[L]`` provided ``quals[L]`` holds for ``(item, i)``."""

    sub: "ANFA"
    quals: tuple[tuple[Optional[str], QualExpr], ...]
    dst_by_lab: tuple[tuple[Optional[str], int], ...]

    def qual_for(self, lab: Optional[str]) -> QualExpr:
        for key, qual in self.quals:
            if key == lab:
                return qual
        return QualTrue()

    def dst_for(self, lab: Optional[str]) -> Optional[int]:
        for key, dst in self.dst_by_lab:
            if key == lab:
                return dst
        return None


Edge = Union[LabelEdge, EpsEdge, StrEdge, CallSpec]

_anfa_names = itertools.count(1)


class ANFA:
    """A mutable ANFA, built by the construction/translation code.

    States are integers local to the automaton.  ``embed`` copies
    another automaton's states into this one (used by the union /
    concatenation / Kleene-star constructions and by the
    schema-directed translation, which stitches per-type copies
    together with ε transitions).
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or f"M{next(_anfa_names)}"
        self._count = 0
        self.start = self.new_state()
        self.finals: dict[int, Optional[str]] = {}
        self.label_edges: dict[int, list[LabelEdge]] = {}
        self.eps_edges: dict[int, list[int]] = {}
        self.str_edges: dict[int, list[int]] = {}
        self.call_edges: dict[int, list[CallSpec]] = {}
        self.theta: dict[int, QualExpr] = {}

    # -- construction ------------------------------------------------------
    def new_state(self) -> int:
        state = self._count
        self._count += 1
        return state

    def add_label(self, src: int, label: str, dst: int,
                  pos: Optional[int] = None) -> None:
        self.label_edges.setdefault(src, []).append(LabelEdge(label, pos, dst))

    def add_eps(self, src: int, dst: int) -> None:
        self.eps_edges.setdefault(src, []).append(dst)

    def add_str(self, src: int, dst: int) -> None:
        self.str_edges.setdefault(src, []).append(dst)

    def add_call(self, src: int, spec: CallSpec) -> None:
        self.call_edges.setdefault(src, []).append(spec)

    def set_final(self, state: int, lab: Optional[str]) -> None:
        self.finals[state] = lab

    def clear_final(self, state: int) -> None:
        self.finals.pop(state, None)

    def annotate(self, state: int, qual: QualExpr) -> None:
        existing = self.theta.get(state)
        self.theta[state] = qual if existing is None else qual_and(existing,
                                                                   qual)

    def embed(self, other: "ANFA") -> dict[int, int]:
        """Copy ``other``'s states and transitions; return the state map.

        Finals and θ are copied; the caller decides how to wire the
        start state and whether to keep the copied finals.  Sub-ANFAs
        inside θ / call specs are shared by reference (they are never
        mutated after construction).
        """
        mapping = {state: self.new_state() for state in range(other._count)}
        for src, edges in other.label_edges.items():
            for edge in edges:
                self.add_label(mapping[src], edge.label, mapping[edge.dst],
                               edge.pos)
        for src, dsts in other.eps_edges.items():
            for dst in dsts:
                self.add_eps(mapping[src], mapping[dst])
        for src, dsts in other.str_edges.items():
            for dst in dsts:
                self.add_str(mapping[src], mapping[dst])
        for src, specs in other.call_edges.items():
            for spec in specs:
                remapped = CallSpec(
                    sub=spec.sub,
                    quals=spec.quals,
                    dst_by_lab=tuple((lab, mapping[dst])
                                     for lab, dst in spec.dst_by_lab))
                self.add_call(mapping[src], remapped)
        for state, lab in other.finals.items():
            self.set_final(mapping[state], lab)
        for state, qual in other.theta.items():
            self.theta[mapping[state]] = qual
        return mapping

    def copy(self) -> "ANFA":
        """An independent structural copy with identical state numbers.

        Cached translations (the engine's ANFA LRU) are shared between
        callers and must be treated as immutable; copy first if you
        need to mutate one.  Sub-ANFAs inside θ / call specs stay
        shared by reference, matching :meth:`embed`'s contract.
        """
        out = ANFA.__new__(ANFA)
        out.name = self.name
        out._count = self._count
        out.start = self.start
        out.finals = dict(self.finals)
        out.label_edges = {s: list(v) for s, v in self.label_edges.items()}
        out.eps_edges = {s: list(v) for s, v in self.eps_edges.items()}
        out.str_edges = {s: list(v) for s, v in self.str_edges.items()}
        out.call_edges = {s: list(v) for s, v in self.call_edges.items()}
        out.theta = dict(self.theta)
        return out

    # -- views ----------------------------------------------------------------
    def states(self) -> range:
        return range(self._count)

    def is_fail(self) -> bool:
        """No final states — the ``Fail`` automaton of Section 4.4."""
        return not self.finals

    def final_labs(self) -> set[Optional[str]]:
        return set(self.finals.values())

    def out_edges(self, state: int) -> Iterator[Edge]:
        for edge in self.label_edges.get(state, []):
            yield edge
        for dst in self.eps_edges.get(state, []):
            yield EpsEdge(dst)
        for dst in self.str_edges.get(state, []):
            yield StrEdge(dst)
        for spec in self.call_edges.get(state, []):
            yield spec

    def edge_count(self) -> int:
        return (sum(len(v) for v in self.label_edges.values())
                + sum(len(v) for v in self.eps_edges.values())
                + sum(len(v) for v in self.str_edges.values())
                + sum(len(v) for v in self.call_edges.values()))

    def size(self) -> int:
        """States + transitions + annotation sizes (|Tr(Q)| in Thm 4.3)."""
        total = self._count + self.edge_count()
        for qual in self.theta.values():
            total += qual.size()
        for specs in self.call_edges.values():
            for spec in specs:
                total += spec.sub.size()
                for _lab, qual in spec.quals:
                    total += qual.size()
        return total

    def nu(self) -> dict[str, "ANFA"]:
        """The ν view: sub-automata referenced by θ / call transitions,
        keyed by their generated names (the paper's ``X_i ↦ M_i``)."""
        out: dict[str, ANFA] = {}

        def visit_qual(qual: QualExpr) -> None:
            if isinstance(qual, (QualAtomExists, QualAtomText)):
                if qual.sub.name not in out:
                    out[qual.sub.name] = qual.sub
                    visit(qual.sub)
            elif isinstance(qual, (QualAnd, QualOr)):
                visit_qual(qual.left)
                visit_qual(qual.right)
            elif isinstance(qual, QualNot):
                visit_qual(qual.inner)

        def visit(anfa: "ANFA") -> None:
            for qual in anfa.theta.values():
                visit_qual(qual)
            for specs in anfa.call_edges.values():
                for spec in specs:
                    if spec.sub.name not in out:
                        out[spec.sub.name] = spec.sub
                        visit(spec.sub)
                    for _lab, qual in spec.quals:
                        visit_qual(qual)

        visit(self)
        return out

    # -- trimming ----------------------------------------------------------------
    def trim(self) -> "ANFA":
        """Remove states that cannot reach a final state (the paper's
        "standard useless state removal"), keeping reachable-from-start
        states only.  Returns a fresh automaton."""
        forward: set[int] = set()
        stack = [self.start]
        while stack:
            state = stack.pop()
            if state in forward:
                continue
            forward.add(state)
            for edge in self.out_edges(state):
                if isinstance(edge, LabelEdge):
                    stack.append(edge.dst)
                elif isinstance(edge, (EpsEdge, StrEdge)):
                    stack.append(edge.dst)
                else:
                    stack.extend(dst for _lab, dst in edge.dst_by_lab)

        # Backward reachability from finals over reversed edges.
        reverse: dict[int, set[int]] = {}

        def link(src: int, dst: int) -> None:
            reverse.setdefault(dst, set()).add(src)

        for src in self.states():
            for edge in self.out_edges(src):
                if isinstance(edge, LabelEdge):
                    link(src, edge.dst)
                elif isinstance(edge, (EpsEdge, StrEdge)):
                    link(src, edge.dst)
                else:
                    for _lab, dst in edge.dst_by_lab:
                        link(src, dst)
        backward: set[int] = set()
        stack = [f for f in self.finals if f in forward]
        while stack:
            state = stack.pop()
            if state in backward:
                continue
            backward.add(state)
            stack.extend(reverse.get(state, ()))

        keep = forward & backward
        keep.add(self.start)

        trimmed = ANFA(name=self.name)
        mapping: dict[int, int] = {self.start: trimmed.start}
        for state in sorted(keep):
            if state not in mapping:
                mapping[state] = trimmed.new_state()
        for src in keep:
            for edge in self.out_edges(src):
                if isinstance(edge, LabelEdge) and edge.dst in keep:
                    trimmed.add_label(mapping[src], edge.label,
                                      mapping[edge.dst], edge.pos)
                elif isinstance(edge, EpsEdge) and edge.dst in keep:
                    trimmed.add_eps(mapping[src], mapping[edge.dst])
                elif isinstance(edge, StrEdge) and edge.dst in keep:
                    trimmed.add_str(mapping[src], mapping[edge.dst])
                elif isinstance(edge, CallSpec):
                    kept_dsts = tuple((lab, mapping[dst])
                                      for lab, dst in edge.dst_by_lab
                                      if dst in keep)
                    if kept_dsts:
                        trimmed.add_call(mapping[src], CallSpec(
                            edge.sub, edge.quals, kept_dsts))
        for state, lab in self.finals.items():
            if state in keep:
                trimmed.set_final(mapping[state], lab)
        for state, qual in self.theta.items():
            if state in keep:
                trimmed.theta[mapping[state]] = qual
        return trimmed

    def describe(self) -> str:
        """A readable dump used in docs/tests."""
        return self._render(None)

    def canonical_describe(self) -> str:
        """A deterministic rendering for cross-process comparison.

        ``describe()`` names automata by a process-global serial
        (``M13``), so equal translations built in different engines or
        processes render differently.  Here the automaton is ``M0`` and
        sub-automata are renamed ``M1``, ``M2``, … in discovery order
        (θ qualifiers first, then call transitions, by state number),
        and each sub-automaton's body is appended — equal translations
        render byte-identically everywhere, which is the serving
        layer's response contract.

        The rendering is memoised on the instance: servers call this
        per request on LRU-cached (hence immutable — see
        :meth:`copy`) translations, and the full rename walk would
        otherwise dominate a cache-hit response.
        """
        cached = getattr(self, "_canonical_cache", None)
        if cached is not None:
            return cached
        names: dict[int, str] = {id(self): "M0"}
        order: list[ANFA] = []

        def visit_qual(qual: QualExpr) -> None:
            if isinstance(qual, (QualAtomExists, QualAtomText)):
                if id(qual.sub) not in names:
                    names[id(qual.sub)] = f"M{len(names)}"
                    order.append(qual.sub)
                    visit(qual.sub)
            elif isinstance(qual, (QualAnd, QualOr)):
                visit_qual(qual.left)
                visit_qual(qual.right)
            elif isinstance(qual, QualNot):
                visit_qual(qual.inner)

        def visit(anfa: "ANFA") -> None:
            for state in anfa.states():
                qual = anfa.theta.get(state)
                if qual is not None:
                    visit_qual(qual)
            for state in anfa.states():
                for spec in anfa.call_edges.get(state, []):
                    if id(spec.sub) not in names:
                        names[id(spec.sub)] = f"M{len(names)}"
                        order.append(spec.sub)
                        visit(spec.sub)
                    for _lab, qual in spec.quals:
                        visit_qual(qual)

        visit(self)
        text = "\n\n".join(anfa._render(names)
                           for anfa in [self] + order)
        self._canonical_cache = text
        return text

    def _render(self, names: Optional[dict[int, str]]) -> str:
        def name_of(anfa: "ANFA") -> str:
            if names is None:
                return anfa.name
            return names.get(id(anfa), anfa.name)

        def qual_str(qual: QualExpr) -> str:
            if names is None:
                return str(qual)
            if isinstance(qual, QualAtomExists):
                return f"exists({name_of(qual.sub)})"
            if isinstance(qual, QualAtomText):
                return f"text({name_of(qual.sub)})='{qual.value}'"
            if isinstance(qual, QualAnd):
                return f"({qual_str(qual.left)} and {qual_str(qual.right)})"
            if isinstance(qual, QualOr):
                return f"({qual_str(qual.left)} or {qual_str(qual.right)})"
            if isinstance(qual, QualNot):
                return f"not({qual_str(qual.inner)})"
            return str(qual)

        lines = [f"ANFA {name_of(self)}: start={self.start}, "
                 f"finals={self.finals}"]
        for state in self.states():
            for edge in self.out_edges(state):
                if isinstance(edge, LabelEdge):
                    pos = f"[{edge.pos}]" if edge.pos else ""
                    lines.append(f"  {state} --{edge.label}{pos}--> {edge.dst}")
                elif isinstance(edge, EpsEdge):
                    lines.append(f"  {state} --eps--> {edge.dst}")
                elif isinstance(edge, StrEdge):
                    lines.append(f"  {state} --str--> {edge.dst}")
                else:
                    lines.append(
                        f"  {state} --call({name_of(edge.sub)})--> "
                        f"{dict(edge.dst_by_lab)}")
        for state, qual in self.theta.items():
            lines.append(f"  theta({state}) = {qual_str(qual)}")
        return "\n".join(lines)


def fail_anfa() -> ANFA:
    """The ``Fail`` automaton: a start state, no transitions, no finals."""
    return ANFA(name="Fail")
