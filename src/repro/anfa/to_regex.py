"""State elimination: ANFA → XR expression (Section 4.4).

"the automaton may itself be translated into regular XPath, [but] this
translation subsumes the translation of finite-state automata to
regular expressions, an EXPTIME-complete problem [Ehrenfeucht & Zeiger
1976]" — hence the paper keeps translated queries in automaton form.
This module provides the conversion anyway (useful for inspection and
for round-trip testing on small queries), via the classic GNFA
elimination with XR expressions as edge labels.

θ annotations are folded into incoming edges as ``[q]`` qualifiers;
call transitions become ``p[q]`` sub-expressions recursively.
"""

from __future__ import annotations

from typing import Optional

from repro.anfa.model import (
    ANFA,
    CallSpec,
    QualAnd,
    QualAtomExists,
    QualAtomPos,
    QualAtomText,
    QualExpr,
    QualFalse,
    QualNot,
    QualOr,
    QualTrue,
)
from repro.xpath.ast import (
    EmptyPath,
    Label,
    PathExpr,
    QAnd,
    QNot,
    QOr,
    QPath,
    QPos,
    QText,
    QTrue,
    Qualified,
    Qualifier,
    Seq,
    Star,
    TextStep,
    Union,
)


class RegexConversionError(ValueError):
    """The automaton has no equivalent expression we can build."""


def _seq(left: Optional[PathExpr], right: Optional[PathExpr],
         ) -> Optional[PathExpr]:
    if left is None or right is None:
        return None
    if isinstance(left, EmptyPath):
        return right
    if isinstance(right, EmptyPath):
        return left
    return Seq(left, right)


def _union(left: Optional[PathExpr], right: Optional[PathExpr],
           ) -> Optional[PathExpr]:
    if left is None:
        return right
    if right is None:
        return left
    if left == right:
        return left
    return Union(left, right)


def _star(inner: Optional[PathExpr]) -> Optional[PathExpr]:
    if inner is None or isinstance(inner, EmptyPath):
        return EmptyPath()
    return Star(inner)


def _convert_qual(qual: QualExpr) -> Qualifier:
    if isinstance(qual, QualTrue):
        return QTrue()
    if isinstance(qual, QualFalse):
        return QNot(QTrue())
    if isinstance(qual, QualAtomPos):
        return QPos(qual.k)
    if isinstance(qual, QualAtomExists):
        return QPath(anfa_to_xr(qual.sub))
    if isinstance(qual, QualAtomText):
        return QText(anfa_to_xr(qual.sub), qual.value)
    if isinstance(qual, QualNot):
        return QNot(_convert_qual(qual.inner))
    if isinstance(qual, QualAnd):
        return QAnd(_convert_qual(qual.left), _convert_qual(qual.right))
    if isinstance(qual, QualOr):
        return QOr(_convert_qual(qual.left), _convert_qual(qual.right))
    raise TypeError(f"unknown qualifier {qual!r}")


def _call_expr(spec: CallSpec, lab: Optional[str]) -> PathExpr:
    sub_expr = anfa_to_xr(spec.sub, only_lab=lab)
    qual = spec.qual_for(lab)
    if isinstance(qual, QualTrue):
        return sub_expr
    return Qualified(sub_expr, _convert_qual(qual))


def anfa_to_xr(anfa: ANFA, only_lab: Optional[str] = "#any") -> PathExpr:
    """Convert an ANFA to an equivalent XR expression.

    ``only_lab`` restricts to final states with the given lab (used
    when a call transition continues differently per lab); the default
    sentinel ``"#any"`` keeps all finals.

    Raises :class:`RegexConversionError` for the Fail automaton and for
    wildcard transitions (which have no schema-free XR equivalent).
    """
    trimmed = anfa.trim()
    gnfa_start = -1
    gnfa_accept = -2
    edges: dict[tuple[int, int], PathExpr] = {}

    def add_edge(src: int, dst: int, expr: PathExpr) -> None:
        theta = trimmed.theta.get(dst)
        if theta is not None and dst != gnfa_accept:
            expr = Qualified(expr, _convert_qual(theta))
            if isinstance(expr.inner, EmptyPath):
                expr = Qualified(EmptyPath(), _convert_qual(theta))
        existing = edges.get((src, dst))
        merged = _union(existing, expr)
        assert merged is not None
        edges[(src, dst)] = merged

    add_edge(gnfa_start, trimmed.start, EmptyPath())
    for state in trimmed.states():
        for edge in trimmed.label_edges.get(state, []):
            if edge.label == "*":
                raise RegexConversionError(
                    "wildcard transitions need a schema alphabet")
            expr: PathExpr = Label(edge.label)
            if edge.pos is not None:
                expr = Qualified(expr, QPos(edge.pos))
            add_edge(state, edge.dst, expr)
        for dst in trimmed.eps_edges.get(state, []):
            add_edge(state, dst, EmptyPath())
        for dst in trimmed.str_edges.get(state, []):
            add_edge(state, dst, TextStep())
        for spec in trimmed.call_edges.get(state, []):
            for lab, dst in spec.dst_by_lab:
                add_edge(state, dst, _call_expr(spec, lab))
    for state, lab in trimmed.finals.items():
        if only_lab == "#any" or lab == only_lab:
            # θ of the final state is already folded into its incoming
            # edges; the accept edge itself is unannotated.
            existing = edges.get((state, gnfa_accept))
            merged = _union(existing, EmptyPath())
            assert merged is not None
            edges[(state, gnfa_accept)] = merged

    states = [s for s in trimmed.states()]
    if not any(dst == gnfa_accept for (_src, dst) in edges):
        raise RegexConversionError("the automaton accepts nothing (Fail)")

    for victim in states:
        self_loop = edges.pop((victim, victim), None)
        loop_expr = _star(self_loop) if self_loop is not None else EmptyPath()
        incoming = [(src, expr) for (src, dst), expr in edges.items()
                    if dst == victim and src != victim]
        outgoing = [(dst, expr) for (src, dst), expr in edges.items()
                    if src == victim and dst != victim]
        for (src, _e) in incoming:
            edges.pop((src, victim))
        for (dst, _e) in outgoing:
            edges.pop((victim, dst))
        for src, in_expr in incoming:
            for dst, out_expr in outgoing:
                through = _seq(_seq(in_expr, loop_expr), out_expr)
                if through is None:
                    continue
                existing = edges.get((src, dst))
                merged = _union(existing, through)
                assert merged is not None
                edges[(src, dst)] = merged

    result = edges.get((gnfa_start, gnfa_accept))
    if result is None:
        raise RegexConversionError("no accepting path survived elimination")
    return result
