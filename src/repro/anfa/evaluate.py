"""Direct evaluation of ANFAs on XML trees (Section 4.4).

The paper notes that an ANFA can be evaluated directly "following the
semantics of XR query evaluation" and cites [Fan et al. 2007] for an
implementation that outperforms rewriting to XPath first.  This module
implements that evaluator: a breadth-first product construction over
(state, node) configurations with memoised sub-automaton calls.
Complexity is polynomial in ``|M| · |T|``.

Result lists are document-ordered (elements first, then string values
in discovery order) so that positional call filters agree with the
source-side evaluator in :mod:`repro.xpath.evaluator`.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Union

from repro.anfa.model import (
    ANFA,
    CallSpec,
    QualAnd,
    QualAtomExists,
    QualAtomPos,
    QualAtomText,
    QualExpr,
    QualFalse,
    QualNot,
    QualOr,
    QualTrue,
)
from repro.xpath.evaluator import ResultSet
from repro.xtree.nodes import ElementNode, TextNode

Item = Union[ElementNode, str]
_Labs = set


_NO_CHILDREN: tuple = ()


class _AnfaEvaluator:
    def __init__(self, root: ElementNode) -> None:
        # One pre-order walk builds both the document order and the
        # per-run child index: tag -> element children and the text
        # children's values, precollected per node.  Every label / str
        # transition is then a dict lookup instead of an O(children)
        # rescan (``children_tagged`` / ``element_children`` built a
        # fresh list per visited (state, node) pair).
        order: dict[int, int] = {}
        by_tag: dict[int, dict[str, list[ElementNode]]] = {}
        elements: dict[int, list[ElementNode]] = {}
        texts: dict[int, list[str]] = {}
        for index, node in enumerate(root.iter()):
            order[node.node_id] = index
            if isinstance(node, TextNode):
                continue
            node_elements = []
            node_by_tag: dict[str, list[ElementNode]] = {}
            node_texts = []
            for child in node.children:
                if isinstance(child, ElementNode):
                    node_elements.append(child)
                    bucket = node_by_tag.get(child.tag)
                    if bucket is None:
                        node_by_tag[child.tag] = [child]
                    else:
                        bucket.append(child)
                else:
                    node_texts.append(child.value)
            node_id = node.node_id
            by_tag[node_id] = node_by_tag
            elements[node_id] = node_elements
            texts[node_id] = node_texts
        self.order = order
        self._by_tag = by_tag
        self._elements = elements
        self._texts = texts
        self._memo: dict[tuple[int, int], list[tuple[Item, frozenset]]] = {}

    # ------------------------------------------------------------------
    def _item_key(self, item: Item):
        if isinstance(item, str):
            return ("s", item)
        return ("n", item.node_id)

    def _sort_items(self, raw: dict, labs: dict) -> list[tuple[Item, frozenset]]:
        elements = [item for key, item in raw.items() if key[0] == "n"]
        elements.sort(key=lambda n: self.order.get(n.node_id, 1 << 30))
        strings = [item for key, item in raw.items() if key[0] == "s"]
        ordered = [*elements, *strings]
        return [(item, frozenset(labs[self._item_key(item)]))
                for item in ordered]

    def run(self, anfa: ANFA, context: ElementNode,
            ) -> list[tuple[Item, frozenset]]:
        memo_key = (id(anfa), context.node_id)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        # Seed the memo to cut (ill-formed) cyclic self-calls short.
        self._memo[memo_key] = []

        results: dict = {}
        result_labs: dict = {}
        visited: set[tuple[int, object]] = set()
        queue: deque[tuple[int, Item]] = deque([(anfa.start, context)])

        while queue:
            state, item = queue.popleft()
            key = (state, self._item_key(item))
            if key in visited:
                continue
            visited.add(key)

            qual = anfa.theta.get(state)
            if qual is not None and not self.qual_holds(qual, item):
                continue

            if state in anfa.finals:
                item_key = self._item_key(item)
                results[item_key] = item
                result_labs.setdefault(item_key, set()).add(
                    anfa.finals[state])

            is_node = not isinstance(item, str)
            for edge in anfa.label_edges.get(state, _NO_CHILDREN):
                if not is_node:
                    continue
                if edge.label == "*":  # wildcard (source-side // coding)
                    children = self._elements[item.node_id]
                else:
                    children = self._by_tag[item.node_id].get(
                        edge.label, _NO_CHILDREN)
                if edge.pos is not None:
                    children = (children[edge.pos - 1:edge.pos]
                                if len(children) >= edge.pos else ())
                for child in children:
                    queue.append((edge.dst, child))
            for dst in anfa.eps_edges.get(state, _NO_CHILDREN):
                queue.append((dst, item))
            for dst in anfa.str_edges.get(state, _NO_CHILDREN):
                if not is_node:
                    continue
                for value in self._texts[item.node_id]:
                    queue.append((dst, value))
            for spec in anfa.call_edges.get(state, _NO_CHILDREN):
                if not is_node:
                    continue
                self._expand_call(spec, item, queue)

        output = self._sort_items(results, result_labs)
        self._memo[memo_key] = output
        return output

    def _expand_call(self, spec: CallSpec, node: ElementNode,
                     queue: deque) -> None:
        sub_results = self.run(spec.sub, node)
        size = len(sub_results)
        for index, (item, labs) in enumerate(sub_results, start=1):
            for lab in labs:
                dst = spec.dst_for(lab)
                if dst is None:
                    continue
                qual = spec.qual_for(lab)
                if self.qual_holds(qual, item, position=index, size=size):
                    queue.append((dst, item))

    # ------------------------------------------------------------------
    def qual_holds(self, qual: QualExpr, item: Item,
                   position: Optional[int] = None,
                   size: Optional[int] = None) -> bool:
        if isinstance(qual, QualTrue):
            return True
        if isinstance(qual, QualFalse):
            return False
        if isinstance(qual, QualAtomPos):
            return position == qual.k
        if isinstance(qual, QualAtomExists):
            if isinstance(item, str):
                return False
            return bool(self.run(qual.sub, item))
        if isinstance(qual, QualAtomText):
            if isinstance(item, str):
                return False
            return any(isinstance(res, str) and res == qual.value
                       for res, _labs in self.run(qual.sub, item))
        if isinstance(qual, QualNot):
            return not self.qual_holds(qual.inner, item, position, size)
        if isinstance(qual, QualAnd):
            return (self.qual_holds(qual.left, item, position, size)
                    and self.qual_holds(qual.right, item, position, size))
        if isinstance(qual, QualOr):
            return (self.qual_holds(qual.left, item, position, size)
                    or self.qual_holds(qual.right, item, position, size))
        raise TypeError(f"unknown qualifier {qual!r}")


def evaluate_anfa(anfa: ANFA, context: ElementNode) -> list[Item]:
    """Evaluate ``anfa`` at ``context``: document-ordered items."""
    root = context.root()
    assert isinstance(root, ElementNode)
    return [item for item, _labs in _AnfaEvaluator(root).run(anfa, context)]


def evaluate_anfa_set(anfa: ANFA, context: ElementNode) -> ResultSet:
    """The :class:`ResultSet` view (ids + strings) of an ANFA run."""
    return ResultSet.of(evaluate_anfa(anfa, context))
