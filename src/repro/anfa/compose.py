# lint: translation-plane
"""Relocation-free composition of left-nested ANFA chains.

The union/concatenation cases of :mod:`repro.anfa.construct` and
:mod:`repro.core.translate` are left-associative, so a chain query
``B1/B2/…/Bn`` used to build its automaton bottom-up: each level
allocated a fresh ANFA and :meth:`~repro.anfa.model.ANFA.embed`-copied
the *entire* accumulated prefix before appending one operand —
quadratic state copying in the chain length.  This module builds the
same automaton in one pass: the chain's spine states are allocated up
front, each operand is embedded exactly once, and the accumulator is
only ever *extended* (append-only — no state is ever renumbered after
allocation).

The state-numbering discipline reproduces the recursive construction
**exactly** (canonical renderings, trim certificates and final/θ
insertion orders are byte-identical; enforced by the golden-rendering
tests).  For an n-operand chain the recursive build yields::

    0 .. n-2          the per-level start states, outermost first
                      (state i is the start of the sub-chain covering
                      operands 1..n-i), ε-linked i -> i+1;
    n-1 ..            operand 1's states, then every later appended
                      automaton in the order the recursion embedded it.

Nothing here may introduce hash-order iteration or ``id()``-keyed
state numbering — the whole point is deterministic byte-stable state
numbers (the ``translation-plane`` lint marker enforces it).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.anfa.model import ANFA, STR_LAB, fail_anfa
from repro.xpath.ast import PathExpr


def left_spine(query: PathExpr, node_type: type) -> list[PathExpr]:
    """The operands ``[B1, …, Bn]`` of a left-nested ``node_type``
    chain: ``node_type(node_type(B1, B2), B3)`` → ``[B1, B2, B3]``.
    Collected iteratively — the spine is exactly the shape that used
    to exhaust both the stack and the allocator."""
    parts: list[PathExpr] = []
    node = query
    while isinstance(node, node_type):
        parts.append(node.right)
        node = node.left
    parts.append(node)
    parts.reverse()
    return parts


def _chain_accumulator(n_operands: int) -> ANFA:
    """A fresh accumulator with the chain's spine states 0..n-2
    pre-allocated and ε-linked ``i -> i+1`` (the recursive build's
    per-level ``start -> embedded-prefix-start`` edges, flattened).
    The last spine state's edge to operand 1 is added by the caller
    once operand 1's base is known (it is always ``n_operands - 1``)."""
    anfa = ANFA()
    for _ in range(n_operands - 2):
        anfa.new_state()
    for state in range(n_operands - 3 + 1):
        anfa.add_eps(state, state + 1)
    return anfa


def union_operands(operands: list[ANFA]) -> ANFA:
    """The construction-side union (case (c)) of ≥2 operand automata:
    one spine state per level, every operand embedded once, each spine
    state ε-ing first into the next-inner spine state and then into
    its level's appended operand."""
    anfa = _chain_accumulator(len(operands))
    base = anfa.embed(operands[0]).base
    anfa.add_eps(len(operands) - 2, base + operands[0].start)
    for index in range(1, len(operands)):
        mapping = anfa.embed(operands[index])
        spine = len(operands) - 1 - index
        anfa.add_eps(spine, mapping.base + operands[index].start)
    return anfa


def concat_operands(operands: list[ANFA]) -> ANFA:
    """The construction-side concatenation (case (d)) of ≥2 operands:
    each level clears the previous operand's finals and ε-wires the
    non-string ones into the next operand's start."""
    anfa = _chain_accumulator(len(operands))
    first = operands[0]
    mapping = anfa.embed(first)
    anfa.add_eps(len(operands) - 2, mapping.base + first.start)
    previous = [(mapping.base + state, lab)
                for state, lab in first.finals.items()]
    for index in range(1, len(operands)):
        operand = operands[index]
        mapping = anfa.embed(operand)
        entry = mapping.base + operand.start
        for state, lab in previous:
            anfa.clear_final(state)
            if lab != STR_LAB:  # strings have no continuation
                anfa.add_eps(state, entry)
        previous = [(mapping.base + state, lab)
                    for state, lab in operand.finals.items()]
    return anfa


def translated_union(operands: list[ANFA]) -> ANFA:
    """The translation-side union (case (c)) over already-translated
    operands, reproducing the recursive fail short-circuits: with no
    live operand the *last* operand's automaton is returned, with one
    live operand that automaton itself — both shared memo objects, so
    neither may be mutated here."""
    live = [operand for operand in operands if not operand.is_fail()]
    if not live:
        return operands[-1]
    if len(live) == 1:
        return live[0]
    anfa = _chain_accumulator(len(live))
    base = anfa.embed(live[0]).base
    anfa.add_eps(len(live) - 2, base + live[0].start)
    is_trim = live[0]._is_trim
    for index in range(1, len(live)):
        mapping = anfa.embed(live[index])
        spine = len(live) - 1 - index
        anfa.add_eps(spine, mapping.base + live[index].start)
        is_trim = is_trim and live[index]._is_trim
    # Finals of every live branch are kept, so trimness is inherited.
    anfa._is_trim = is_trim
    return anfa


def translated_concat(first: ANFA, rest: list[PathExpr],
                      trl: Callable[[PathExpr, str], ANFA]) -> ANFA:
    """The translation-side concatenation (case (d)) over a chain:
    ``first`` is ``Trl(B1, context)``; each later operand is translated
    per distinct final lab of the previous level (``trl(Bk, lab)``) and
    embedded once, its start ε-wired from every final carrying that
    lab.  A level whose automaton ends up final-less makes every later
    level ``Fail`` — except the last level, which is returned as built
    (the recursive build only converts *inputs* to ``Fail``)."""
    if first.is_fail():
        return fail_anfa()
    anfa = _chain_accumulator(len(rest) + 1)
    mapping = anfa.embed(first)
    anfa.add_eps(len(rest) - 1, mapping.base + first.start)
    previous = [(mapping.base + state, lab)
                for state, lab in first.finals.items()]
    previous_trim = first._is_trim
    for index, right in enumerate(rest):
        if not previous:
            # The accumulated prefix is Fail: the recursive build
            # returns fail_anfa() from every remaining level.
            return fail_anfa()
        # One embedded continuation per distinct lab.  Trimness holds
        # iff every final of the previous level got a live, trim
        # continuation (a dropped str/failed lab leaves dead states).
        entries: dict[str, Optional[int]] = {}
        all_live = previous_trim
        next_finals: list[tuple[int, Optional[str]]] = []
        for state, lab in previous:
            anfa.clear_final(state)
            if lab is None or lab == STR_LAB:
                all_live = False
                continue  # strings have no continuation
            if lab not in entries:
                continuation = trl(right, lab)
                if continuation.is_fail():
                    entries[lab] = None
                else:
                    mapping = anfa.embed(continuation)
                    entries[lab] = mapping.base + continuation.start
                    next_finals.extend(
                        (mapping.base + sub_state, sub_lab)
                        for sub_state, sub_lab in continuation.finals.items())
                    if not continuation._is_trim:
                        all_live = False
            entry = entries[lab]
            if entry is not None:
                anfa.add_eps(state, entry)
            else:
                all_live = False
        previous = next_finals
        previous_trim = all_live
    anfa._is_trim = previous_trim
    return anfa
