"""Annotated nondeterministic finite automata — ANFAs (Section 4.4).

The paper represents translated regular-XPath queries as NFAs whose
states carry qualifier annotations (θ) referring to named sub-automata
(ν).  This package implements:

* :mod:`repro.anfa.model` — the automaton, qualifier trees, and the
  *call transition* refinement (R6 in DESIGN.md) used for positional
  qualifiers (the "mild augmentation" the paper's framework allows);
* :mod:`repro.anfa.construct` — building the ANFA ``M_Q`` of a source
  query (cases (a)–(i) of Section 4.4);
* :mod:`repro.anfa.evaluate` — direct evaluation of an ANFA on an XML
  tree (polynomial; the paper cites [Fan et al. 2007] for this style);
* :mod:`repro.anfa.to_regex` — state elimination back to an XR
  expression (worst-case exponential, per [Ehrenfeucht & Zeiger 1976]).
"""

from repro.anfa.model import (
    ANFA,
    CallSpec,
    QualAtomExists,
    QualAtomPos,
    QualAtomText,
    QualExpr,
    QualFalse,
    QualTrue,
    qual_and,
    qual_not,
    qual_or,
)
from repro.anfa.construct import anfa_of_query
from repro.anfa.evaluate import evaluate_anfa, evaluate_anfa_set
from repro.anfa.to_regex import anfa_to_xr

__all__ = [
    "ANFA",
    "CallSpec",
    "QualAtomExists",
    "QualAtomPos",
    "QualAtomText",
    "QualExpr",
    "QualFalse",
    "QualTrue",
    "anfa_of_query",
    "anfa_to_xr",
    "evaluate_anfa",
    "evaluate_anfa_set",
    "qual_and",
    "qual_not",
    "qual_or",
]
