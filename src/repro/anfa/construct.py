"""Building the ANFA ``M_Q`` of a source query (Section 4.4, cases a–i).

This is the *representation* side of the paper's automaton framework:
any XR query can be coded as an ANFA whose direct evaluation agrees
with the XR semantics (tested against :mod:`repro.xpath.evaluator`).
Schema-directed *translation* (which additionally maps the query across
an embedding) lives in :mod:`repro.core.translate` and uses the same
automaton algebra.

Construction cases:

(a) ``ε``       — one state, final;
(b) ``A``       — two states joined by a label transition;
(c) ``p1 ∪ p2`` — union (fresh start, ε to both embedded copies);
(d) ``p1/p2``, ``p/text()`` — concatenation via ε transitions;
(e) ``p[q]``    — θ annotations on the final states, or a call
                  transition when ``q`` contains ``position()``
                  (refinement R6);
(f)–(i) qualifiers — boolean trees over sub-automata;
plus ``p*`` as the Kleene closure and ``//`` as a wildcard loop.
"""

from __future__ import annotations

from repro.anfa.compose import (
    concat_operands,
    left_spine,
    union_operands,
)
from repro.anfa.model import (
    ANFA,
    CallSpec,
    QualAtomExists,
    QualAtomPos,
    QualAtomText,
    QualExpr,
    QualTrue,
    STR_LAB,
    qual_and,
    qual_has_position,
    qual_not,
    qual_or,
)
from repro.xpath.ast import (
    DescOrSelf,
    EmptyPath,
    Label,
    PathExpr,
    QAnd,
    QNot,
    QOr,
    QPath,
    QPos,
    QText,
    QTrue,
    Qualified,
    Qualifier,
    Seq,
    Star,
    TextStep,
    Union,
)


def anfa_of_query(query: PathExpr) -> ANFA:
    """Build the ANFA representing a (source-side) XR/X query.

    >>> from repro.xpath.parser import parse_xr
    >>> m = anfa_of_query(parse_xr("A/B"))
    >>> sorted(m.finals.values())
    [None]
    """
    return _build(query).trim()


def _build(query: PathExpr) -> ANFA:
    if isinstance(query, EmptyPath):
        anfa = ANFA()
        anfa.set_final(anfa.start, None)
        return anfa
    if isinstance(query, Label):
        anfa = ANFA()
        final = anfa.new_state()
        anfa.add_label(anfa.start, query.name, final)
        anfa.set_final(final, None)
        return anfa
    if isinstance(query, TextStep):
        anfa = ANFA()
        final = anfa.new_state()
        anfa.add_str(anfa.start, final)
        anfa.set_final(final, STR_LAB)
        return anfa
    if isinstance(query, DescOrSelf):
        # Wildcard loop: (any-child)*, final everywhere on the loop.
        anfa = ANFA()
        anfa.add_label(anfa.start, "*", anfa.start)
        anfa.set_final(anfa.start, None)
        return anfa
    if isinstance(query, Union):
        # Left-associative chains compose append-only (one embed per
        # operand) with byte-identical state numbering; see
        # repro.anfa.compose.
        return union_operands([_build(part)
                               for part in left_spine(query, Union)])
    if isinstance(query, Seq):
        return concat_operands([_build(part)
                                for part in left_spine(query, Seq)])
    if isinstance(query, Star):
        inner = _build(query.inner)
        anfa = ANFA()
        inner_map = anfa.embed(inner)
        anfa.set_final(anfa.start, None)   # p^0
        anfa.add_eps(anfa.start, inner_map[inner.start])
        for state, lab in inner.finals.items():
            if lab != STR_LAB:
                anfa.add_eps(inner_map[state], inner_map[inner.start])
        return anfa
    if isinstance(query, Qualified):
        inner = _build(query.inner)
        qual = _build_qualifier(query.qual)
        if not qual_has_position(qual):
            # Fresh accept-only states: θ kills runs entering a state,
            # and star finals also have pass-through transitions.
            for state, lab in list(inner.finals.items()):
                inner.clear_final(state)
                accept = inner.new_state()
                inner.add_eps(state, accept)
                inner.set_final(accept, lab)
                inner.annotate(accept, qual)
            return inner
        # Positional qualifier: realise via a call transition so the
        # result-list index is available (refinement R6).
        anfa = ANFA()
        elem_dst = anfa.new_state()
        str_dst = anfa.new_state()
        anfa.set_final(elem_dst, None)
        anfa.set_final(str_dst, STR_LAB)
        labs = sorted(inner.final_labs(), key=lambda lab: lab or "")
        anfa.add_call(anfa.start, CallSpec(
            sub=inner,
            quals=tuple((lab, qual) for lab in labs),
            dst_by_lab=tuple(
                (lab, str_dst if lab == STR_LAB else elem_dst)
                for lab in labs)))
        return anfa
    raise TypeError(f"cannot build an ANFA for {query!r}")


def _build_qualifier(qual: Qualifier) -> QualExpr:
    if isinstance(qual, QTrue):
        return QualTrue()
    if isinstance(qual, QPos):
        return QualAtomPos(qual.k)
    if isinstance(qual, QPath):
        return QualAtomExists(_build(qual.path).trim())
    if isinstance(qual, QText):
        return QualAtomText(_build(qual.path).trim(), qual.value)
    if isinstance(qual, QNot):
        return qual_not(_build_qualifier(qual.inner))
    if isinstance(qual, QAnd):
        return qual_and(_build_qualifier(qual.left),
                        _build_qualifier(qual.right))
    if isinstance(qual, QOr):
        return qual_or(_build_qualifier(qual.left),
                       _build_qualifier(qual.right))
    raise TypeError(f"cannot build a qualifier for {qual!r}")
