"""XML instance trees with node identities (paper Section 2.1).

An XML instance is an ordered, node-labelled tree.  Element nodes carry a
tag; text nodes carry a string value (PCDATA).  Every node — including
text nodes — carries a node id drawn from a countably infinite set ``U``
(here: Python ints, unique within a tree).

The module deliberately avoids ``xml.etree``/lxml: the paper's machinery
needs explicit node identities, the ``idM`` mapping, and the paper's own
tree-equality notion, all of which are first-class here.
"""

from repro.xtree.nodes import (
    ElementNode,
    Node,
    TextNode,
    XMLTree,
    document_order,
    elem,
    text,
    tree_equal,
    tree_size,
)
from repro.xtree.parser import XMLParseError, parse_xml
from repro.xtree.serialize import to_string

__all__ = [
    "ElementNode",
    "Node",
    "TextNode",
    "XMLTree",
    "XMLParseError",
    "document_order",
    "elem",
    "text",
    "parse_xml",
    "to_string",
    "tree_equal",
    "tree_size",
]
