"""A small XML document parser producing :class:`repro.xtree.ElementNode`.

Supports the subset of XML the paper's data model uses: elements, text,
comments, processing instructions (skipped), CDATA sections and the five
predefined entities.  Attributes are parsed and *rejected by default*
(DTD instances in the paper are attribute-free) unless
``allow_attributes=True``, in which case they are ignored.

Hand-rolled rather than ``xml.etree`` so that node ids are assigned at
parse time and whitespace handling matches the paper's element-only
content models (whitespace-only text between elements is dropped).
"""

from __future__ import annotations

from typing import Optional

from repro.xtree.nodes import ElementNode, TextNode

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}


class XMLParseError(ValueError):
    """Raised on malformed input, with position information."""

    def __init__(self, message: str, pos: int, source: str) -> None:
        line = source.count("\n", 0, pos) + 1
        col = pos - source.rfind("\n", 0, pos)
        super().__init__(f"{message} at line {line}, column {col}")
        self.pos = pos


class _Scanner:
    """Cursor over the source string with primitive lexing helpers."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.source)

    def peek(self, width: int = 1) -> str:
        return self.source[self.pos:self.pos + width]

    def advance(self, width: int = 1) -> str:
        chunk = self.source[self.pos:self.pos + width]
        self.pos += width
        return chunk

    def skip_ws(self) -> None:
        while not self.eof() and self.source[self.pos].isspace():
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.source.startswith(literal, self.pos):
            raise XMLParseError(f"expected {literal!r}", self.pos, self.source)
        self.pos += len(literal)

    def read_until(self, literal: str) -> str:
        end = self.source.find(literal, self.pos)
        if end < 0:
            raise XMLParseError(f"unterminated construct, missing {literal!r}",
                                self.pos, self.source)
        chunk = self.source[self.pos:end]
        self.pos = end + len(literal)
        return chunk

    def read_name(self) -> str:
        # The name alphabet matches the DTD parser's _NAME_RE
        # ([A-Za-z_][\w.-]*): a digit/'-'/'.'-leading tag could never be
        # declared by any schema, so the document parser rejects it too.
        start = self.pos
        first = self.peek()
        if not (first.isalpha() or first == "_"):
            raise XMLParseError("expected a name", self.pos, self.source)
        while (not self.eof()
               and (self.source[self.pos].isalnum()
                    or self.source[self.pos] in "_-.:")):
            self.pos += 1
        return self.source[start:self.pos]


def _decode_charref(name: str, scanner: _Scanner) -> str:
    """Decode ``#NNN`` / ``#xHHH`` — malformed or out-of-range references
    raise :class:`XMLParseError`, never a bare ``ValueError``."""
    digits = name[2:] if name[1:2] in ("x", "X") else name[1:]
    base = 16 if name[1:2] in ("x", "X") else 10
    try:
        code = int(digits, base)
    except ValueError:
        raise XMLParseError(f"malformed character reference &{name};",
                            scanner.pos, scanner.source) from None
    if not 0 <= code <= 0x10FFFF:
        raise XMLParseError(
            f"character reference &{name}; is outside the Unicode range",
            scanner.pos, scanner.source)
    if 0xD800 <= code <= 0xDFFF:
        # XML's Char production excludes surrogates; chr() would accept
        # them but the resulting string cannot be UTF-8 encoded, so a
        # write of the mapped output would crash far from the parse.
        raise XMLParseError(
            f"character reference &{name}; is a surrogate code point",
            scanner.pos, scanner.source)
    return chr(code)


def _decode_entities(raw: str, scanner: _Scanner) -> str:
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i)
        if end < 0:
            raise XMLParseError("unterminated entity reference",
                                scanner.pos, scanner.source)
        name = raw[i + 1:end]
        if name.startswith("#"):
            out.append(_decode_charref(name, scanner))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLParseError(f"unknown entity &{name};",
                                scanner.pos, scanner.source)
        i = end + 1
    return "".join(out)


def _skip_misc(scanner: _Scanner) -> None:
    """Skip comments, PIs, doctype declarations and whitespace."""
    while True:
        scanner.skip_ws()
        if scanner.peek(4) == "<!--":
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.peek(2) == "<?":
            scanner.advance(2)
            scanner.read_until("?>")
        elif scanner.peek(2) == "<!" and scanner.peek(9).upper() == "<!DOCTYPE":
            # Skip a doctype, tracking bracket nesting for internal subsets.
            depth = 0
            while not scanner.eof():
                ch = scanner.advance()
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                elif ch == ">" and depth <= 0:
                    break
        else:
            return


def _parse_attributes(scanner: _Scanner, allow: bool) -> None:
    """Consume attributes inside a start tag (ignored or rejected)."""
    while True:
        scanner.skip_ws()
        ch = scanner.peek()
        if ch in (">", "/", ""):
            return
        name = scanner.read_name()
        scanner.skip_ws()
        scanner.expect("=")
        scanner.skip_ws()
        quote = scanner.advance()
        if quote not in ("'", '"'):
            raise XMLParseError("expected quoted attribute value",
                                scanner.pos, scanner.source)
        scanner.read_until(quote)
        if not allow:
            raise XMLParseError(
                f"attribute {name!r} not supported by the paper's data model "
                "(pass allow_attributes=True to ignore attributes)",
                scanner.pos, scanner.source)


def _flush_text(node: ElementNode, buffer: list[tuple[str, bool]],
                scanner: _Scanner, keep_whitespace: bool) -> None:
    """Decode and append the buffered text run, if any.

    Text segments are (content, is_cdata) — CDATA bypasses entity
    decoding; contiguous segments are grouped so entity references
    spanning several character chunks decode as one run.
    """
    if not buffer:
        return
    groups: list[tuple[str, bool]] = []
    for chunk, is_cdata in buffer:
        if groups and groups[-1][1] == is_cdata:
            groups[-1] = (groups[-1][0] + chunk, is_cdata)
        else:
            groups.append((chunk, is_cdata))
    decoded = "".join(
        chunk if is_cdata else _decode_entities(chunk, scanner)
        for chunk, is_cdata in groups)
    has_cdata = any(is_cdata for _chunk, is_cdata in buffer)
    buffer.clear()
    if decoded and (keep_whitespace or has_cdata or decoded.strip()):
        value = (decoded if keep_whitespace or has_cdata
                 else decoded.strip())
        node.append(TextNode(value))


def _open_element(scanner: _Scanner, allow_attributes: bool,
                  ) -> tuple[ElementNode, bool]:
    """Parse a start tag; returns (node, closed) — closed for ``<a/>``."""
    scanner.expect("<")
    tag = scanner.read_name()
    node = ElementNode(tag)
    _parse_attributes(scanner, allow_attributes)
    if scanner.peek(2) == "/>":
        scanner.advance(2)
        return node, True
    scanner.expect(">")
    return node, False


def _parse_element(scanner: _Scanner, allow_attributes: bool,
                   keep_whitespace: bool) -> ElementNode:
    """Parse one element with an explicit open-element stack.

    Iterative on purpose: documents nest arbitrarily deep (the serving
    daemon accepts thousand-level documents) and must never hit the
    Python recursion limit.
    """
    root, closed = _open_element(scanner, allow_attributes)
    if closed:
        return root
    # (node, text buffer) per open element, innermost last.
    stack: list[tuple[ElementNode, list[tuple[str, bool]]]] = [(root, [])]
    while stack:
        node, buffer = stack[-1]
        if scanner.eof():
            raise XMLParseError(f"unterminated element <{node.tag}>",
                                scanner.pos, scanner.source)
        if scanner.peek(2) == "</":
            _flush_text(node, buffer, scanner, keep_whitespace)
            scanner.advance(2)
            close = scanner.read_name()
            if close != node.tag:
                raise XMLParseError(
                    f"mismatched end tag </{close}>, expected </{node.tag}>",
                    scanner.pos, scanner.source)
            scanner.skip_ws()
            scanner.expect(">")
            stack.pop()
        elif scanner.peek(4) == "<!--":
            _flush_text(node, buffer, scanner, keep_whitespace)
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.peek(9) == "<![CDATA[":
            scanner.advance(9)
            buffer.append((scanner.read_until("]]>"), True))
        elif scanner.peek(2) == "<?":
            _flush_text(node, buffer, scanner, keep_whitespace)
            scanner.advance(2)
            scanner.read_until("?>")
        elif scanner.peek() == "<":
            _flush_text(node, buffer, scanner, keep_whitespace)
            child, closed = _open_element(scanner, allow_attributes)
            node.append(child)
            if not closed:
                stack.append((child, []))
        else:
            buffer.append((scanner.advance(), False))
    return root


def parse_xml(source: str, allow_attributes: bool = False,
              keep_whitespace: bool = False) -> ElementNode:
    """Parse an XML document string into an element tree.

    >>> t = parse_xml("<class><cno>CS331</cno><title>DB</title></class>")
    >>> t.tag, t.children_tagged("cno")[0].child_text()
    ('class', 'CS331')
    """
    scanner = _Scanner(source)
    _skip_misc(scanner)
    if scanner.eof() or scanner.peek() != "<":
        raise XMLParseError("expected a root element", scanner.pos, source)
    root = _parse_element(scanner, allow_attributes, keep_whitespace)
    _skip_misc(scanner)
    if not scanner.eof():
        raise XMLParseError("trailing content after the root element",
                            scanner.pos, source)
    return root


def parse_fragment(source: str) -> Optional[ElementNode]:
    """Parse a fragment, returning ``None`` for pure whitespace."""
    if not source.strip():
        return None
    return parse_xml(source)
