"""A small XML document parser producing :class:`repro.xtree.ElementNode`.

Supports the subset of XML the paper's data model uses: elements, text,
comments, processing instructions (skipped), CDATA sections and the five
predefined entities.  Attributes are parsed and *rejected by default*
(DTD instances in the paper are attribute-free) unless
``allow_attributes=True``, in which case they are ignored.

Hand-rolled rather than ``xml.etree`` so that node ids are assigned at
parse time and whitespace handling matches the paper's element-only
content models (whitespace-only text between elements is dropped).
"""

from __future__ import annotations

from typing import Optional

from repro.xtree.nodes import ElementNode, TextNode

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}


class XMLParseError(ValueError):
    """Raised on malformed input, with position information.

    ``source`` only needs ``count``/``rfind`` for the line/column
    arithmetic, so the sliding-window buffer of the streaming scanner
    (:class:`_TextWindow`) reports identical positions to a full
    in-memory parse of the same document.
    """

    def __init__(self, message: str, pos: int, source) -> None:
        line = source.count("\n", 0, pos) + 1
        col = pos - source.rfind("\n", 0, pos)
        super().__init__(f"{message} at line {line}, column {col}")
        self.pos = pos


class _Scanner:
    """Cursor over the source string with primitive lexing helpers."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.source)

    def peek(self, width: int = 1) -> str:
        return self.source[self.pos:self.pos + width]

    def advance(self, width: int = 1) -> str:
        chunk = self.source[self.pos:self.pos + width]
        self.pos += width
        return chunk

    def skip_ws(self) -> None:
        while not self.eof() and self.source[self.pos].isspace():
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.source.startswith(literal, self.pos):
            raise XMLParseError(f"expected {literal!r}", self.pos, self.source)
        self.pos += len(literal)

    def read_until(self, literal: str) -> str:
        end = self.source.find(literal, self.pos)
        if end < 0:
            raise XMLParseError(f"unterminated construct, missing {literal!r}",
                                self.pos, self.source)
        chunk = self.source[self.pos:end]
        self.pos = end + len(literal)
        return chunk

    def read_name(self) -> str:
        # The name alphabet matches the DTD parser's _NAME_RE
        # ([A-Za-z_][\w.-]*): a digit/'-'/'.'-leading tag could never be
        # declared by any schema, so the document parser rejects it too.
        start = self.pos
        first = self.peek()
        if not (first.isalpha() or first == "_"):
            raise XMLParseError("expected a name", self.pos, self.source)
        while (not self.eof()
               and (self.source[self.pos].isalnum()
                    or self.source[self.pos] in "_-.:")):
            self.pos += 1
        return self.source[start:self.pos]

    def read_text_run(self) -> str:
        """Consume character data up to (not including) the next ``<``
        — or to end of input, leaving the unterminated-element check to
        the caller's ``eof()`` test."""
        end = self.source.find("<", self.pos)
        if end < 0:
            end = len(self.source)
        chunk = self.source[self.pos:end]
        self.pos = end
        return chunk

    def discard(self) -> None:
        """Hint that everything before ``pos`` is consumed (no-op for
        the in-memory scanner; the streaming scanner drops the prefix)."""


class _TextWindow:
    """A sliding, str-like window over an incrementally read text file.

    Exposes exactly the string surface :class:`_Scanner` lexes against
    (indexing, slicing, ``find``, ``startswith``, and the newline
    ``count``/``rfind`` used for error positions), all in *absolute*
    document coordinates, while keeping only a bounded suffix of the
    document resident.  Newlines in the dropped prefix are counted so
    :class:`XMLParseError` line/column numbers match an in-memory parse
    byte for byte.
    """

    __slots__ = ("_handle", "_chunk", "_buf", "_base", "_eof",
                 "_nl_dropped", "_last_dropped_nl")

    def __init__(self, handle, chunk_chars: int = 1 << 16) -> None:
        self._handle = handle
        self._chunk = max(1024, int(chunk_chars))
        self._buf = ""
        self._base = 0
        self._eof = False
        self._nl_dropped = 0
        self._last_dropped_nl = -1

    def _fill(self, target: int) -> None:
        while not self._eof and self._base + len(self._buf) < target:
            chunk = self._handle.read(self._chunk)
            if not chunk:
                self._eof = True
                break
            self._buf += chunk

    def has(self, index: int) -> bool:
        self._fill(index + 1)
        return index < self._base + len(self._buf)

    def drop(self, upto: int) -> None:
        """Release the window prefix before ``upto`` (batched so the
        slice cost stays amortised-linear)."""
        cut = upto - self._base
        if cut < 4096:
            return
        dropped = self._buf[:cut]
        newlines = dropped.count("\n")
        if newlines:
            self._nl_dropped += newlines
            self._last_dropped_nl = self._base + dropped.rfind("\n")
        self._base = upto
        self._buf = self._buf[cut:]

    # -- the str surface the scanner uses (absolute coordinates) ----------
    def __len__(self) -> int:
        # Only exact once the file is exhausted; the scanner reaches
        # here solely through EOF paths (read_text_run after a failed
        # find), which is after ``_eof`` is set.
        return self._base + len(self._buf)

    def __getitem__(self, key):
        if isinstance(key, slice):
            stop = key.stop if key.stop is not None else (key.start or 0) + 1
            self._fill(stop)
            return self._buf[(key.start or 0) - self._base:
                             stop - self._base]
        self._fill(key + 1)
        return self._buf[key - self._base]

    def startswith(self, literal: str, start: int) -> bool:
        self._fill(start + len(literal))
        return self._buf.startswith(literal, start - self._base)

    def find(self, needle: str, start: int) -> int:
        search_from = start
        while True:
            rel = self._buf.find(needle, search_from - self._base)
            if rel >= 0:
                return self._base + rel
            if self._eof:
                return -1
            end = self._base + len(self._buf)
            # Re-scan only the seam where a needle could span chunks.
            search_from = max(start, end - len(needle) + 1)
            self._fill(end + self._chunk)

    def count(self, needle: str, start: int, stop: int) -> int:
        # Only used for "\n" counting in error positions; the dropped
        # prefix is always entirely before ``stop``.
        dropped = self._nl_dropped if needle == "\n" else 0
        return dropped + self._buf.count(needle, max(0, start - self._base),
                                         stop - self._base)

    def rfind(self, needle: str, start: int, stop: int) -> int:
        rel = self._buf.rfind(needle, max(0, start - self._base),
                              stop - self._base)
        if rel >= 0:
            return self._base + rel
        return self._last_dropped_nl if needle == "\n" else -1


class _StreamScanner(_Scanner):
    """A scanner over a file handle: same lexing, same error messages,
    but only a bounded window of the document is ever resident."""

    def __init__(self, handle, chunk_chars: int = 1 << 16) -> None:
        self.source = _TextWindow(handle, chunk_chars)  # type: ignore[assignment]
        self.pos = 0

    def eof(self) -> bool:
        return not self.source.has(self.pos)

    def discard(self) -> None:
        self.source.drop(self.pos)


def _decode_charref(name: str, scanner: _Scanner) -> str:
    """Decode ``#NNN`` / ``#xHHH`` — malformed or out-of-range references
    raise :class:`XMLParseError`, never a bare ``ValueError``."""
    digits = name[2:] if name[1:2] in ("x", "X") else name[1:]
    base = 16 if name[1:2] in ("x", "X") else 10
    try:
        code = int(digits, base)
    except ValueError:
        raise XMLParseError(f"malformed character reference &{name};",
                            scanner.pos, scanner.source) from None
    if not 0 <= code <= 0x10FFFF:
        raise XMLParseError(
            f"character reference &{name}; is outside the Unicode range",
            scanner.pos, scanner.source)
    if 0xD800 <= code <= 0xDFFF:
        # XML's Char production excludes surrogates; chr() would accept
        # them but the resulting string cannot be UTF-8 encoded, so a
        # write of the mapped output would crash far from the parse.
        raise XMLParseError(
            f"character reference &{name}; is a surrogate code point",
            scanner.pos, scanner.source)
    return chr(code)


def _decode_entities(raw: str, scanner: _Scanner) -> str:
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i)
        if end < 0:
            raise XMLParseError("unterminated entity reference",
                                scanner.pos, scanner.source)
        name = raw[i + 1:end]
        if name.startswith("#"):
            out.append(_decode_charref(name, scanner))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLParseError(f"unknown entity &{name};",
                                scanner.pos, scanner.source)
        i = end + 1
    return "".join(out)


def _skip_misc(scanner: _Scanner) -> None:
    """Skip comments, PIs, doctype declarations and whitespace."""
    while True:
        scanner.skip_ws()
        if scanner.peek(4) == "<!--":
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.peek(2) == "<?":
            scanner.advance(2)
            scanner.read_until("?>")
        elif scanner.peek(2) == "<!" and scanner.peek(9).upper() == "<!DOCTYPE":
            # Skip a doctype, tracking bracket nesting for internal subsets.
            depth = 0
            while not scanner.eof():
                ch = scanner.advance()
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                elif ch == ">" and depth <= 0:
                    break
        else:
            return


def _parse_attributes(scanner: _Scanner, allow: bool) -> None:
    """Consume attributes inside a start tag (ignored or rejected)."""
    while True:
        scanner.skip_ws()
        ch = scanner.peek()
        if ch in (">", "/", ""):
            return
        name = scanner.read_name()
        scanner.skip_ws()
        scanner.expect("=")
        scanner.skip_ws()
        quote = scanner.advance()
        if quote not in ("'", '"'):
            raise XMLParseError("expected quoted attribute value",
                                scanner.pos, scanner.source)
        scanner.read_until(quote)
        if not allow:
            raise XMLParseError(
                f"attribute {name!r} not supported by the paper's data model "
                "(pass allow_attributes=True to ignore attributes)",
                scanner.pos, scanner.source)


def _flush_value(buffer: list[tuple[str, bool]], scanner: _Scanner,
                 keep_whitespace: bool) -> Optional[str]:
    """Decode the buffered text run into its final value, or ``None``.

    Text segments are (content, is_cdata) — CDATA bypasses entity
    decoding; contiguous segments are grouped so entity references
    spanning several character chunks decode as one run.
    """
    if not buffer:
        return None
    groups: list[tuple[str, bool]] = []
    for chunk, is_cdata in buffer:
        if groups and groups[-1][1] == is_cdata:
            groups[-1] = (groups[-1][0] + chunk, is_cdata)
        else:
            groups.append((chunk, is_cdata))
    decoded = "".join(
        chunk if is_cdata else _decode_entities(chunk, scanner)
        for chunk, is_cdata in groups)
    has_cdata = any(is_cdata for _chunk, is_cdata in buffer)
    buffer.clear()
    if decoded and (keep_whitespace or has_cdata or decoded.strip()):
        return (decoded if keep_whitespace or has_cdata
                else decoded.strip())
    return None


def _flush_text(node: ElementNode, buffer: list[tuple[str, bool]],
                scanner: _Scanner, keep_whitespace: bool) -> None:
    """Decode and append the buffered text run, if any."""
    value = _flush_value(buffer, scanner, keep_whitespace)
    if value is not None:
        node.append(TextNode(value))


def _open_tag(scanner: _Scanner, allow_attributes: bool) -> tuple[str, bool]:
    """Lex a start tag; returns (tag, closed) — closed for ``<a/>``."""
    scanner.expect("<")
    tag = scanner.read_name()
    _parse_attributes(scanner, allow_attributes)
    if scanner.peek(2) == "/>":
        scanner.advance(2)
        return tag, True
    scanner.expect(">")
    return tag, False


def _open_element(scanner: _Scanner, allow_attributes: bool,
                  ) -> tuple[ElementNode, bool]:
    """Parse a start tag; returns (node, closed) — closed for ``<a/>``."""
    tag, closed = _open_tag(scanner, allow_attributes)
    return ElementNode(tag), closed


def _parse_element(scanner: _Scanner, allow_attributes: bool,
                   keep_whitespace: bool) -> ElementNode:
    """Parse one element with an explicit open-element stack.

    Iterative on purpose: documents nest arbitrarily deep (the serving
    daemon accepts thousand-level documents) and must never hit the
    Python recursion limit.
    """
    root, closed = _open_element(scanner, allow_attributes)
    if closed:
        return root
    # (node, text buffer) per open element, innermost last.
    stack: list[tuple[ElementNode, list[tuple[str, bool]]]] = [(root, [])]
    while stack:
        node, buffer = stack[-1]
        if scanner.eof():
            raise XMLParseError(f"unterminated element <{node.tag}>",
                                scanner.pos, scanner.source)
        if scanner.peek(2) == "</":
            _flush_text(node, buffer, scanner, keep_whitespace)
            scanner.advance(2)
            close = scanner.read_name()
            if close != node.tag:
                raise XMLParseError(
                    f"mismatched end tag </{close}>, expected </{node.tag}>",
                    scanner.pos, scanner.source)
            scanner.skip_ws()
            scanner.expect(">")
            stack.pop()
        elif scanner.peek(4) == "<!--":
            _flush_text(node, buffer, scanner, keep_whitespace)
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.peek(9) == "<![CDATA[":
            scanner.advance(9)
            buffer.append((scanner.read_until("]]>"), True))
        elif scanner.peek(2) == "<?":
            _flush_text(node, buffer, scanner, keep_whitespace)
            scanner.advance(2)
            scanner.read_until("?>")
        elif scanner.peek() == "<":
            _flush_text(node, buffer, scanner, keep_whitespace)
            child, closed = _open_element(scanner, allow_attributes)
            node.append(child)
            if not closed:
                stack.append((child, []))
        else:
            buffer.append((scanner.advance(), False))
    return root


def parse_xml(source: str, allow_attributes: bool = False,
              keep_whitespace: bool = False) -> ElementNode:
    """Parse an XML document string into an element tree.

    >>> t = parse_xml("<class><cno>CS331</cno><title>DB</title></class>")
    >>> t.tag, t.children_tagged("cno")[0].child_text()
    ('class', 'CS331')
    """
    scanner = _Scanner(source)
    _skip_misc(scanner)
    if scanner.eof() or scanner.peek() != "<":
        raise XMLParseError("expected a root element", scanner.pos, source)
    root = _parse_element(scanner, allow_attributes, keep_whitespace)
    _skip_misc(scanner)
    if not scanner.eof():
        raise XMLParseError("trailing content after the root element",
                            scanner.pos, source)
    return root


def parse_fragment(source: str) -> Optional[ElementNode]:
    """Parse a fragment, returning ``None`` for pure whitespace."""
    if not source.strip():
        return None
    return parse_xml(source)


# -- SAX-style event mode -----------------------------------------------------
# The streaming document plane (repro.engine.stream) drives mapping
# programs straight from these events, never materialising the source
# tree.  The event loop reuses the exact lexing, text grouping and
# entity decoding of _parse_element, so a malformed document raises the
# same XMLParseError (message, line, column) in either mode.

#: Event tuples: ("start", tag) / ("text", value) / ("end", tag).
Event = tuple[str, str]


def _element_events(scanner: _Scanner, allow_attributes: bool,
                    keep_whitespace: bool):
    tag, closed = _open_tag(scanner, allow_attributes)
    yield ("start", tag)
    if closed:
        yield ("end", tag)
        return
    # One shared text buffer is enough: it is flushed at every element
    # boundary, so its contents always belong to the innermost open
    # element — exactly the per-element buffers of _parse_element.
    stack: list[str] = [tag]
    buffer: list[tuple[str, bool]] = []
    while stack:
        if scanner.eof():
            raise XMLParseError(f"unterminated element <{stack[-1]}>",
                                scanner.pos, scanner.source)
        if scanner.peek(2) == "</":
            value = _flush_value(buffer, scanner, keep_whitespace)
            if value is not None:
                yield ("text", value)
            scanner.advance(2)
            close = scanner.read_name()
            if close != stack[-1]:
                raise XMLParseError(
                    f"mismatched end tag </{close}>, expected "
                    f"</{stack[-1]}>", scanner.pos, scanner.source)
            scanner.skip_ws()
            scanner.expect(">")
            yield ("end", stack.pop())
            scanner.discard()
        elif scanner.peek(4) == "<!--":
            value = _flush_value(buffer, scanner, keep_whitespace)
            if value is not None:
                yield ("text", value)
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.peek(9) == "<![CDATA[":
            scanner.advance(9)
            buffer.append((scanner.read_until("]]>"), True))
        elif scanner.peek(2) == "<?":
            value = _flush_value(buffer, scanner, keep_whitespace)
            if value is not None:
                yield ("text", value)
            scanner.advance(2)
            scanner.read_until("?>")
        elif scanner.peek() == "<":
            value = _flush_value(buffer, scanner, keep_whitespace)
            if value is not None:
                yield ("text", value)
            tag, closed = _open_tag(scanner, allow_attributes)
            yield ("start", tag)
            if closed:
                yield ("end", tag)
            else:
                stack.append(tag)
        else:
            buffer.append((scanner.read_text_run(), False))


def _document_events(scanner: _Scanner, allow_attributes: bool,
                     keep_whitespace: bool):
    _skip_misc(scanner)
    if scanner.eof() or scanner.peek() != "<":
        raise XMLParseError("expected a root element", scanner.pos,
                            scanner.source)
    yield from _element_events(scanner, allow_attributes, keep_whitespace)
    _skip_misc(scanner)
    if not scanner.eof():
        raise XMLParseError("trailing content after the root element",
                            scanner.pos, scanner.source)


def iter_events(source: str, allow_attributes: bool = False,
                keep_whitespace: bool = False):
    """Stream a document string as SAX-style events.

    >>> list(iter_events("<a><b>x</b></a>"))
    [('start', 'a'), ('start', 'b'), ('text', 'x'), ('end', 'b'), ('end', 'a')]
    """
    return _document_events(_Scanner(source), allow_attributes,
                            keep_whitespace)


def iter_events_path(path, allow_attributes: bool = False,
                     keep_whitespace: bool = False,
                     chunk_chars: int = 1 << 16):
    """Stream a document *file* as events, reading it incrementally.

    Only a bounded window of the file is resident (the consumed prefix
    is dropped as end-tag events are emitted), so arbitrarily large
    documents parse in memory bounded by their largest text run plus
    the window chunk size.  Errors carry the same message/line/column
    as an in-memory parse of the same file.
    """
    def _generate():
        with open(path, "r") as handle:
            scanner = _StreamScanner(handle, chunk_chars)
            yield from _document_events(scanner, allow_attributes,
                                        keep_whitespace)
    return _generate()


def build_tree(events) -> ElementNode:
    """Materialise an event stream (one element's worth) into a tree.

    The inverse of :func:`iter_events`; node allocation order matches
    :func:`parse_xml` on the same document exactly (text values are
    appended at the same boundaries the tree parser flushes them).
    """
    root: Optional[ElementNode] = None
    stack: list[ElementNode] = []
    for event in events:
        kind = event[0]
        if kind == "start":
            node = ElementNode(event[1])
            if stack:
                stack[-1].append(node)
            elif root is None:
                root = node
            stack.append(node)
        elif kind == "text":
            stack[-1].append(TextNode(event[1]))
        else:  # end
            stack.pop()
            if not stack:
                break
    if root is None:
        raise ValueError("event stream contained no element")
    return root
