"""Serialisation of XML trees back to text."""

from __future__ import annotations

from repro.xtree.nodes import ElementNode, Node, TextNode

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]


def escape_text(value: str) -> str:
    for raw, cooked in _ESCAPES:
        value = value.replace(raw, cooked)
    return value


def to_string(node: Node, indent: int | None = 2, show_ids: bool = False) -> str:
    """Serialise a tree.

    ``indent=None`` produces a compact single-line form; otherwise a
    pretty-printed form with the given indent width.  ``show_ids`` adds
    ``id=`` pseudo-attributes — handy when inspecting ``idM`` mappings,
    mirroring how the paper suggests exposing ids via ``generate-id()``.
    """
    pieces: list[str] = []
    _render(node, pieces, 0, indent, show_ids)
    joiner = "\n" if indent is not None else ""
    return joiner.join(pieces)


def _render(node: Node, out: list[str], depth: int, indent: int | None,
            show_ids: bool) -> None:
    pad = " " * (indent * depth) if indent is not None else ""
    if isinstance(node, TextNode):
        out.append(pad + escape_text(node.value))
        return
    assert isinstance(node, ElementNode)
    attr = f' id="{node.node_id}"' if show_ids else ""
    if not node.children:
        out.append(f"{pad}<{node.tag}{attr}/>")
        return
    only_text = all(isinstance(c, TextNode) for c in node.children)
    if only_text:
        body = "".join(escape_text(c.value) for c in node.children
                       if isinstance(c, TextNode))
        out.append(f"{pad}<{node.tag}{attr}>{body}</{node.tag}>")
        return
    out.append(f"{pad}<{node.tag}{attr}>")
    for child in node.children:
        _render(child, out, depth + 1, indent, show_ids)
    out.append(f"{pad}</{node.tag}>")
