"""Serialisation of XML trees back to text.

Rendering is iterative (explicit work stack over a single preallocated
output buffer): deep documents — thousands of nesting levels — must
serialize without touching the Python recursion limit, and the serving
daemon calls this once per mapped document.
"""

from __future__ import annotations

from repro.xtree.nodes import ElementNode, Node, TextNode

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]


def escape_text(value: str) -> str:
    for raw, cooked in _ESCAPES:
        value = value.replace(raw, cooked)
    return value


def iter_serialized(node: Node, indent: int | None = 2,
                    show_ids: bool = False, depth: int = 0):
    """Yield the serialised pieces of ``node`` one line at a time.

    ``"\\n".join(iter_serialized(...))`` (or ``"".join`` for
    ``indent=None``) equals :func:`to_string` on the same node.  The
    ``depth`` offset lets the streaming executor emit a fragment as if
    it sat ``depth`` levels inside an enclosing document, with every
    line padded accordingly — the fragment's bytes land identical to
    the same subtree serialised in place.
    """
    pieces: list[str] = []
    append = pieces.append
    # Work stack: (node, depth) to open, or (close_text, None) markers
    # pushed beneath a node's children.
    stack: list[tuple] = [(node, depth)]
    pad_cache: dict[int, str] = {}
    while stack:
        # Batched yields keep generator overhead off the per-line hot
        # path while still bounding the buffer for huge documents.
        if len(pieces) >= 64:
            yield from pieces
            pieces.clear()
        item, depth = stack.pop()
        if depth is None:
            append(item)  # prebuilt closing tag line
            continue
        if indent is not None:
            pad = pad_cache.get(depth)
            if pad is None:
                pad = " " * (indent * depth)
                pad_cache[depth] = pad
        else:
            pad = ""
        if isinstance(item, TextNode):
            append(pad + escape_text(item.value))
            continue
        assert isinstance(item, ElementNode)
        attr = f' id="{item.node_id}"' if show_ids else ""
        children = item.children
        if not children:
            append(f"{pad}<{item.tag}{attr}/>")
            continue
        only_text = True
        for child in children:
            if not isinstance(child, TextNode):
                only_text = False
                break
        if only_text:
            body = "".join(escape_text(child.value) for child in children)
            append(f"{pad}<{item.tag}{attr}>{body}</{item.tag}>")
            continue
        append(f"{pad}<{item.tag}{attr}>")
        stack.append((f"{pad}</{item.tag}>", None))
        for child in reversed(children):
            stack.append((child, depth + 1))
    yield from pieces


def to_string(node: Node, indent: int | None = 2, show_ids: bool = False) -> str:
    """Serialise a tree.

    ``indent=None`` produces a compact single-line form; otherwise a
    pretty-printed form with the given indent width.  ``show_ids`` adds
    ``id=`` pseudo-attributes — handy when inspecting ``idM`` mappings,
    mirroring how the paper suggests exposing ids via ``generate-id()``.
    """
    joiner = "\n" if indent is not None else ""
    return joiner.join(iter_serialized(node, indent, show_ids))
