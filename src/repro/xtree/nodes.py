"""Node and tree classes for XML instances (paper Section 2.1).

The paper's data model:

* an instance ``T`` of a DTD is an ordered, node-labelled tree;
* each node is labelled with an element type (an *element*) or with
  ``str`` (a *text node* carrying a PCDATA string value);
* every node ``v`` has a distinct node id ``id(v)`` from a countably
  infinite set ``U``; ``dom(T)`` is the set of ids of ``T``;
* two trees are *equal* (``T1 = T2``) when they are isomorphic by an
  isomorphism that is the identity on string values — i.e. identical
  shape, tags and strings, with node ids ignored.

Node ids matter because query answers contain ids (Section 2.2) and the
``idM`` mapping of an instance mapping relates target ids to source ids
(Section 2.3).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Union

_id_counter = itertools.count(1)


def fresh_id() -> int:
    """Return a new node id, unique across the process (the set ``U``)."""
    return next(_id_counter)


class Node:
    """Common base for element and text nodes."""

    __slots__ = ("node_id", "parent")

    def __init__(self, node_id: Optional[int] = None) -> None:
        self.node_id: int = fresh_id() if node_id is None else node_id
        self.parent: Optional[ElementNode] = None

    # -- structure ----------------------------------------------------
    def is_text(self) -> bool:
        raise NotImplementedError

    def root(self) -> "Node":
        """Walk parent pointers up to the root."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["ElementNode"]:
        """Yield proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        """Number of proper ancestors."""
        return sum(1 for _ in self.ancestors())


class TextNode(Node):
    """A leaf carrying a PCDATA string value.

    Text nodes carry node ids too (Section 2.1: "a text node is also
    associated with a node id and it carries PCDATA").
    """

    __slots__ = ("value",)

    def __init__(self, value: str, node_id: Optional[int] = None) -> None:
        super().__init__(node_id)
        self.value = value

    def is_text(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TextNode({self.value!r}, id={self.node_id})"


class ElementNode(Node):
    """An element with a tag and an ordered child list."""

    __slots__ = ("tag", "children")

    def __init__(self, tag: str, children: Optional[list[Node]] = None,
                 node_id: Optional[int] = None) -> None:
        super().__init__(node_id)
        self.tag = tag
        self.children: list[Node] = []
        for child in children or []:
            self.append(child)

    def is_text(self) -> bool:
        return False

    # -- mutation -----------------------------------------------------
    def append(self, child: Node) -> Node:
        """Append ``child`` and set its parent pointer."""
        child.parent = self
        self.children.append(child)
        return child

    def insert(self, index: int, child: Node) -> Node:
        child.parent = self
        self.children.insert(index, child)
        return child

    def replace_child(self, old: Node, new: Node) -> None:
        """Replace ``old`` with ``new`` in place (same position)."""
        index = self.children.index(old)
        new.parent = self
        self.children[index] = new
        old.parent = None

    # -- navigation ---------------------------------------------------
    def element_children(self) -> list["ElementNode"]:
        return [c for c in self.children if isinstance(c, ElementNode)]

    def text_children(self) -> list[TextNode]:
        return [c for c in self.children if isinstance(c, TextNode)]

    def children_tagged(self, tag: str) -> list["ElementNode"]:
        """Element children with the given tag, in document order."""
        return [c for c in self.children
                if isinstance(c, ElementNode) and c.tag == tag]

    def child_text(self) -> Optional[str]:
        """The string value of the first text child, if any."""
        for child in self.children:
            if isinstance(child, TextNode):
                return child.value
        return None

    def iter(self) -> Iterator[Node]:
        """Pre-order traversal of the subtree rooted here (document order)."""
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ElementNode):
                stack.extend(reversed(node.children))

    def iter_elements(self) -> Iterator["ElementNode"]:
        for node in self.iter():
            if isinstance(node, ElementNode):
                yield node

    def find_by_id(self, node_id: int) -> Optional[Node]:
        for node in self.iter():
            if node.node_id == node_id:
                return node
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ElementNode(<{self.tag}>, id={self.node_id}, {len(self.children)} children)"


#: An XML tree is identified with its root element.
XMLTree = ElementNode


# -- constructors ------------------------------------------------------

def elem(tag: str, *children: Union[Node, str]) -> ElementNode:
    """Build an element; string arguments become text nodes.

    >>> t = elem("class", elem("cno", "CS331"), elem("title", "DB"))
    >>> [c.tag for c in t.element_children()]
    ['cno', 'title']
    """
    node = ElementNode(tag)
    for child in children:
        node.append(TextNode(child) if isinstance(child, str) else child)
    return node


def text(value: str) -> TextNode:
    """Build a text node."""
    return TextNode(value)


# -- equality and utilities -------------------------------------------

def tree_equal(t1: Node, t2: Node) -> bool:
    """The paper's tree equality ``T1 = T2`` (Section 2.1).

    Isomorphism that is the identity on string values: same labels, same
    child lists pairwise-equal, same PCDATA.  Node ids are ignored.
    Iterative, so arbitrarily deep documents compare safely.
    """
    stack: list[tuple[Node, Node]] = [(t1, t2)]
    while stack:
        n1, n2 = stack.pop()
        if isinstance(n1, TextNode):
            if not isinstance(n2, TextNode) or n1.value != n2.value:
                return False
            continue
        if not isinstance(n1, ElementNode) or not isinstance(n2, ElementNode):
            return False
        if n1.tag != n2.tag or len(n1.children) != len(n2.children):
            return False
        stack.extend(zip(n1.children, n2.children))
    return True


def tree_size(t: Node) -> int:
    """Number of nodes (elements and text nodes) in the subtree
    (iterative: deep documents must not recurse)."""
    count = 0
    stack: list[Node] = [t]
    while stack:
        node = stack.pop()
        count += 1
        if isinstance(node, ElementNode):
            stack.extend(node.children)
    return count


def document_order(root: ElementNode) -> dict[int, int]:
    """Map node id -> pre-order index, for document-order sorting."""
    return {node.node_id: index for index, node in enumerate(root.iter())}


def copy_tree(t: Node, fresh_ids: bool = True) -> Node:
    """Deep-copy a subtree; by default the copy gets fresh node ids.
    Iterative (explicit stack), so deep documents copy safely."""
    if isinstance(t, TextNode):
        return TextNode(t.value, node_id=None if fresh_ids else t.node_id)
    assert isinstance(t, ElementNode)
    root = ElementNode(t.tag, node_id=None if fresh_ids else t.node_id)
    stack: list[tuple[ElementNode, ElementNode]] = [(t, root)]
    while stack:
        source, copy = stack.pop()
        for child in source.children:
            if isinstance(child, TextNode):
                copy.append(TextNode(
                    child.value, node_id=None if fresh_ids else child.node_id))
            else:
                assert isinstance(child, ElementNode)
                twin = ElementNode(
                    child.tag, node_id=None if fresh_ids else child.node_id)
                copy.append(twin)
                stack.append((child, twin))
        # Children were appended in document order; deeper levels fill in
        # as their frames pop — order within each parent is preserved.
    return root


def dom(root: ElementNode) -> set[int]:
    """``dom(T)``: the set of node ids occurring in the tree."""
    return {node.node_id for node in root.iter()}
