"""Render a stylesheet to ``<xsl:stylesheet>`` text (Section 4.3).

The output matches the shape of the paper's Examples 4.5/4.6 and is
valid XSLT 1.0 for the constructs used (template rules, modes,
apply-templates with select).  The engine consumes the in-memory model
directly; this renderer exists for inspection, documentation and
interoperability with external processors.
"""

from __future__ import annotations

from repro.xslt.model import (
    OutApply,
    OutElem,
    OutItem,
    OutText,
    Stylesheet,
    TemplateRule,
)
from repro.xtree.serialize import escape_text

_HEADER = ('<xsl:stylesheet version="1.0" '
           'xmlns:xsl="http://www.w3.org/1999/XSL/Transform">')


def stylesheet_to_xslt(sheet: Stylesheet) -> str:
    """Serialise the rule set.

    >>> from repro.xslt.model import Pattern, TemplateRule, OutElem
    >>> s = Stylesheet(); _ = s.add(TemplateRule(Pattern("a"), [OutElem("b")]))
    >>> print(stylesheet_to_xslt(s))  # doctest: +ELLIPSIS
    <xsl:stylesheet version="1.0" ...>
      <xsl:template match="a">
        <b/>
      </xsl:template>
    </xsl:stylesheet>
    """
    lines = [_HEADER]
    for rule in sheet.rules:
        lines.extend(_render_rule(rule))
    lines.append("</xsl:stylesheet>")
    return "\n".join(lines)


def _render_rule(rule: TemplateRule) -> list[str]:
    mode = f' mode="{rule.mode}"' if rule.mode else ""
    lines = [f'  <xsl:template match="{rule.match}"{mode}>']
    for item in rule.output:
        lines.extend(_render_item(item, depth=2))
    lines.append("  </xsl:template>")
    return lines


def _render_item(item: OutItem, depth: int) -> list[str]:
    pad = "  " * depth
    if isinstance(item, OutText):
        return [pad + escape_text(item.value)]
    if isinstance(item, OutApply):
        mode = f' mode="{item.mode}"' if item.mode else ""
        return [f'{pad}<xsl:apply-templates select="{item.select}"{mode}/>']
    assert isinstance(item, OutElem)
    if not item.children:
        return [f"{pad}<{item.tag}/>"]
    if len(item.children) == 1 and isinstance(item.children[0], OutText):
        body = escape_text(item.children[0].value)
        return [f"{pad}<{item.tag}>{body}</{item.tag}>"]
    lines = [f"{pad}<{item.tag}>"]
    for child in item.children:
        lines.extend(_render_item(child, depth + 1))
    lines.append(f"{pad}</{item.tag}>")
    return lines
