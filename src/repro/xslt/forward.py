"""XSLT code generation for ``σd`` (Section 4.3, "An XSLT Template for σd").

One or more template rules per source production, following the paper:

1. ``P1(A) = B1,…,Bn`` — one rule ``match=A`` whose body is the
   constant production-fragment skeleton with an apply-templates node
   per hot leaf (Example 4.6's ``class → course`` template);
2. ``P1(A) = B1+…+Bn`` — one rule per alternative, ``match=A[Bi]``,
   whose body is the ``path(A,Bi)`` skeleton (Example 4.6's two
   ``type`` templates); an optional type additionally gets a bare
   fallback rule emitting the default completion;
3. ``P1(A) = B*`` — a *prefix* rule (``match=A``) building
   ``λ(A)/C1/…/Ck`` with ``apply-templates select=B mode=M-A`` under
   the star node, and a *suffix* rule (``match=B mode=M-A``) building
   ``Ck+1/…/Cn`` with ``apply-templates select="."`` at the bottom
   (Example 4.6's ``db`` prefix/suffix pair);
4. ``P1(A) = str`` — like (1) with the path's endpoint holding
   ``apply-templates select=text()`` (the built-in rule copies the
   text node).

Mindef padding is inlined into the rule bodies as literal fragments —
exactly what Example 4.6 shows (``<credit> #s </credit>``).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.embedding import STR_KEY, SchemaEmbedding
from repro.core.errors import EmbeddingError
from repro.dtd.mindef import DEFAULT_STRING, MinDef
from repro.dtd.model import (
    Concat,
    Disjunction,
    EdgeKind,
    Empty,
    Star,
    Str,
)
from repro.xpath.paths import PathInfo, PathStep, XRPath
from repro.xslt.model import (
    OutApply,
    OutElem,
    OutItem,
    OutText,
    Pattern,
    Select,
    Stylesheet,
    TemplateRule,
)
from repro.xtree.nodes import ElementNode, TextNode


def _mindef_out(mindef: MinDef, element_type: str) -> OutElem:
    """Convert a mindef template tree into literal output items."""
    def convert(node: ElementNode) -> OutElem:
        out = OutElem(node.tag)
        for child in node.children:
            if isinstance(child, TextNode):
                out.append(OutText(child.value))
            else:
                out.append(convert(child))
        return out

    return convert(mindef.template(element_type))


class _Skeleton:
    """A schema-level production fragment over output items.

    Mirrors the slot bookkeeping of
    :class:`repro.core.instmap._FragmentBuilder`, but the hot leaves
    hold apply-templates nodes and the padding is inlined literally.
    """

    def __init__(self, embedding: SchemaEmbedding, mindef: MinDef,
                 root_tag: str) -> None:
        self.embedding = embedding
        self.target = embedding.target
        self.mindef = mindef
        self.root = OutElem(root_tag)
        self.slots: dict[int, dict[Hashable, OutItem]] = {id(self.root): {}}

    def _slot_key(self, parent: OutElem, step: PathStep, kind: EdgeKind,
                  star_slot: Optional[int]) -> Hashable:
        production = self.target.production(parent.tag)
        if kind is EdgeKind.AND:
            assert isinstance(production, Concat)
            occ = step.pos if step.pos is not None else 1
            return ("c", production.index_of_occurrence(step.label, occ))
        if kind is EdgeKind.OR:
            return ("o",)
        if step.pos is not None:
            return ("s", step.pos)
        if star_slot is None:
            raise EmbeddingError(f"unpinned star step {step} in a skeleton")
        return ("s", star_slot)

    def add_path(self, steps: tuple[PathStep, ...], kinds: tuple[EdgeKind, ...],
                 payload: OutItem, star_slot: Optional[int] = None) -> None:
        """Create the chain for ``steps[:-1]`` and put ``payload`` at the
        final step's slot (the hot position)."""
        assert steps, "paths are nonempty"
        node = self.root
        for index, (step, kind) in enumerate(zip(steps, kinds)):
            slot_map = self.slots[id(node)]
            key = self._slot_key(node, step, kind, star_slot)
            last = index == len(steps) - 1
            if last:
                if key in slot_map:
                    raise EmbeddingError(
                        f"slot for {step} already used (prefix conflict)")
                slot_map[key] = payload
                return
            existing = slot_map.get(key)
            if existing is not None:
                assert isinstance(existing, OutElem)
                node = existing
                continue
            child = OutElem(step.label)
            slot_map[key] = child
            self.slots[id(child)] = {}
            node = child

    def add_text_path(self, steps: tuple[PathStep, ...],
                      kinds: tuple[EdgeKind, ...], payload: OutItem) -> None:
        """Walk *all* element steps; attach ``payload`` as the endpoint's
        text content (case 4: ``path(A, str)``)."""
        node = self.root
        for step, kind in zip(steps, kinds):
            slot_map = self.slots[id(node)]
            key = self._slot_key(node, step, kind, None)
            existing = slot_map.get(key)
            if existing is None:
                child = OutElem(step.label)
                slot_map[key] = child
                self.slots[id(child)] = {}
                node = child
            else:
                assert isinstance(existing, OutElem)
                node = existing
        self.slots[id(node)][("t",)] = payload

    # ------------------------------------------------------------------
    def finish(self) -> OutElem:
        self._complete(self.root)
        return self.root

    def _complete(self, node: OutElem) -> None:
        slot_map = self.slots.get(id(node))
        if slot_map is None:
            return  # literal mindef or payload
        production = self.target.production(node.tag)
        ordered: list[OutItem] = []

        if isinstance(production, Str):
            payload = slot_map.get(("t",))
            node.children = [payload if payload is not None
                             else OutText(DEFAULT_STRING)]
            return
        if isinstance(production, Empty):
            node.children = []
            return
        if isinstance(production, Concat):
            for index, child_type in enumerate(production.children):
                child = slot_map.get(("c", index))
                if child is None:
                    child = _mindef_out(self.mindef, child_type)
                ordered.append(child)
        elif isinstance(production, Disjunction):
            child = slot_map.get(("o",))
            if child is None:
                choice = self.mindef.default_choice[node.tag]
                if choice is not None:
                    child = _mindef_out(self.mindef, choice)
            if child is not None:
                ordered.append(child)
        elif isinstance(production, Star):
            positions = sorted(key[1] for key in slot_map)  # type: ignore[index]
            if positions:
                top = max(positions)
                for position in range(1, top + 1):
                    child = slot_map.get(("s", position))
                    if child is None:
                        child = _mindef_out(self.mindef, production.child)
                    ordered.append(child)

        node.children = ordered
        for child in ordered:
            if isinstance(child, OutElem):
                self._complete(child)


def _select_step(label: str, occ: Optional[int]) -> Select:
    return Select(XRPath((PathStep(label, occ),)))


def forward_stylesheet(embedding: SchemaEmbedding,
                       validate: bool = True) -> Stylesheet:
    """Generate the σd stylesheet for a valid embedding (Section 4.3).

    Running it through :func:`repro.xslt.engine.apply_stylesheet` yields
    the same tree as InstMap (modulo node ids) — see
    ``tests/test_xslt_forward.py``.
    """
    if validate:
        embedding.check()
    mindef = MinDef(embedding.target)
    sheet = Stylesheet()
    lam = embedding.lam

    for source_type, production in embedding.source.elements.items():
        image = lam[source_type]
        if isinstance(production, Concat):
            skeleton = _Skeleton(embedding, mindef, image)
            seen: dict[str, int] = {}
            for child in production.children:
                seen[child] = seen.get(child, 0) + 1
                info = embedding.info((source_type, child, seen[child]))
                repeated = production.occurrence_count(child) > 1
                payload = OutApply(_select_step(
                    child, seen[child] if repeated else None))
                skeleton.add_path(info.path.steps,
                                  tuple(e.kind for e in info.edges), payload)
            sheet.add(TemplateRule(Pattern(source_type), [skeleton.finish()],
                                   name=f"fwd-{source_type}"))
        elif isinstance(production, Disjunction):
            bare_needed = production.optional or len(production.children) > 1
            for child in production.children:
                info = embedding.info((source_type, child, 1))
                skeleton = _Skeleton(embedding, mindef, image)
                skeleton.add_path(info.path.steps,
                                  tuple(e.kind for e in info.edges),
                                  OutApply(_select_step(child, None)))
                pattern = (Pattern(source_type, XRPath((PathStep(child),)))
                           if bare_needed else Pattern(source_type))
                sheet.add(TemplateRule(pattern, [skeleton.finish()],
                                       name=f"fwd-{source_type}-{child}"))
            if production.optional:
                # ε alternative: emit the pure default completion.
                skeleton = _Skeleton(embedding, mindef, image)
                sheet.add(TemplateRule(Pattern(source_type),
                                       [skeleton.finish()],
                                       name=f"fwd-{source_type}-eps"))
        elif isinstance(production, Star):
            info = embedding.info((source_type, production.child, 1))
            carrier = info.carrier_index
            mode = f"M-{source_type}"
            kinds = tuple(e.kind for e in info.edges)
            # Prefix rule: λ(A)/C1/…/Ck with the apply node under Ck.
            skeleton = _Skeleton(embedding, mindef, image)
            prefix_steps = info.path.steps[:carrier + 1]
            skeleton.add_path(prefix_steps, kinds[:carrier + 1],
                              OutApply(_select_step(production.child, None),
                                       mode=mode),
                              star_slot=1)
            sheet.add(TemplateRule(Pattern(source_type), [skeleton.finish()],
                                   name=f"fwd-{source_type}-prefix"))
            # Suffix rule: Ck+1/…/Cn with apply-templates select=".".
            suffix_steps = info.path.steps[carrier:]
            apply_self = OutApply(Select(None))
            if len(suffix_steps) == 1:
                body: list[OutItem] = [apply_self]
            else:
                inner = _Skeleton(embedding, mindef, suffix_steps[0].label)
                inner.add_path(suffix_steps[1:], kinds[carrier + 1:],
                               apply_self)
                body = [inner.finish()]
            sheet.add(TemplateRule(Pattern(production.child), body, mode=mode,
                                   name=f"fwd-{source_type}-suffix"))
        elif isinstance(production, Str):
            info = embedding.info((source_type, STR_KEY, 1))
            skeleton = _Skeleton(embedding, mindef, image)
            skeleton.add_text_path(info.path.steps,
                                   tuple(e.kind for e in info.edges),
                                   OutApply(Select(XRPath((), text=True))))
            sheet.add(TemplateRule(Pattern(source_type), [skeleton.finish()],
                                   name=f"fwd-{source_type}"))
        elif isinstance(production, Empty):
            skeleton = _Skeleton(embedding, mindef, image)
            sheet.add(TemplateRule(Pattern(source_type), [skeleton.finish()],
                                   name=f"fwd-{source_type}"))
    return sheet
