"""An XSLT subset: model, engine, and stylesheet generators (Section 4.3).

The paper expresses both the instance mapping ``σd`` and its inverse
``σd⁻¹`` as XSLT stylesheets in a simplified processing model: a
stylesheet is a set of template rules ``(match, mode, output)`` whose
output fragments contain *apply-templates* leaves ``(select, mode)``.
This package implements:

* :mod:`repro.xslt.model` — template rules, patterns, output fragments;
* :mod:`repro.xslt.engine` — the Section 4.3 processing model
  (worklist of context nodes, dummy-node substitution);
* :mod:`repro.xslt.forward` — the stylesheet for ``σd`` (cases 1–4:
  concatenation / disjunction / star prefix+suffix with modes / str);
* :mod:`repro.xslt.inverse` — the stylesheet for ``σd⁻¹`` (``invt(C)``,
  with one mode per *source* type — refinement R5 — so non-injective λ
  stays unambiguous);
* :mod:`repro.xslt.serialize` — rendering to ``<xsl:stylesheet>`` text.

Tests verify that running the generated stylesheets on the engine
agrees with :mod:`repro.core.instmap` / :mod:`repro.core.inverse`.
"""

from repro.xslt.model import (
    OutApply,
    OutElem,
    OutItem,
    OutText,
    Pattern,
    Select,
    Stylesheet,
    TemplateRule,
)
from repro.xslt.engine import XSLTError, apply_stylesheet
from repro.xslt.forward import forward_stylesheet
from repro.xslt.inverse import inverse_stylesheet
from repro.xslt.serialize import stylesheet_to_xslt

__all__ = [
    "OutApply",
    "OutElem",
    "OutItem",
    "OutText",
    "Pattern",
    "Select",
    "Stylesheet",
    "TemplateRule",
    "XSLTError",
    "apply_stylesheet",
    "forward_stylesheet",
    "inverse_stylesheet",
    "stylesheet_to_xslt",
]
