"""XSLT code generation for ``σd⁻¹`` (Section 4.3, ``invt(C)``).

One or more rules per source type ``A`` (with ``C = λ(A)``):

1. ``P1(A) = B1,…,Bn`` — a rule whose output root is ``<A>`` with one
   apply-templates child per ``Bi``, ``select = path(A, Bi)``
   (Example 4.5's ``course → class`` template);
2. ``P1(A) = B1+…+Bn`` — ``n`` rules with match condition
   ``C[path(A,Bi)]`` (Example 4.5's two ``category`` templates); an
   optional type gets an additional bare fallback emitting ``<A/>``;
3. ``P1(A) = B*`` — a single rule whose apply-templates select is
   ``path(A, B)`` with the multiplicity carrier unpinned, returning all
   instances in order;
4. ``P1(A) = str`` — a single rule selecting the text path (the
   engine's built-in text rule copies the value).

**Refinement R5**: the paper uses one global mode ``MDATA``; when λ is
not injective (allowed — Fig. 3(c)) two source types share a target tag
and their templates would collide.  We give each source type its own
mode ``inv-A``; every apply-templates names the child's mode, so
dispatch is exact.  For injective λ this degenerates to the paper's
scheme (modes are then redundant).
"""

from __future__ import annotations

from repro.core.embedding import STR_KEY, SchemaEmbedding
from repro.dtd.model import (
    Concat,
    Disjunction,
    Empty,
    Star,
    Str,
)
from repro.xslt.model import (
    OutApply,
    OutElem,
    Pattern,
    Select,
    Stylesheet,
    TemplateRule,
)


def _mode(source_type: str) -> str:
    return f"inv-{source_type}"


def inverse_stylesheet(embedding: SchemaEmbedding,
                       validate: bool = True) -> Stylesheet:
    """Generate the σd⁻¹ stylesheet (Section 4.3).

    Running it on ``σd(T)`` reproduces ``T`` — see
    ``tests/test_xslt_inverse.py``.
    """
    if validate:
        embedding.check()
    sheet = Stylesheet(initial_mode=_mode(embedding.source.root))
    lam = embedding.lam

    for source_type, production in embedding.source.elements.items():
        image = lam[source_type]
        mode = _mode(source_type)
        if isinstance(production, Concat):
            root = OutElem(source_type)
            seen: dict[str, int] = {}
            for child in production.children:
                seen[child] = seen.get(child, 0) + 1
                info = embedding.info((source_type, child, seen[child]))
                root.append(OutApply(Select(info.path), mode=_mode(child)))
            sheet.add(TemplateRule(Pattern(image), [root], mode=mode,
                                   name=f"inv-{source_type}"))
        elif isinstance(production, Disjunction):
            for child in production.children:
                info = embedding.info((source_type, child, 1))
                root = OutElem(source_type)
                root.append(OutApply(Select(info.path), mode=_mode(child)))
                sheet.add(TemplateRule(
                    Pattern(image, qualifier=info.path), [root], mode=mode,
                    name=f"inv-{source_type}-{child}"))
            if production.optional:
                sheet.add(TemplateRule(
                    Pattern(image), [OutElem(source_type)], mode=mode,
                    name=f"inv-{source_type}-eps"))
        elif isinstance(production, Star):
            info = embedding.info((source_type, production.child, 1))
            root = OutElem(source_type)
            root.append(OutApply(Select(info.path),
                                 mode=_mode(production.child)))
            sheet.add(TemplateRule(Pattern(image), [root], mode=mode,
                                   name=f"inv-{source_type}"))
        elif isinstance(production, Str):
            info = embedding.info((source_type, STR_KEY, 1))
            root = OutElem(source_type)
            # Select ends in text(); the built-in rule copies the node.
            root.append(OutApply(Select(info.path), mode=None))
            sheet.add(TemplateRule(Pattern(image), [root], mode=mode,
                                   name=f"inv-{source_type}"))
        elif isinstance(production, Empty):
            sheet.add(TemplateRule(Pattern(image), [OutElem(source_type)],
                                   mode=mode, name=f"inv-{source_type}"))
    return sheet
