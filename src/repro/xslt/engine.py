"""The XSLT processing model (Section 4.3, after [Wadler 2000]).

Processing revolves around context nodes: a rule matching the context
node is instantiated; each apply-templates leaf evaluates its select
expression against the context node, and the resulting source nodes are
processed recursively (in order), their outputs splicing into the
fragment.  The recursion here is exactly the paper's worklist ``C`` of
(source node, dummy target node) pairs.

A built-in rule copies text nodes (the paper adds "a template that
matches a text node and generates a copy of that node"); any other
unmatched node is an error — the generated stylesheets are total over
their schemas, so a miss indicates a bug or a non-conforming document.
"""

from __future__ import annotations

from typing import Optional

from repro.xslt.model import (
    OutApply,
    OutElem,
    OutItem,
    OutText,
    Stylesheet,
    select_nodes,
)
from repro.xtree.nodes import ElementNode, Node, TextNode


class XSLTError(ValueError):
    """No rule matched, or the output was not a single element."""


class _Engine:
    def __init__(self, stylesheet: Stylesheet) -> None:
        self.stylesheet = stylesheet

    def process(self, node: Node, mode: Optional[str]) -> list[Node]:
        rule = self.stylesheet.find(node, mode)
        if rule is None:
            if isinstance(node, TextNode):
                return [TextNode(node.value)]  # built-in text copy
            raise XSLTError(
                f"no template matches <{getattr(node, 'tag', '?')}> "
                f"in mode {mode!r}")
        if isinstance(node, TextNode):
            return self._instantiate_forest(rule.output, None)
        assert isinstance(node, ElementNode)
        return self._instantiate_forest(rule.output, node)

    def _instantiate_forest(self, items: list[OutItem],
                            context: Optional[ElementNode]) -> list[Node]:
        out: list[Node] = []
        for item in items:
            out.extend(self._instantiate(item, context))
        return out

    def _instantiate(self, item: OutItem,
                     context: Optional[ElementNode]) -> list[Node]:
        if isinstance(item, OutText):
            return [TextNode(item.value)]
        if isinstance(item, OutElem):
            element = ElementNode(item.tag)
            for child in self._instantiate_forest(item.children, context):
                element.append(child)
            return [element]
        assert isinstance(item, OutApply)
        if context is None:
            raise XSLTError("apply-templates inside a text-node template")
        selected = select_nodes(context, item.select)
        out: list[Node] = []
        for node in selected:
            out.extend(self.process(node, item.mode))
        return out


def apply_stylesheet(stylesheet: Stylesheet, source_root: ElementNode,
                     ) -> ElementNode:
    """Run the stylesheet; the result must be a single element tree."""
    forest = _Engine(stylesheet).process(source_root,
                                         stylesheet.initial_mode)
    elements = [n for n in forest if isinstance(n, ElementNode)]
    if len(elements) != 1 or len(forest) != 1:
        raise XSLTError(
            f"stylesheet produced {len(forest)} top-level nodes, "
            "expected exactly one element")
    return elements[0]
