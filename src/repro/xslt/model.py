"""The XSLT-subset data model (Section 4.3).

A stylesheet ``X`` is a set of template rules ``r = (match(r), mode(r),
output(r))``:

* ``match`` — a *pattern*: an element tag (optionally with an
  existence qualifier, e.g. ``category[mandatory/regular]``) or
  ``text()``;
* ``mode`` — a symbol partitioning the rules; ``None`` is the default
  mode.  The star-edge construction uses per-type modes (``M-db`` in
  Example 4.6) and the inverse stylesheet uses one mode per source
  type (refinement R5);
* ``output`` — a forest of literal elements/text with
  *apply-templates* leaves ``(select, mode)``.

Selects are XR paths (child steps with optional positions, optionally
ending in ``text()``) or ``.`` (self) — exactly the forms the paper's
constructions emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.xpath.paths import XRPath
from repro.xtree.nodes import ElementNode, Node, TextNode

#: Pseudo-tag for text-node patterns.
TEXT_PATTERN = "#text"


@dataclass(frozen=True)
class Pattern:
    """A match pattern: tag (or ``text()``) plus an optional qualifier
    path whose non-empty evaluation gates the match."""

    tag: str
    qualifier: Optional[XRPath] = None

    def matches(self, node: Node) -> bool:
        if isinstance(node, TextNode):
            return self.tag == TEXT_PATTERN
        assert isinstance(node, ElementNode)
        if node.tag != self.tag:
            return False
        if self.qualifier is None:
            return True
        return bool(_select_nodes(node, Select(self.qualifier)))

    @property
    def specificity(self) -> int:
        """Qualified patterns beat bare ones (XSLT default priorities)."""
        return 1 if self.qualifier is not None else 0

    def __str__(self) -> str:
        if self.tag == TEXT_PATTERN:
            return "text()"
        if self.qualifier is None:
            return self.tag
        return f"{self.tag}[{self.qualifier}]"


@dataclass(frozen=True)
class Select:
    """An apply-templates select expression: an XR path or ``.``."""

    path: Optional[XRPath] = None  # None = self (".")

    def __str__(self) -> str:
        return "." if self.path is None else str(self.path)


def _select_nodes(context: ElementNode, select: Select) -> list[Node]:
    """Evaluate a select against a context node, returning *nodes*
    (including text nodes, which the evaluator proper renders as
    strings — the engine needs their identity to copy them)."""
    if select.path is None:
        return [context]
    frontier: list[ElementNode] = [context]
    for step in select.path.steps:
        new_frontier: list[ElementNode] = []
        for node in frontier:
            matches = node.children_tagged(step.label)
            if step.pos is not None:
                matches = (matches[step.pos - 1:step.pos]
                           if len(matches) >= step.pos else [])
            new_frontier.extend(matches)
        frontier = new_frontier
    if select.path.text:
        out: list[Node] = []
        for node in frontier:
            out.extend(c for c in node.children if isinstance(c, TextNode))
        return out
    return list(frontier)


# -- output fragments -------------------------------------------------------

class OutItem:
    """Base class of output-fragment items."""


@dataclass
class OutElem(OutItem):
    """A literal element with child items."""

    tag: str
    children: list[OutItem] = field(default_factory=list)

    def append(self, item: OutItem) -> OutItem:
        self.children.append(item)
        return item


@dataclass
class OutText(OutItem):
    """A literal text node."""

    value: str


@dataclass
class OutApply(OutItem):
    """An apply-templates node ``(select, mode)``."""

    select: Select
    mode: Optional[str] = None


@dataclass
class TemplateRule:
    """``(match, mode, output)`` — one template rule."""

    match: Pattern
    output: list[OutItem]
    mode: Optional[str] = None
    name: str = ""

    def __str__(self) -> str:
        mode = f" mode={self.mode!r}" if self.mode else ""
        return f"template match={self.match}{mode}"


@dataclass
class Stylesheet:
    """An ordered rule set with XSLT-style most-specific-first dispatch."""

    rules: list[TemplateRule] = field(default_factory=list)
    #: mode used for the initial context node
    initial_mode: Optional[str] = None

    def add(self, rule: TemplateRule) -> TemplateRule:
        self.rules.append(rule)
        return rule

    def find(self, node: Node, mode: Optional[str]) -> Optional[TemplateRule]:
        """The matching rule: highest specificity, then declaration order."""
        best: Optional[TemplateRule] = None
        for rule in self.rules:
            if rule.mode != mode:
                continue
            if not rule.match.matches(node):
                continue
            if best is None or rule.match.specificity > best.match.specificity:
                best = rule
        return best

    def __len__(self) -> int:
        return len(self.rules)


def select_nodes(context: ElementNode, select: Select) -> list[Node]:
    """Public wrapper used by the engine."""
    return _select_nodes(context, select)
