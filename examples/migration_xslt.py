"""Data migration with generated XSLT (Section 4.3).

Generates the σd and σd⁻¹ stylesheets for the school embedding, prints
them (they match the shapes of Examples 4.5/4.6), executes them on the
bundled XSLT engine, and round-trips a document — the "migrate now,
roll back later" scenario of Section 4.5.

Run:  python examples/migration_xslt.py
"""

from repro.dtd.generate import random_instance
from repro.dtd.validate import validate
from repro.workloads.library import school_example
from repro.xslt.engine import apply_stylesheet
from repro.xslt.forward import forward_stylesheet
from repro.xslt.inverse import inverse_stylesheet
from repro.xslt.serialize import stylesheet_to_xslt
from repro.xtree.nodes import tree_equal, tree_size


def main() -> None:
    bundle = school_example()
    forward = forward_stylesheet(bundle.sigma1)
    inverse = inverse_stylesheet(bundle.sigma1)

    print("=== generated forward stylesheet (σd), excerpt ===")
    rendered = stylesheet_to_xslt(forward)
    # Show the class → course template (Example 4.6's shape).
    lines = rendered.splitlines()
    start = next(i for i, line in enumerate(lines)
                 if 'match="class"' in line)
    print("\n".join(lines[start:start + 20]))
    print("  ...\n")

    print("=== generated inverse stylesheet (σd⁻¹), excerpt ===")
    rendered_inverse = stylesheet_to_xslt(inverse)
    lines = rendered_inverse.splitlines()
    start = next(i for i, line in enumerate(lines)
                 if 'match="course"' in line)
    print("\n".join(lines[start:start + 8]))
    print("  ...\n")

    # Migrate a generated document and roll it back.
    document = random_instance(bundle.classes, seed=21, max_depth=9,
                               star_mean=3.0)
    migrated = apply_stylesheet(forward, document)
    validate(migrated, bundle.school)
    recovered = apply_stylesheet(inverse, migrated)
    assert tree_equal(recovered, document)
    print(f"migrated |T1|={tree_size(document)} -> "
          f"|T2|={tree_size(migrated)}; rollback exact: OK")
    print(f"forward rules: {len(forward.rules)}, "
          f"inverse rules: {len(inverse.rules)}")


if __name__ == "__main__":
    main()
