"""The paper's running example (Fig. 1, Examples 4.2-4.9).

Integrates a class document (S0) and a student document (S1) into one
school document (S), answers the Example 4.8 prerequisites query on the
integrated document, and recovers both sources.

Run:  python examples/integration_school.py
"""

from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.inverse import invert
from repro.core.multi import integrate
from repro.core.translate import translate_query
from repro.dtd.validate import validate
from repro.matching.simulation import simulation_mapping
from repro.xpath.evaluator import evaluate_set
from repro.xpath.parser import parse_xr
from repro.xtree.nodes import tree_equal
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string
from repro.workloads.library import school_example


CLASSES_DOC = """
<db>
  <class><cno>CS331</cno><title>Databases</title>
    <type><regular><prereq>
      <class><cno>CS240</cno><title>Systems</title>
        <type><regular><prereq>
          <class><cno>CS101</cno><title>Intro</title>
            <type><project>a compiler</project></type></class>
        </prereq></regular></type></class>
    </prereq></regular></type></class>
  <class><cno>MA140</cno><title>Calculus</title>
    <type><project>an integral table</project></type></class>
</db>
"""

STUDENTS_DOC = """
<db>
  <student><ssn>1234</ssn><name>Ada</name>
    <taking><cno>CS331</cno><cno>MA140</cno></taking></student>
  <student><ssn>5678</ssn><name>Alan</name>
    <taking><cno>CS240</cno></taking></student>
</db>
"""


def main() -> None:
    bundle = school_example()
    classes_doc = parse_xml(CLASSES_DOC.strip())
    students_doc = parse_xml(STUDENTS_DOC.strip())

    # Graph similarity cannot map either source into the school target
    # (the paper's motivation for schema embeddings).
    assert simulation_mapping(bundle.classes, bundle.school) is None
    print("graph-similarity baseline: cannot map S0 into S (as the "
          "paper states)\n")

    # Integrate both documents through σ1 (Example 4.2) and σ2
    # (Example 4.9).
    result = integrate([bundle.sigma1, bundle.sigma2],
                       [classes_doc, students_doc])
    validate(result.tree, bundle.school)
    print("integrated school document (truncated):")
    rendered = to_string(result.tree)
    print("\n".join(rendered.splitlines()[:30]))
    print("  ...\n")

    # Example 4.8: all (direct or indirect) prerequisites of CS331,
    # asked against the ORIGINAL schema, answered on the INTEGRATED
    # document via Tr.
    query = parse_xr(
        "class[cno/text()='CS331']/(type/regular/prereq/class)*/cno/text()")
    source_answer = evaluate_set(query, classes_doc)
    anfa = translate_query(bundle.sigma1, query)
    target_answer = evaluate_anfa_set(anfa, result.tree)
    print(f"Q (over S0)  = {query}")
    print(f"  answered on S0:         {sorted(source_answer.strings)}")
    print(f"  answered on integrated: {sorted(target_answer.strings)}")
    assert source_answer.strings == target_answer.strings

    # Both sources can be reconstructed from the single school document.
    assert tree_equal(invert(bundle.sigma1, result.tree), classes_doc)
    assert tree_equal(invert(bundle.sigma2, result.tree), students_doc)
    print("\nboth source documents recovered exactly from the "
          "integrated document: OK")


if __name__ == "__main__":
    main()
