"""Engine session: batch mapping and query serving over one embedding.

The one-shot API recompiles per call; an :class:`repro.api.Engine`
session compiles each schema/embedding once (keyed by content
fingerprint) and serves every later document and query from the
compiled artifacts — the "compile once, serve many" shape of a mapping
service.  This example:

1. finds the school embedding of Fig. 1 (the search result itself is
   cached on the engine);
2. maps a batch of documents with one compile;
3. serves a stream of repeating queries from the translation LRU;
4. inverts a mapped document and prints the cache counters.

Run:  PYTHONPATH=src python examples/engine_batch.py
"""

import time

from repro.anfa.evaluate import evaluate_anfa_set
from repro.api import Engine
from repro.core.instmap import InstMap
from repro.dtd.generate import InstanceGenerator
from repro.workloads.library import school_example
from repro.xtree.nodes import tree_equal, tree_size


def main() -> None:
    bundle = school_example()
    engine = Engine()

    # 1. Embedding search through the engine: repeated calls (e.g. a
    #    service handling re-registrations of the same schema pair)
    #    return the cached SearchResult.
    result = engine.find_embedding(bundle.classes, bundle.school, bundle.att)
    assert result.found
    sigma = result.embedding
    again = engine.find_embedding(bundle.classes, bundle.school, bundle.att)
    assert again is result, "second search is a cache hit"
    print(f"embedding found by {result.method}; "
          f"search cache: {engine.search_stats.hits} hit(s)")

    # 2. Batch mapping: one compile, many documents.
    documents = [
        InstanceGenerator(bundle.classes, seed=seed, max_depth=10,
                          star_mean=2.0).generate()
        for seed in range(50)]
    started = time.perf_counter()
    mapped = engine.map_documents(sigma, documents)
    elapsed = time.perf_counter() - started
    total_nodes = sum(tree_size(m.tree) for m in mapped)
    print(f"mapped {len(documents)} documents ({total_nodes} target nodes) "
          f"in {elapsed * 1e3:.1f} ms via the compiled InstMap")

    # The engine serves the same trees as a fresh per-call InstMap.
    assert tree_equal(mapped[0].tree, InstMap(sigma).apply(documents[0]).tree)

    # 3. Query serving: a request stream cycling a few query shapes,
    #    answered over the largest mapped document.
    probe = max(mapped, key=lambda m: tree_size(m.tree)).tree
    shapes = ["class/cno/text()", "class/title",
              "class/type/regular/prereq/class", "class[type/project]"]
    stream = [shapes[i % len(shapes)] for i in range(200)]
    started = time.perf_counter()
    answers = 0
    for query in stream:
        anfa = engine.translate_query(sigma, query)
        answer = evaluate_anfa_set(anfa, probe)
        answers += len(answer.ids) + len(answer.strings)
    elapsed = time.perf_counter() - started
    print(f"served {len(stream)} queries ({answers} result nodes) "
          f"in {elapsed * 1e3:.1f} ms; translation cache: "
          f"{engine.translation_stats.hits} hits / "
          f"{engine.translation_stats.misses} misses")

    # 4. Inversion reuses the same compiled artifact.
    recovered = engine.invert(sigma, mapped[0].tree)
    assert tree_equal(recovered, documents[0])
    print("inversion recovered the source document exactly")
    print()
    print(engine.describe_stats())


if __name__ == "__main__":
    main()
