"""Quickstart: define schemas, find an embedding, map, query, invert.

Run:  python examples/quickstart.py
"""

from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.core.similarity import SimilarityMatrix
from repro.core.translate import translate_query
from repro.schema import load_schema
from repro.dtd.validate import validate
from repro.matching.search import find_embedding
from repro.xpath.evaluator import evaluate_set
from repro.xpath.parser import parse_xr
from repro.xtree.nodes import tree_equal
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string


def main() -> None:
    # 1. Two DTDs: a lean source and a richer target (real DTD
    #    syntax, auto-detected by the schema-frontend layer — the same
    #    grammars could be given as compact or XSD text).
    source = load_schema("""
        <!ELEMENT contacts (person*)>
        <!ELEMENT person (name, email)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT email (#PCDATA)>
    """, name="contacts")

    target = load_schema("""
        <!ELEMENT crm (customers, audit)>
        <!ELEMENT customers (entry*)>
        <!ELEMENT entry (profile, status)>
        <!ELEMENT profile (name, contact)>
        <!ELEMENT contact (email, phone)>
        <!ELEMENT status (#PCDATA)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT email (#PCDATA)>
        <!ELEMENT phone (#PCDATA)>
        <!ELEMENT audit (log*)>
        <!ELEMENT log (#PCDATA)>
    """, name="crm")

    # 2. Find an information-preserving schema embedding (Section 5).
    #    att comes from a name matcher; pairs a matcher cannot see
    #    ('contacts'→'crm', 'person'→'entry') get the domain-expert
    #    hints the paper assumes (Section 4.1).  Note λ(r1)=r2 is
    #    *forced*, so att must endorse the root pair too.
    att = SimilarityMatrix.from_names(source, target)
    att.set("contacts", "crm", 0.9)
    att.set("person", "entry", 0.8)
    result = find_embedding(source, target, att)
    assert result.found, "no embedding found"
    embedding = result.embedding
    print(f"embedding found by {result.method} in {result.seconds:.3f}s")
    for (a, b, occ), path in sorted(embedding.paths.items()):
        print(f"  path({a}, {b}) = {path}")

    # 3. Map an instance (InstMap, Section 4.2) — type safe by Thm 4.1.
    document = parse_xml(
        "<contacts>"
        "<person><name>Ada</name><email>ada@x.org</email></person>"
        "<person><name>Grace</name><email>gh@y.mil</email></person>"
        "</contacts>")
    mapped = InstMap(embedding).apply(document)
    validate(mapped.tree, target)
    print("\nmapped document:")
    print(to_string(mapped.tree))

    # 4. Translate a query (Section 4.4) and answer it on the target.
    query = parse_xr("person[name/text()='Ada']/email/text()")
    anfa = translate_query(embedding, query)
    source_answer = evaluate_set(query, document)
    target_answer = evaluate_anfa_set(anfa, mapped.tree)
    print(f"\nQ = {query}")
    print(f"  on source: {sorted(source_answer.strings)}")
    print(f"  on target: {sorted(target_answer.strings)}")
    assert source_answer.strings == target_answer.strings

    # 5. Invert — the original document comes back (Theorem 4.3).
    recovered = invert(embedding, mapped.tree)
    assert tree_equal(recovered, document)
    print("\ninverse recovered the source exactly: OK")


if __name__ == "__main__":
    main()
