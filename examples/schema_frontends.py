"""One grammar, three spellings, one compiled artifact.

The schema-frontend layer (``repro.schema``) lowers every input format
into the same normalized IR, so the engine's fingerprint caches, the
artifact store and the serve daemon cannot tell — and never need to
know — which syntax a schema arrived in.

Run:  python examples/schema_frontends.py
"""

from repro.api import Engine, detect_format, load_schema

DTD_TEXT = """
<!ELEMENT db (rec*)>
<!ELEMENT rec (key, val)>
<!ELEMENT key (#PCDATA)>
<!ELEMENT val (#PCDATA)>
"""

COMPACT_TEXT = """
db -> rec*
rec -> key, val
key -> str
val -> str
"""

XSD_TEXT = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="db"><xs:complexType><xs:sequence>
    <xs:element ref="rec" minOccurs="0" maxOccurs="unbounded"/>
  </xs:sequence></xs:complexType></xs:element>
  <xs:element name="rec"><xs:complexType><xs:sequence>
    <xs:element ref="key"/><xs:element ref="val"/>
  </xs:sequence></xs:complexType></xs:element>
  <xs:element name="key" type="xs:string"/>
  <xs:element name="val" type="xs:string"/>
</xs:schema>
"""


def main() -> None:
    # 1. Auto-detection: each text names its own frontend.
    texts = {"dtd": DTD_TEXT, "compact": COMPACT_TEXT, "xsd": XSD_TEXT}
    for format, text in texts.items():
        assert detect_format(text) == format
        print(f"{format:<8} detected; fingerprint "
              f"{load_schema(text).fingerprint()[:16]}…")

    # 2. Parity: one fingerprint — and therefore ONE compiled artifact.
    fingerprints = {load_schema(text).fingerprint()
                    for text in texts.values()}
    assert len(fingerprints) == 1
    print(f"all three formats lower to {fingerprints.pop()[:16]}…")

    # 3. The engine compiles once, then serves every format from cache.
    engine = Engine()
    for format, text in texts.items():
        engine.compile_schema(text, format=format)
    stats = engine.schema_stats
    print(f"engine: {stats.misses} compile miss, {stats.hits} cache "
          f"hits across the three formats")
    assert (stats.misses, stats.hits) == (1, 2)


if __name__ == "__main__":
    main()
