"""Serving: run the warm-start daemon and drive it with ServeClient.

The full deployment loop in one script: find an embedding, persist it
to an artifact store, start the HTTP daemon warm from that store
(every compile paid before the socket opens), then act as a client —
map documents, translate queries, invert a mapping, and read the
server's request/latency/cache metrics.

Run:  PYTHONPATH=src python examples/serve_client.py

The same server is what ``repro serve <store-dir>`` starts from the
command line; anything speaking JSON-over-HTTP can be the client::

    curl -s localhost:8421/healthz
    curl -s -X POST localhost:8421/v1/map -d '{"xml": "<contacts>…</contacts>"}'
"""

import tempfile
from pathlib import Path

from repro.api import (
    Engine,
    ReproServer,
    ServeClient,
    SimilarityMatrix,
    find_embedding,
    load_schema,
)


def main() -> None:
    # 1. The offline step: find the embedding and build the store.
    source = load_schema("""
        <!ELEMENT contacts (person*)>
        <!ELEMENT person (name, email)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT email (#PCDATA)>
    """, name="contacts")
    target = load_schema("""
        <!ELEMENT directory (entries)>
        <!ELEMENT entries (entry*)>
        <!ELEMENT entry (name, contact)>
        <!ELEMENT contact (email, phone?)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT email (#PCDATA)>
        <!ELEMENT phone (#PCDATA)>
    """, name="directory")
    att = SimilarityMatrix.permissive()
    sigma = find_embedding(source, target, att, seed=1).embedding
    assert sigma is not None

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store"
        engine = Engine()
        engine.compile_embedding(sigma, ensure_valid=True)
        engine.save_store(store)
        print(f"built artifact store at {store}")

        # 2. The daemon: warm-started, compile-free serving.
        #    (port=0 picks a free port; `repro serve` binds 8421.)
        with ReproServer(store=store, port=0) as server:
            print(f"serving on {server.url}")
            client = ServeClient.for_server(server)
            print(f"healthz: {client.healthz()}")

            # 3. Map a document (single-document shorthand).
            document = ("<contacts><person><name>Ada</name>"
                        "<email>ada@example.org</email></person>"
                        "</contacts>")
            mapped = client.map(xml=document)["result"]
            assert mapped["ok"]
            print("mapped document:")
            print(mapped["output"])

            # 4. A batch with one bad document: per-item isolation.
            batch = client.map(documents=[
                {"name": "good.xml", "xml": document},
                {"name": "bad.xml", "xml": "<oops"},
            ])
            print(f"batch: {batch['failures']} failure(s); "
                  f"bad.xml -> {batch['results'][1]['error']}")

            # 5. Translate queries; the repeat is served from the LRU.
            for query in ["person/name/text()", "person/name/text()"]:
                item = client.translate(query=query)["result"]
                assert item["ok"]
            print("translated person/name/text() twice "
                  "(second hit the translation cache)")

            # 6. Invert the mapped document back to the source.
            recovered = client.invert(xml=mapped["output"])["result"]
            assert recovered["ok"]
            print("inverted back to the source: OK")

            # 7. What the server saw.
            metrics = client.metrics()
            for endpoint, row in metrics["requests"].items():
                print(f"  {endpoint}: {row['requests']} requests, "
                      f"p50 {row['latency_ms']['p50']}ms")
            print(f"  engine translation cache: "
                  f"{metrics['engine']['translations']}")


if __name__ == "__main__":
    main()
