"""P2P query answering (the paper's Section 1 motivation).

Peer A keeps bibliography data under its own lean DTD; peer B hosts a
richer catalogue schema.  A's documents are embedded into B's schema.
Any XPath query a user poses against A's schema is answered *at B* by
the translated query — same answers, same language, per Theorem 4.3.

Run:  python examples/p2p_query_answering.py
"""


from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.instmap import InstMap
from repro.core.translate import Translator
from repro.dtd.generate import random_instance
from repro.matching.search import find_embedding
from repro.workloads.library import SCHEMA_LIBRARY
from repro.workloads.noise import expand_schema, noisy_att
from repro.workloads.queries import random_queries
from repro.xpath.evaluator import evaluate_set


def main() -> None:
    # Peer A: the bib schema.  Peer B: a structurally richer variant
    # (here generated; in the wild: an independently designed DTD).
    peer_a = SCHEMA_LIBRARY["bib"]()
    expansion = expand_schema(peer_a, seed=42, wrap_max=2, junk_prob=0.4)
    peer_b = expansion.target
    print(f"peer A schema: {peer_a.node_count()} types; "
          f"peer B schema: {peer_b.node_count()} types")

    # A similarity matrix as a schema matcher would produce it (noisy).
    att = noisy_att(expansion, noise=0.5, seed=7)
    result = find_embedding(peer_a, peer_b, att)
    assert result.found
    embedding = result.embedding
    correct = sum(1 for k, v in embedding.lam.items()
                  if expansion.lam[k] == v)
    print(f"embedding found by {result.method} in {result.seconds:.3f}s; "
          f"λ matches ground truth on {correct}/{len(embedding.lam)} types")

    # Peer A's document lives at peer B, embedded.
    document = random_instance(peer_a, seed=3, max_depth=8)
    mapped = InstMap(embedding).apply(document)

    # A user fires queries written against PEER A's schema.
    translator = Translator(embedding)
    queries = random_queries(peer_a, 12, seed=9, max_steps=6)
    print(f"\nanswering {len(queries)} peer-A queries at peer B:")
    agreements = 0
    for query in queries:
        local = evaluate_set(query, document)
        remote = evaluate_anfa_set(translator.translate(query), mapped.tree)
        remote_mapped = remote.map_ids(mapped.idM)
        agree = (remote_mapped.ids == local.ids
                 and remote_mapped.strings == local.strings)
        agreements += agree
        marker = "ok " if agree else "FAIL"
        print(f"  [{marker}] {str(query)[:70]}  "
              f"-> {len(local.ids)} nodes, {len(local.strings)} strings")
    assert agreements == len(queries)
    print(f"\nall {agreements} queries answered identically at the "
          "remote peer (query preservation w.r.t. XR)")


if __name__ == "__main__":
    main()
