"""Persistent store + parallel corpus serving, end to end.

The deployment shape this example walks through:

1. **build** — a one-time process finds the school embedding, compiles
   it, and saves the artifact store (the declarative λ/path artifact of
   Section 4.5 plus both schemas and the search result);
2. **serve** — a fresh process warm-starts from the store and serves
   with zero compile misses;
3. **fan out** — a :class:`repro.api.ParallelRunner` maps an NDJSON
   corpus across worker processes that each warm-start from the same
   store; results come back in corpus order, identical to a serial run.

Run:  PYTHONPATH=src python examples/parallel_corpus.py
"""

import tempfile
from pathlib import Path

from repro.api import (
    CorpusDocument,
    Engine,
    ParallelRunner,
    to_string,
    write_ndjson,
)
from repro.dtd.generate import InstanceGenerator
from repro.workloads.library import school_example


def main() -> None:
    bundle = school_example()
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "artifacts"
        corpus_path = Path(tmp) / "corpus.ndjson"

        # 1. Build: search, compile, persist.  This is the only process
        #    that ever pays the embedding search or the compile.
        build_engine = Engine()
        result = build_engine.find_embedding(bundle.classes, bundle.school,
                                             bundle.att)
        assert result.found and result.embedding is not None
        sigma = result.embedding
        store = build_engine.save_store(store_dir)
        print(f"built {store}")

        documents = [
            CorpusDocument(
                f"doc{seed:03d}.xml",
                to_string(InstanceGenerator(bundle.classes, seed=seed,
                                            max_depth=8,
                                            star_mean=1.5).generate()))
            for seed in range(40)]
        write_ndjson(documents, corpus_path)

        # 2. Serve: a fresh engine warm-starts from the store — the
        #    embedding search below is a cache *hit*, not a re-search.
        serving = Engine.warm_start(store_dir)
        again = serving.find_embedding(bundle.classes, bundle.school,
                                       bundle.att)
        assert again.found
        print(f"warm start: search cache {serving.search_stats.hits} hit(s), "
              f"{serving.embedding_stats.misses} embedding compile misses")

        # 3. Fan out: serial run vs two workers, identical output.
        serial = ParallelRunner(jobs=1, store=store_dir)
        baseline = serial.map_corpus(sigma, corpus_path)
        parallel = ParallelRunner(jobs=2, store=store_dir)
        outcomes = parallel.map_corpus(sigma, corpus_path)

        assert all(o.ok for o in outcomes)
        assert [o.output for o in outcomes] == [o.output for o in baseline]
        print(f"mapped {len(outcomes)} corpus documents; jobs=2 output "
              "is byte-identical to jobs=1")
        print()
        print(parallel.last_report.describe())


if __name__ == "__main__":
    main()
