"""Best-effort matching under noisy similarity (the VLDB'05 setting).

Sweeps the similarity-noise knob on one schema and reports, per
heuristic, how often a valid embedding is found and how close its λ is
to the ground truth — a miniature of experiment E12.

Run:  python examples/schema_matching_noise.py
"""

from repro.experiments.accuracy import run_accuracy
from repro.experiments.report import format_table
from repro.matching.search import find_embedding
from repro.workloads.library import SCHEMA_LIBRARY
from repro.workloads.noise import expand_schema, noisy_att


def main() -> None:
    rows = run_accuracy(schemas=("orders",),
                        noises=(0.0, 0.5, 1.0),
                        methods=("random", "quality", "indepset"),
                        trials=3, seed=13)
    print(format_table([r.as_dict() for r in rows],
                       title="orders schema: success & λ-accuracy vs "
                             "similarity noise"))

    # Zoom in on one noisy run: which types get mis-matched?
    expansion = expand_schema(SCHEMA_LIBRARY["orders"](), seed=13)
    att = noisy_att(expansion, 1.0, seed=99)
    result = find_embedding(expansion.source, expansion.target, att,
                            method="quality", seed=0)
    assert result.found
    print("\nmismatched types at noise=1.0 (quality-ordered):")
    mismatches = [(a, b, expansion.lam[a])
                  for a, b in sorted(result.embedding.lam.items())
                  if expansion.lam[a] != b]
    if not mismatches:
        print("  none — ground truth recovered despite full noise")
    for source_type, found, truth in mismatches:
        print(f"  {source_type:12s} -> {found:18s} (truth: {truth}, "
              f"att {att.get(source_type, found):.2f} vs "
              f"{att.get(source_type, truth):.2f})")
    print("\nnote: a mismatched λ can still be a *valid* embedding — "
          "information is preserved either way (Theorem 4.3); the "
          "similarity matrix is what carries the semantics.")


if __name__ == "__main__":
    main()
