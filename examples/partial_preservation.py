"""Partial information preservation (paper Section 7, future work).

A school publishes its course catalogue but must *forget* instructor-
facing data (here: the titles).  The source schema is projected, the
projection is embedded into the public target, and the kept part stays
fully queryable and invertible — while the forgotten part is provably
gone.

Run:  python examples/partial_preservation.py
"""

from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.core.partial import project_dtd
from repro.core.similarity import SimilarityMatrix
from repro.core.translate import Translator
from repro.matching.search import find_embedding
from repro.workloads.library import school_example
from repro.xpath.evaluator import evaluate_set
from repro.xpath.parser import parse_xr
from repro.xtree.nodes import tree_equal
from repro.xtree.parser import parse_xml
from repro.xtree.serialize import to_string


def main() -> None:
    bundle = school_example()
    projection = project_dtd(bundle.classes, ["title"])
    print("projected source schema (titles forgotten):")
    from repro.dtd.serialize import dtd_to_compact

    print("  " + dtd_to_compact(projection.projected)
          .replace("\n", "\n  "))

    att = SimilarityMatrix.permissive()
    result = find_embedding(projection.projected, bundle.school, att,
                            seed=3)
    assert result.found
    sigma = result.embedding

    document = parse_xml(
        "<db><class><cno>CS331</cno><title>CONFIDENTIAL</title>"
        "<type><regular><prereq/></regular></type></class></db>")
    public = projection.project_instance(document)
    mapped = InstMap(sigma).apply(public)

    # The published document contains no trace of the title.
    rendered = to_string(mapped.tree, indent=None)
    assert "CONFIDENTIAL" not in rendered
    print("\npublished document contains no forgotten data: OK")

    # The kept part is exactly recoverable and queryable.
    assert tree_equal(invert(sigma, mapped.tree), public)
    translator = Translator(sigma)
    query = parse_xr("class/cno/text()")
    answer = evaluate_anfa_set(translator.translate(query), mapped.tree)
    assert answer.strings == evaluate_set(query, public).strings
    print("kept data recoverable and queryable "
          f"(Q = {query} -> {sorted(answer.strings)}): OK")


if __name__ == "__main__":
    main()
