"""E6 — end-to-end information preservation throughput.

Times the full pipeline (map → invert → translate → evaluate →
compare) that the property tests run, on the school example — the
operational cost of the paper's guarantees.
"""

from __future__ import annotations

import pytest

from repro.anfa.evaluate import evaluate_anfa_set
from repro.core.instmap import InstMap
from repro.core.inverse import invert
from repro.core.translate import Translator
from repro.dtd.generate import InstanceGenerator
from repro.experiments.report import format_table
from repro.workloads.queries import random_queries
from repro.xpath.evaluator import evaluate_set
from repro.xtree.nodes import tree_equal, tree_size


@pytest.fixture(scope="module")
def pipeline(school):
    instance = InstanceGenerator(school.classes, seed=4, max_depth=10,
                                 star_mean=3.0).generate()
    instmap = InstMap(school.sigma1)
    mapped = instmap.apply(instance)
    translator = Translator(school.sigma1)
    queries = random_queries(school.classes, 8, seed=7, max_steps=6)
    return school, instance, instmap, mapped, translator, queries


@pytest.mark.table
def test_table_e6_pipeline(pipeline, capsys):
    school, instance, _instmap, mapped, translator, queries = pipeline
    preserved = 0
    for query in queries:
        anfa = translator.translate(query)
        target = evaluate_anfa_set(anfa, mapped.tree).map_ids(mapped.idM)
        source = evaluate_set(query, instance)
        if target.ids == source.ids and target.strings == source.strings:
            preserved += 1
    roundtrip = tree_equal(invert(school.sigma1, mapped.tree), instance)
    rows = [{
        "|T1|": tree_size(instance),
        "|T2|": tree_size(mapped.tree),
        "queries": len(queries),
        "preserved": preserved,
        "invertible": roundtrip,
    }]
    with capsys.disabled():
        print()
        print(format_table(rows, title="[E6] information preservation, "
                                       "end to end"))
    assert preserved == len(queries) and roundtrip


def test_bench_full_pipeline(benchmark, pipeline):
    school, instance, instmap, _mapped, _translator, queries = pipeline

    def run():
        mapped = instmap.apply(instance)
        assert tree_equal(invert(school.sigma1, mapped.tree), instance)
        translator = Translator(school.sigma1)
        for query in queries[:4]:
            anfa = translator.translate(query)
            target = evaluate_anfa_set(anfa, mapped.tree)
            target.map_ids(mapped.idM)

    benchmark(run)


def test_bench_anfa_evaluation(benchmark, pipeline):
    _school, _instance, _instmap, mapped, translator, queries = pipeline
    anfas = [translator.translate(q) for q in queries]
    benchmark(lambda: [evaluate_anfa_set(a, mapped.tree) for a in anfas])


def test_bench_source_evaluation(benchmark, pipeline):
    _school, instance, _instmap, _mapped, _translator, queries = pipeline
    benchmark(lambda: [evaluate_set(q, instance) for q in queries])


def main() -> int:
    import time

    import benchlib

    from repro.workloads.library import school_example

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    school = school_example()
    instance = InstanceGenerator(school.classes, seed=4, max_depth=10,
                                 star_mean=3.0).generate()
    query_count = 4 if args.smoke else 8
    queries = random_queries(school.classes, query_count, seed=7,
                             max_steps=6)
    started = time.perf_counter()
    mapped = InstMap(school.sigma1).apply(instance)
    translator = Translator(school.sigma1)
    preserved = 0
    for query in queries:
        anfa = translator.translate(query)
        target = evaluate_anfa_set(anfa, mapped.tree).map_ids(mapped.idM)
        source = evaluate_set(query, instance)
        if target.ids == source.ids and target.strings == source.strings:
            preserved += 1
    roundtrip = tree_equal(invert(school.sigma1, mapped.tree), instance)
    wall = time.perf_counter() - started
    rows = [{"|T1|": tree_size(instance), "|T2|": tree_size(mapped.tree),
             "queries": len(queries), "preserved": preserved,
             "invertible": roundtrip}]
    print(format_table(rows, title="[E6] information preservation, "
                                   "end to end"))
    result = benchlib.record(
        "preservation", args,
        ops_per_sec=len(queries) / wall if wall > 0 else 0.0,
        wall_time_s=wall,
        correct=preserved == len(queries) and roundtrip,
        extra={"rows": rows})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
