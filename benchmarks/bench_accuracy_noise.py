"""E12 — the VLDB'05 accuracy study: success rate vs. att noise.

Paper shape to reproduce: "the Random approach finds a high percentage
of correct solutions over a wide range of att accuracies"; quality
ordering and independent-set assembly behave comparably, with running
times in seconds.  The table prints success rate and λ-accuracy per
(schema, noise, method); the pytest-benchmark entries time one search
per method at moderate noise.
"""

from __future__ import annotations

import pytest

from repro.experiments.accuracy import run_accuracy
from repro.experiments.report import format_table
from repro.matching.search import find_embedding
from repro.workloads.library import SCHEMA_LIBRARY
from repro.workloads.noise import expand_schema, noisy_att


@pytest.mark.table
def test_table_e12_accuracy_vs_noise(capsys):
    rows = run_accuracy(schemas=("bib", "mondial", "orders"),
                        noises=(0.0, 0.25, 0.5, 0.75, 1.0),
                        methods=("random", "quality", "indepset"),
                        trials=3, seed=1)
    with capsys.disabled():
        print()
        print(format_table([r.as_dict() for r in rows],
                           title="[E12] success & λ-accuracy vs att noise "
                                 "(VLDB'05 accuracy study)"))
    # Shape assertions: at zero noise everything succeeds with perfect
    # λ-accuracy; success stays high across the sweep.
    for row in rows:
        if row.noise == 0.0:
            assert row.success_rate == 1.0
            assert row.lambda_accuracy == 1.0
    overall = sum(r.success_rate for r in rows) / len(rows)
    assert overall >= 0.8


@pytest.mark.parametrize("method", ["random", "quality", "indepset"])
def test_bench_search_at_noise(benchmark, method):
    expansion = expand_schema(SCHEMA_LIBRARY["mondial"](), seed=11)
    att = noisy_att(expansion, 0.5, seed=5)

    def run():
        result = find_embedding(expansion.source, expansion.target, att,
                                method=method, seed=2)
        assert result.found
        return result

    benchmark(run)


def main() -> int:
    import time

    import benchlib

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    if args.smoke:
        schemas, noises = ("bib",), (0.0, 0.5)
        methods, trials = ("random", "quality"), 1
    else:
        schemas = ("bib", "mondial", "orders")
        noises = (0.0, 0.25, 0.5, 0.75, 1.0)
        methods, trials = ("random", "quality", "indepset"), 3
    started = time.perf_counter()
    rows = run_accuracy(schemas=schemas, noises=noises, methods=methods,
                        trials=trials, seed=1)
    wall = time.perf_counter() - started
    print(format_table([r.as_dict() for r in rows],
                       title="[E12] success & λ-accuracy vs att noise"))
    zero_noise_perfect = all(
        row.success_rate == 1.0 and row.lambda_accuracy == 1.0
        for row in rows if row.noise == 0.0)
    overall = sum(r.success_rate for r in rows) / len(rows)
    searches = sum(r.trials for r in rows)
    result = benchlib.record(
        "accuracy_noise", args,
        ops_per_sec=searches / wall if wall > 0 else 0.0,
        wall_time_s=wall,
        correct=zero_noise_perfect and overall >= 0.8,
        extra={"searches": searches,
               "overall_success_rate": round(overall, 3),
               "rows": [r.as_dict() for r in rows]})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
