"""E4 — Fig. 3 validity scenarios plus validation throughput.

The table reprints the five scenario verdicts; the benchmark times
whole-embedding validation (the PTIME check of Theorem 5.1's NP
membership argument).
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_table
from repro.workloads.library import fig3_scenarios
from repro.workloads.noise import expand_schema
from repro.workloads.synthetic import random_dtd


@pytest.mark.table
def test_table_e4_fig3_verdicts(capsys):
    rows = []
    for scenario in fig3_scenarios():
        valid = (scenario.embedding is not None
                 and scenario.embedding.is_valid())
        rows.append({
            "scenario": f"Fig.3({scenario.key})",
            "valid": valid,
            "paper": scenario.expect_valid,
            "agree": valid == scenario.expect_valid,
            "note": scenario.note[:60],
        })
    with capsys.disabled():
        print()
        print(format_table(rows, title="[E4] Fig.3 validity verdicts"))
    assert all(row["agree"] for row in rows)


def test_bench_validation_school(benchmark, school):
    def run():
        # Re-validate from scratch (no cached classifications).
        from repro.core.embedding import SchemaEmbedding

        fresh = SchemaEmbedding(school.sigma1.source, school.sigma1.target,
                                dict(school.sigma1.lam),
                                dict(school.sigma1.paths))
        assert fresh.is_valid()

    benchmark(run)


def test_bench_validation_large(benchmark):
    expansion = expand_schema(random_dtd(80, seed=3), seed=5)

    def run():
        from repro.core.embedding import SchemaEmbedding

        fresh = SchemaEmbedding(expansion.embedding.source,
                                expansion.embedding.target,
                                dict(expansion.embedding.lam),
                                dict(expansion.embedding.paths))
        assert fresh.is_valid()

    benchmark(run)


def main() -> int:
    import time

    import benchlib

    from repro.core.embedding import SchemaEmbedding

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    rows = []
    for scenario in fig3_scenarios():
        valid = (scenario.embedding is not None
                 and scenario.embedding.is_valid())
        rows.append({
            "scenario": f"Fig.3({scenario.key})",
            "valid": valid,
            "paper": scenario.expect_valid,
            "agree": valid == scenario.expect_valid,
        })
    print(format_table(rows, title="[E4] Fig.3 validity verdicts"))
    # Throughput: whole-embedding validation from scratch, repeated.
    expansion = expand_schema(random_dtd(40 if args.smoke else 80,
                                         seed=3), seed=5)
    repeats = 3 if args.smoke else 10
    started = time.perf_counter()
    for _ in range(repeats):
        fresh = SchemaEmbedding(expansion.embedding.source,
                                expansion.embedding.target,
                                dict(expansion.embedding.lam),
                                dict(expansion.embedding.paths))
        assert fresh.is_valid()
    wall = time.perf_counter() - started
    result = benchlib.record(
        "validity", args,
        ops_per_sec=repeats / wall if wall > 0 else 0.0,  # validations/s
        wall_time_s=wall,
        correct=all(row["agree"] for row in rows),
        extra={"rows": rows, "validations": repeats})
    return benchlib.finish(result, args)


if __name__ == "__main__":
    raise SystemExit(main())
