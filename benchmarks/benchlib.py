"""Shared benchmark harness: one JSON schema for every ``bench_*.py``.

Every benchmark's ``main()`` builds its record through this module, so
CI (and any trajectory tooling reading the uploaded artifacts) sees one
machine-readable shape per run::

    {
      "schema": 1,                  # BENCH_SCHEMA version
      "bench": "serve_load",        # benchmark name (file stem sans bench_)
      "git_sha": "…",               # GITHUB_SHA or `git rev-parse HEAD`
      "mode": "smoke" | "full",
      "ops_per_sec": 1234.5,        # headline throughput (0.0 if n/a)
      "wall_time_s": 2.34,          # total timed wall clock
      "correct": true,              # semantic correctness — NEVER a
                                    #   wall-clock ratio, so CI failing
                                    #   on it is not flaky
      "extra": {…}                  # bench-specific detail rows
    }

Usage inside a benchmark::

    parser = benchlib.make_parser(__doc__)
    args = parser.parse_args()
    …run, measure…
    record = benchlib.record("my_bench", args, ops_per_sec=…,
                             wall_time_s=…, correct=…, extra={…})
    return benchlib.finish(record, args)

``finish`` prints the one-line summary, writes ``--json PATH`` when
given, and returns the process exit code (non-zero iff not correct).

Run as a script this module is the CI gate::

    python benchmarks/benchlib.py --check artifacts/BENCH_*.json

which exits non-zero if any record is missing, unparseable, from a
different schema version, or reports ``correct: false``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
from pathlib import Path

BENCH_SCHEMA = 1


def git_sha() -> str:
    """The commit under test: CI's GITHUB_SHA, else the local HEAD."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=Path(__file__).resolve().parent)
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def make_parser(description: str) -> argparse.ArgumentParser:
    """The shared CLI every benchmark exposes: ``--smoke`` + ``--json``."""
    parser = argparse.ArgumentParser(
        description=description,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI workload: correctness assertions "
                             "at reduced scale")
    parser.add_argument("--json", metavar="PATH",
                        help="write the schema-consistent BENCH record "
                             "to PATH")
    return parser


def record(bench: str, args: argparse.Namespace, *, ops_per_sec: float,
           wall_time_s: float, correct: bool,
           extra: dict | None = None) -> dict:
    """One schema-consistent result record for ``bench``."""
    return {
        "schema": BENCH_SCHEMA,
        "bench": bench,
        "git_sha": git_sha(),
        "mode": "smoke" if getattr(args, "smoke", False) else "full",
        "ops_per_sec": round(float(ops_per_sec), 2),
        "wall_time_s": round(float(wall_time_s), 4),
        "correct": bool(correct),
        "extra": extra or {},
    }


def finish(result: dict, args: argparse.Namespace) -> int:
    """Print the summary line, write ``--json``, return the exit code."""
    verdict = "PASS" if result["correct"] else "FAIL"
    print(f"[BENCH {result['bench']}] {verdict} mode={result['mode']} "
          f"ops/s={result['ops_per_sec']} "
          f"wall={result['wall_time_s']}s")
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2, sort_keys=True)
                        + "\n")
        print(f"[BENCH {result['bench']}] wrote {path}")
    return 0 if result["correct"] else 1


def check(paths: list[str]) -> int:
    """The CI gate over written records; prints one line per file."""
    if not paths:
        print("benchlib --check: no BENCH files given")
        return 1
    failures = 0
    for raw in paths:
        path = Path(raw)
        try:
            result = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: UNREADABLE ({exc})")
            failures += 1
            continue
        if result.get("schema") != BENCH_SCHEMA:
            print(f"{path}: schema {result.get('schema')!r} != "
                  f"{BENCH_SCHEMA}")
            failures += 1
            continue
        if result.get("correct") is not True:
            print(f"{path}: bench {result.get('bench')!r} reports "
                  "correct: false")
            failures += 1
            continue
        print(f"{path}: ok ({result.get('bench')}, "
              f"{result.get('ops_per_sec')} ops/s)")
    if failures:
        print(f"benchlib --check: {failures} failing record(s)")
        return 1
    print(f"benchlib --check: all {len(paths)} record(s) correct")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", nargs="+", metavar="BENCH_JSON",
                        help="validate written records; exit non-zero "
                             "on any correct:false")
    args = parser.parse_args()
    if args.check:
        return check(args.check)
    parser.error("nothing to do (use --check)")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
